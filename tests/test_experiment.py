"""Tests for the simulation runner and the figure framework (quick runs)."""

import pytest

from repro.core.experiment import SimulationResult, run_simulation
from repro.core.figures import (
    FigureResult,
    FigureRow,
    characterization_table,
    figure5,
    figure7b,
    figure_ilp_issue_width,
)
from repro.core.optimizations import migratory_hints, profile_migratory_pcs
from repro.core.workloads import dss_workload, oltp_workload
from repro.params import ConsistencyImpl, ConsistencyModel, default_system

QUICK = dict(instructions=6000, warmup=6000)


@pytest.fixture(scope="module")
def oltp_result():
    return run_simulation(default_system(), oltp_workload(), **QUICK)


class TestRunSimulation:
    def test_result_fields(self, oltp_result):
        r = oltp_result
        assert r.cycles > 0
        assert r.instructions == QUICK["instructions"]
        assert r.workload == "oltp"
        assert set(r.miss_rates) == {"l1i", "l1d", "l2"}
        assert 0 < r.ipc < 4

    def test_breakdown_covers_measured_cycles(self, oltp_result):
        r = oltp_result
        accounted = sum(r.breakdown.cycles)
        assert accounted == pytest.approx(
            r.cycles * r.params.n_nodes, rel=0.05)

    def test_warmup_excluded(self):
        r1 = run_simulation(default_system(), oltp_workload(),
                            instructions=5000, warmup=0)
        r2 = run_simulation(default_system(), oltp_workload(),
                            instructions=5000, warmup=10000)
        # Warmed caches: fewer cycles for the same work.
        assert r2.cycles < r1.cycles

    def test_deterministic(self):
        a = run_simulation(default_system(), oltp_workload(), **QUICK)
        b = run_simulation(default_system(), oltp_workload(), **QUICK)
        assert a.cycles == b.cycles

    def test_seed_changes_interleaving(self):
        a = run_simulation(default_system(), oltp_workload(),
                           seed=0, **QUICK)
        b = run_simulation(default_system(), oltp_workload(),
                           seed=1, **QUICK)
        assert a.cycles != b.cycles

    def test_normalized_to(self, oltp_result):
        assert oltp_result.normalized_to(oltp_result) == 1.0

    def test_dss_runs(self):
        r = run_simulation(default_system(), dss_workload(), **QUICK)
        assert r.workload == "dss"
        assert r.ipc > 0.3


class TestFigureFramework:
    def test_figure_result_lookup(self, oltp_result):
        fig = FigureResult("F", "t", [FigureRow("a", oltp_result, 1.0)])
        assert fig.normalized("a") == 1.0
        with pytest.raises(KeyError):
            fig.row("missing")

    def test_format_table(self, oltp_result):
        fig = FigureResult("F", "t", [FigureRow("a", oltp_result, 1.0)])
        text = fig.format_table()
        assert "F" in text and "a" in text

    def test_issue_width_sweep_quick(self):
        fig = figure_ilp_issue_width("oltp", instructions=4000,
                                     warmup=4000, widths=(1, 4))
        assert fig.normalized("inorder-1w") == 1.0
        assert fig.normalized("ooo-4w") < 1.0

    def test_figure5_quick(self):
        fig = figure5("oltp", instructions=6000, warmup=6000)
        assert {r.label for r in fig.rows} == {"uniprocessor",
                                               "multiprocessor"}

    def test_figure7b_quick(self):
        fig = figure7b(instructions=6000, warmup=6000)
        labels = {r.label for r in fig.rows}
        assert "flush" in labels and "flush+prefetch" in labels

    def test_characterization_quick(self):
        table = characterization_table(instructions=5000, warmup=5000)
        assert set(table) == {"oltp", "dss"}
        assert table["dss"]["ipc"] > table["oltp"]["ipc"]


class TestOptimizations:
    def test_profile_returns_pcs(self):
        pcs = profile_migratory_pcs(default_system(), oltp_workload(),
                                    instructions=8000, warmup=8000)
        assert pcs
        assert all(isinstance(pc, int) for pc in pcs)

    def test_hints_builder(self):
        hints = migratory_hints(prefetch=True, flush=False,
                                pc_filter={1, 2})
        assert hints.prefetch and not hints.flush
        assert hints.applies_to([1, 99])
        assert not hints.applies_to([99])
