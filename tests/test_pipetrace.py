"""Tests for the pipeline tracer and the SimulationResult dump."""

import itertools

from repro import default_system, oltp_workload, run_simulation
from repro.stats.pipetrace import PipeTracer
from repro.system.machine import Machine
from repro.trace.instr import Instruction, OP_INT, OP_LOAD

CODE = 0x0100_0000
DATA = 0x2000_0000


class TestPipeTracer:
    def _machine(self):
        program = [Instruction(OP_LOAD, CODE, addr=DATA)] + \
            [Instruction(OP_INT, CODE + 4 + 4 * i, deps=(1,))
             for i in range(20)]
        return Machine(default_system(n_nodes=1, mesh_width=1),
                       [itertools.cycle(program)])

    def test_records_cycles(self):
        m = self._machine()
        tracer = PipeTracer(m.cores[0], max_cycles=100)
        m.run(200)
        assert tracer.lines
        assert len(tracer.lines) <= 100

    def test_format_has_header_and_legend(self):
        m = self._machine()
        tracer = PipeTracer(m.cores[0], max_cycles=50)
        m.run(100)
        text = tracer.format()
        assert "legend" in text
        assert "retired=" in text

    def test_states_appear(self):
        m = self._machine()
        tracer = PipeTracer(m.cores[0], max_cycles=400)
        m.run(400)
        text = tracer.format()
        # Memory waits and completed-awaiting-retire states both occur in
        # a load-dependent program.
        assert "M" in text or "q" in text
        assert "D" in text

    def test_detach_restores_tick(self):
        m = self._machine()
        core = m.cores[0]
        tracer = PipeTracer(core, max_cycles=10)
        m.run(50)
        recorded = len(tracer.lines)
        tracer.detach()
        m.run(50)
        assert len(tracer.lines) == recorded

    def test_last_n(self):
        m = self._machine()
        tracer = PipeTracer(m.cores[0], max_cycles=100)
        m.run(200)
        text = tracer.format(last=5)
        assert len(text.splitlines()) == 6  # header + 5 rows


class TestResultDump:
    def test_dump_contains_sections(self):
        result = run_simulation(default_system(), oltp_workload(),
                                instructions=6000, warmup=6000)
        text = result.dump()
        for needle in ("workload", "miss rates", "breakdown",
                       "Protocol traffic", "sharing", "ipc"):
            assert needle in text
