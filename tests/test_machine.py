"""Tests for the multiprocessor machine: scheduling, skip-ahead, stats."""

import itertools

import pytest

from repro.params import default_system
from repro.system.machine import DeadlockError, Machine
from repro.system.scheduler import CpuScheduler
from repro.system.process import Process
from repro.trace.instr import Instruction, OP_INT, OP_SYSCALL

CODE = 0x0100_0000


def alu_stream():
    return itertools.cycle([Instruction(OP_INT, CODE + 4 * i)
                            for i in range(64)])


def blocking_stream(work=30):
    program = [Instruction(OP_INT, CODE + 4 * i) for i in range(work)]
    program.append(Instruction(OP_SYSCALL, CODE + 4 * work))
    return itertools.cycle(program)


class TestMachineBasics:
    def test_processes_pinned_round_robin(self):
        params = default_system()
        m = Machine(params, [alu_stream() for _ in range(8)])
        assert [p.cpu for p in m.processes] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_all_cores_make_progress(self):
        params = default_system()
        m = Machine(params, [alu_stream() for _ in range(4)])
        m.run(8000)
        assert all(core.retired > 500 for core in m.cores)

    def test_run_returns_elapsed_cycles(self):
        m = Machine(default_system(), [alu_stream() for _ in range(4)])
        c1 = m.run(1000)
        c2 = m.run(1000)
        assert c1 > 0 and c2 > 0
        assert m.now == c1 + c2

    def test_max_cycles_raises(self):
        m = Machine(default_system(n_nodes=1, mesh_width=1),
                    [blocking_stream(work=5)])
        with pytest.raises(DeadlockError):
            m.run(10_000_000, max_cycles=5000)

    def test_uniprocessor_configuration(self):
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [alu_stream() for _ in range(4)])
        m.run(2000)
        assert len(m.cores) == 1
        assert m.memory.stats.reads_dirty == 0

    def test_breakdown_accounts_all_time(self):
        params = default_system()
        m = Machine(params, [alu_stream() for _ in range(4)])
        cycles = m.run(4000)
        bd = m.breakdown()
        accounted = sum(bd.cycles)
        # Total accounted (incl. idle) matches cores x cycles within the
        # one-cycle-per-core tick granularity.
        assert accounted == pytest.approx(cycles * 4, rel=0.02)


class TestScheduling:
    def test_io_latency_hidden_by_other_processes(self):
        # Enough sibling processes that their work covers one blocking
        # call's latency (8 x ~1500 cycles > 8000-cycle I/O).
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [blocking_stream(3000) for _ in range(8)])
        m.run(60_000)
        bd = m.breakdown()
        idle_share = bd.cycles[-1] / sum(bd.cycles)
        assert idle_share < 0.15  # paper: idle factored out, < 10%

    def test_single_process_exposes_io(self):
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [blocking_stream(100)])
        m.run(3000)
        bd = m.breakdown()
        idle_share = bd.cycles[-1] / sum(bd.cycles)
        assert idle_share > 0.5

    def test_syscall_counts(self):
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [blocking_stream(50) for _ in range(2)])
        m.run(8000)
        assert sum(p.syscalls for p in m.processes) > 5

    def test_reset_stats_keeps_architecture(self):
        params = default_system()
        m = Machine(params, [alu_stream() for _ in range(4)])
        m.run(3000)
        retired_before = m.total_retired()
        m.reset_stats()
        assert m.total_retired() == retired_before  # counter kept
        assert m.breakdown().total == 0
        assert m.miss_rates()["l1i"] == 0.0
        m.run(1000)
        assert m.breakdown().total > 0


class TestCpuScheduler:
    def test_round_robin_pick(self):
        sched = CpuScheduler(0)
        procs = [Process(i, alu_stream(), 0) for i in range(3)]
        for p in procs:
            sched.add(p)
        picked = sched.pick_ready(0)
        assert picked is procs[0]
        sched.add(picked)
        assert sched.pick_ready(0) is procs[1]

    def test_blocked_processes_skipped(self):
        sched = CpuScheduler(0)
        a, b = Process(0, alu_stream(), 0), Process(1, alu_stream(), 0)
        a.block(1000)
        sched.add(a)
        sched.add(b)
        assert sched.pick_ready(0) is b

    def test_none_when_all_blocked(self):
        sched = CpuScheduler(0)
        p = Process(0, alu_stream(), 0)
        p.block(1000)
        sched.add(p)
        assert sched.pick_ready(0) is None
        assert sched.earliest_wake() == 1000

    def test_earliest_wake_empty(self):
        assert CpuScheduler(0).earliest_wake() is None
