"""Tests for the TPC-C-like trace generator."""

import itertools
from collections import Counter

from repro.core.workloads import tpcc_workload
from repro.trace.database import DatabaseLayout
from repro.trace.instr import (
    OP_BRANCH,
    OP_LOAD,
    OP_LOCK_ACQ,
    OP_LOCK_REL,
    OP_STORE,
    OP_SYSCALL,
)
from repro.trace.tpcc import TpccParams, TpccTraceGenerator


def take(gen, n):
    return list(itertools.islice(iter(gen), n))


class TestTpccGenerator:
    def setup_method(self):
        self.layout = DatabaseLayout().scaled(16)
        self.gen = TpccTraceGenerator(0, self.layout, seed=2)
        self.instrs = take(self.gen, 60_000)

    def test_transaction_mix(self):
        counts = self.gen.tx_counts
        total = sum(counts.values())
        assert total > 20
        # New-order and payment dominate the mix.
        assert counts["new_order"] / total > 0.3
        assert counts["payment"] / total > 0.3
        # The rare transactions occur over a long enough run.
        gen2 = TpccTraceGenerator(1, self.layout, seed=9)
        take(gen2, 200_000)
        assert gen2.tx_counts["order_status"] > 0
        assert gen2.tx_counts["stock_level"] > 0

    def test_mix_is_oltp_like(self):
        ops = Counter(i.op for i in self.instrs)
        total = len(self.instrs)
        assert 0.10 < ops[OP_LOAD] / total < 0.40
        assert 0.02 < ops[OP_STORE] / total < 0.25
        assert 0.10 < ops[OP_BRANCH] / total < 0.30

    def test_locks_balanced(self):
        acq = sum(1 for i in self.instrs if i.op == OP_LOCK_ACQ)
        rel = sum(1 for i in self.instrs if i.op == OP_LOCK_REL)
        assert abs(acq - rel) <= 1

    def test_commits_present(self):
        assert any(i.op == OP_SYSCALL for i in self.instrs)

    def test_deterministic(self):
        g1 = TpccTraceGenerator(0, self.layout, seed=3)
        g2 = TpccTraceGenerator(0, self.layout, seed=3)
        for a, b in zip(take(g1, 3000), take(g2, 3000)):
            assert (a.op, a.pc, a.addr) == (b.op, b.pc, b.addr)

    def test_read_only_transactions_write_less(self):
        """Order-status and stock-level emit no lock acquires."""
        params = TpccParams(p_new_order=0.0, p_payment=0.0,
                            p_order_status=0.5, p_delivery=0.0)
        gen = TpccTraceGenerator(0, self.layout, tpcc=params, seed=4)
        instrs = take(gen, 20_000)
        locks = sum(1 for i in instrs if i.op == OP_LOCK_ACQ)
        assert locks == 0
        # Remaining stores are private filler writes, never to the SGA.
        shared_stores = sum(
            1 for i in instrs
            if i.op == OP_STORE and i.addr < 0x4000_0000)
        assert shared_stores == 0


class TestTpccWorkloadFactory:
    def test_factory(self):
        wl = tpcc_workload()
        gens = wl.generators(4)
        assert wl.name == "tpcc"
        assert len(gens) == 24
        assert take(gens[0], 100)
