"""Tests for the shared database address-space layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.database import (
    BLOCK_BUFFER_BASE,
    CODE_BASE,
    HISTORY_BASE,
    LOCK_BASE,
    LOG_BASE,
    METADATA_BASE,
    PRIVATE_BASE,
    PRIVATE_STRIDE,
    DatabaseLayout,
    MigratoryHints,
)


class TestLayoutRegions:
    def setup_method(self):
        self.layout = DatabaseLayout()

    def test_region_bases_ordered_and_disjoint(self):
        bases = [CODE_BASE, BLOCK_BUFFER_BASE, METADATA_BASE, LOCK_BASE,
                 HISTORY_BASE, LOG_BASE, PRIVATE_BASE]
        assert bases == sorted(bases)
        assert len(set(bases)) == len(bases)

    def test_code_addr_in_region(self):
        for offset in (0, 1, self.layout.code_bytes - 1,
                       self.layout.code_bytes + 5):
            addr = self.layout.code_addr(offset)
            assert CODE_BASE <= addr < CODE_BASE + self.layout.code_bytes

    def test_lock_addresses_line_aligned_and_distinct(self):
        addrs = {self.layout.lock_addr(i)
                 for i in range(self.layout.n_locks)}
        assert len(addrs) == self.layout.n_locks
        assert all(addr % 64 == 0 for addr in addrs)

    def test_migratory_lines_below_generic_metadata(self):
        top_migratory = self.layout.migratory_addr(
            self.layout.migratory_lines - 1, 63)
        assert self.layout.metadata_addr(0) > top_migratory

    def test_hot_metadata_within_metadata_region(self):
        addr = self.layout.hot_metadata_addr(123456)
        assert METADATA_BASE <= addr < METADATA_BASE + 0x0400_0000

    def test_account_blocks_disjoint_from_read_buffer(self):
        read_top = self.layout.block_buffer_addr(10 ** 9)
        account_bottom = self.layout.account_block_addr(0)
        assert account_bottom > read_top

    def test_private_regions_per_process_disjoint(self):
        a = self.layout.private_addr(0, 0)
        b = self.layout.private_addr(1, 0)
        assert b - a == PRIVATE_STRIDE
        assert self.layout.private_addr(0, 10 ** 9) < b

    def test_log_partitioned_per_process(self):
        top0 = self.layout.log_addr(0, 10 ** 9)
        bottom1 = self.layout.log_addr(1, 0)
        assert top0 < bottom1

    @given(st.integers(min_value=0, max_value=1 << 40))
    @settings(max_examples=100, deadline=None)
    def test_history_in_region(self, offset):
        addr = DatabaseLayout().history_addr(offset)
        assert HISTORY_BASE <= addr < HISTORY_BASE + 0x0400_0000


class TestScaling:
    def test_scaled_shrinks_every_region(self):
        big = DatabaseLayout()
        small = big.scaled(16)
        assert small.block_buffer_bytes < big.block_buffer_bytes
        assert small.metadata_bytes < big.metadata_bytes
        assert small.history_bytes < big.history_bytes
        assert small.private_bytes < big.private_bytes
        assert small.migratory_lines < big.migratory_lines

    def test_scaled_keeps_minimums(self):
        tiny = DatabaseLayout().scaled(1 << 20)
        assert tiny.code_bytes >= 4 * 64
        assert tiny.migratory_lines >= 8
        assert tiny.hot_migratory_lines >= 4

    def test_code_scales_by_quarter_factor(self):
        big = DatabaseLayout()
        small = big.scaled(16)
        assert small.code_bytes == big.code_bytes * 4 // 16

    def test_lock_count_preserved(self):
        assert DatabaseLayout().scaled(16).n_locks == \
            DatabaseLayout().n_locks


class TestMigratoryHints:
    def test_disabled_by_default(self):
        assert not MigratoryHints().applies_to([1, 2, 3])

    def test_no_filter_applies_everywhere(self):
        hints = MigratoryHints(flush=True)
        assert hints.applies_to([42])

    def test_filter_intersection(self):
        hints = MigratoryHints(prefetch=True, pc_filter={10, 20})
        assert hints.applies_to([5, 20])
        assert not hints.applies_to([5, 6])

    def test_empty_filter_applies_nowhere(self):
        hints = MigratoryHints(flush=True, pc_filter=set())
        assert not hints.applies_to([1])
