"""Tests for materialized trace arenas (:mod:`repro.trace.arena`).

Covers lossless pack/replay round-trips against live generator streams,
simulation-result byte-identity between the arena and generator paths
per workload and seed, stream-exhaustion fallback, corrupt-file
quarantine, key stability (and its independence from MODEL_VERSION),
and the executor integration: grouping, materialize-once semantics, and
``trace_gen_s`` accounting.
"""

import json
import warnings

import pytest

import repro.run
from repro.params import default_system
from repro.run import DEFAULT_POLICY, JobSpec, ResultCache, WorkloadSpec, \
    run_many
from repro.trace import arena
from repro.trace.arena import (
    ArenaExhausted,
    ArenaMismatch,
    ArenaRecorder,
    TRACE_VERSION,
    arena_key,
    load_cached,
    write_arena,
)

TINY = dict(instructions=1500, warmup=500)


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    """Isolate each test from process-wide runner state."""
    monkeypatch.setattr(repro.run, "_jobs", 1)
    monkeypatch.setattr(repro.run, "_cache", None)
    monkeypatch.setattr(repro.run, "_manifest", None)
    monkeypatch.setattr(repro.run, "_policy", DEFAULT_POLICY)
    monkeypatch.setattr(repro.run, "_resume", False)
    monkeypatch.setattr(repro.run, "_arenas", "auto")
    monkeypatch.setattr(repro.run, "_trace_dir", None)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)


def _spec(kind="oltp", seed=0, **sizes):
    sizes = {**TINY, **sizes}
    return JobSpec(default_system(), WorkloadSpec(kind), seed=seed,
                   **sizes)


def _write_recorded(path, kind="oltp", seed=0, n_instructions=300):
    """Record ``n_instructions`` per process from live generators and
    persist them; returns (streams, loaded arena)."""
    workload = WorkloadSpec(kind).build()
    generators = [iter(g) for g in workload.generators(4, seed=seed)]
    streams = [[next(g) for _ in range(n_instructions)]
               for g in generators]
    meta = {
        "key": "test-key",
        "workload": WorkloadSpec(kind).to_dict(),
        "workload_name": workload.name,
        "n_nodes": 4,
        "processes_per_cpu": workload.processes_per_cpu,
        "seed": seed,
        "total_budget": 4 * n_instructions,
    }
    assert write_arena(path, streams, meta)
    handle = load_cached(path)
    assert handle is not None
    return streams, handle


class TestRoundTrip:
    @pytest.mark.parametrize("kind,seed", [("oltp", 0), ("dss", 1),
                                           ("tpcc", 2)])
    def test_replay_is_lossless(self, tmp_path, kind, seed):
        path = tmp_path / "t.arena"
        streams, handle = _write_recorded(path, kind, seed)
        assert handle.counts == [len(s) for s in streams]
        for pid, stream in enumerate(streams):
            replay = handle.replay(pid)
            for original in stream:
                got = next(replay)
                assert (got.op, got.pc, got.addr, got.latency) == \
                    (original.op, original.pc, original.addr,
                     original.latency)
                assert tuple(got.deps) == tuple(original.deps)
                assert (got.taken, got.target, got.branch_kind) == \
                    (original.taken, original.target,
                     original.branch_kind)
        arena.forget(path)

    def test_exhausted_stream_raises(self, tmp_path):
        path = tmp_path / "t.arena"
        streams, handle = _write_recorded(path, n_instructions=50)
        replay = handle.replay(0)
        for _ in range(50):
            next(replay)
        with pytest.raises(ArenaExhausted):
            next(replay)
        arena.forget(path)

    def test_generators_validate_shape(self, tmp_path):
        path = tmp_path / "t.arena"
        _streams, handle = _write_recorded(path, seed=3)
        assert len(handle.generators(4, seed=3)) == len(handle.counts)
        with pytest.raises(ArenaMismatch):
            handle.generators(8, seed=3)
        with pytest.raises(ArenaMismatch):
            handle.generators(4, seed=4)
        arena.forget(path)


class TestResultIdentity:
    @pytest.mark.parametrize("kind,seed", [("oltp", 0), ("dss", 1),
                                           ("tpcc", 2)])
    def test_arena_path_matches_generator_path(self, tmp_path, kind,
                                               seed):
        spec = _spec(kind, seed)
        baseline = spec.run().to_dict()
        # First run materializes (recording tee), second run replays;
        # both must match the plain generator path bit-for-bit.
        recorded = run_many([spec], jobs=1, arenas="on",
                            trace_dir=str(tmp_path))
        replayed = run_many([spec], jobs=1, arenas="on",
                            trace_dir=str(tmp_path))
        assert recorded.results[0].to_dict() == baseline
        assert replayed.results[0].to_dict() == baseline
        assert replayed.arena_jobs == 1
        assert replayed.trace_gen_s == 0.0

    def test_exhaustion_falls_back_to_generators(self, tmp_path):
        small = _spec(instructions=800, warmup=200)
        big = _spec(instructions=4000, warmup=1000)
        # Arena sized for the small job...
        recorder = ArenaRecorder(
            small.workload.build(), small.params.n_nodes, small.seed,
            small.workload.to_dict(), small.instructions + small.warmup)
        small.run(workload=recorder.workload())
        path = tmp_path / "small.arena"
        assert recorder.write(path)
        handle = load_cached(path)
        # ...fed to the big job: replay runs dry mid-simulation and the
        # job transparently re-runs on the generator path.
        assert big.run(workload=handle).to_dict() == \
            big.run().to_dict()
        arena.forget(path)


class TestQuarantine:
    def test_corrupt_body_is_quarantined(self, tmp_path):
        path = tmp_path / "t.arena"
        _write_recorded(path)
        arena.forget(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert load_cached(path) is None
        assert not path.exists()
        assert (tmp_path / "quarantine" / "t.arena").exists()

    def test_truncated_header_is_quarantined(self, tmp_path):
        path = tmp_path / "t.arena"
        _write_recorded(path)
        arena.forget(path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert load_cached(path) is None
        assert (tmp_path / "quarantine" / "t.arena").exists()

    def test_worker_side_load_does_not_quarantine(self, tmp_path):
        path = tmp_path / "t.arena"
        _write_recorded(path)
        arena.forget(path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_cached(path, quarantine=False) is None
        assert path.exists()

    def test_missing_file_is_none(self, tmp_path):
        assert load_cached(tmp_path / "absent.arena") is None

    def test_executor_regenerates_after_quarantine(self, tmp_path):
        specs = [_spec(seed=5), _spec(seed=5,
                                      instructions=TINY["instructions"])]
        # Two identical-key jobs force materialization in auto mode.
        first = run_many(specs, jobs=1, arenas="auto",
                         trace_dir=str(tmp_path))
        files = [p for p in tmp_path.iterdir() if p.suffix == ".arena"]
        assert len(files) == 1
        arena.forget(files[0])
        files[0].write_bytes(b"RPARENA1garbage")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = run_many(specs, jobs=1, arenas="auto",
                              trace_dir=str(tmp_path))
        assert [r.to_dict() for r in second.results] == \
            [r.to_dict() for r in first.results]
        assert second.trace_gen_s > 0.0   # re-materialized
        for leftover in (tmp_path / "quarantine").iterdir():
            assert leftover.name == files[0].name


class TestKeys:
    def test_key_is_stable_and_sensitive(self):
        workload = WorkloadSpec("oltp").to_dict()
        key = arena_key(workload, 4, 0, 2000)
        assert key == arena_key(workload, 4, 0, 2000)
        assert key != arena_key(workload, 8, 0, 2000)
        assert key != arena_key(workload, 4, 1, 2000)
        assert key != arena_key(workload, 4, 0, 2001)
        assert key != arena_key(WorkloadSpec("dss").to_dict(), 4, 0,
                                2000)

    def test_key_independent_of_model_version(self, monkeypatch):
        """Timing-model bumps must not invalidate materialized traces."""
        import repro.run.jobs as jobs_module
        workload = WorkloadSpec("oltp").to_dict()
        before = arena_key(workload, 4, 0, 2000)
        monkeypatch.setattr(jobs_module, "MODEL_VERSION", 9999)
        assert arena_key(workload, 4, 0, 2000) == before

    def test_key_folds_in_trace_version(self):
        workload = WorkloadSpec("oltp").to_dict()
        payload = {
            "trace_version": TRACE_VERSION,
            "workload": workload,
            "n_nodes": 4,
            "seed": 0,
            "total_budget": 2000,
        }
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        import hashlib
        assert arena_key(workload, 4, 0, 2000) == \
            hashlib.sha256(text.encode()).hexdigest()


class TestExecutorIntegration:
    def test_sweep_materializes_once_and_reuses(self, tmp_path):
        import dataclasses
        base = default_system()
        specs = []
        for window in (16, 64):
            params = base.replace(processor=dataclasses.replace(
                base.processor, window_size=window))
            specs.append(JobSpec(params, WorkloadSpec("oltp"), seed=0,
                                 **TINY))
        cold = run_many(specs, jobs=1, arenas="auto",
                        trace_dir=str(tmp_path))
        assert cold.trace_gen_s > 0.0
        assert cold.arena_jobs == 1   # materializer + one consumer
        warm = run_many(specs, jobs=1, arenas="auto",
                        trace_dir=str(tmp_path))
        assert warm.trace_gen_s == 0.0
        assert warm.arena_jobs == 2   # both replay now
        assert [r.to_dict() for r in warm.results] == \
            [r.to_dict() for r in cold.results]
        files = [p for p in tmp_path.iterdir() if p.suffix == ".arena"]
        assert len(files) == 1

    def test_auto_skips_singleton_groups(self, tmp_path):
        report = run_many([_spec(seed=9)], jobs=1, arenas="auto",
                          trace_dir=str(tmp_path))
        assert report.arena_jobs == 0
        assert report.trace_gen_s == 0.0
        assert not any(tmp_path.iterdir())

    def test_off_disables_arenas(self, tmp_path):
        specs = [_spec(seed=0), _spec(seed=0)]
        report = run_many(specs, jobs=1, arenas="off",
                          trace_dir=str(tmp_path))
        assert report.arena_jobs == 0
        assert not any(tmp_path.iterdir())

    def test_trace_dir_defaults_beside_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = [_spec(seed=0), _spec(seed=0)]
        report = run_many(specs, jobs=1, cache=cache, arenas="auto")
        assert report.arena_jobs >= 0
        traces = tmp_path / "cache" / "traces"
        assert traces.is_dir() and any(traces.iterdir())

    def test_no_trace_dir_no_cache_disables_arenas(self):
        specs = [_spec(seed=0), _spec(seed=0)]
        report = run_many(specs, jobs=1, arenas="auto")
        assert report.arena_jobs == 0 and report.trace_gen_s == 0.0

    def test_arena_reference_not_in_fingerprint(self, tmp_path):
        spec = _spec(seed=0)
        before = spec.fingerprint()
        run_many([spec, _spec(seed=0)], jobs=1, arenas="auto",
                 trace_dir=str(tmp_path))
        assert spec.fingerprint() == before
