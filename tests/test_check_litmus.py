"""Consistency litmus matrix: every model/implementation combination
must forbid or allow exactly the outcomes the paper's models define."""

import pytest

from repro.check.litmus import (
    message_passing,
    migratory_handoff,
    run_litmus_suite,
    store_buffering,
)
from repro.params import ConsistencyImpl, ConsistencyModel

MODELS = (ConsistencyModel.SC, ConsistencyModel.PC, ConsistencyModel.RC)
IMPLS = (ConsistencyImpl.STRAIGHTFORWARD, ConsistencyImpl.PREFETCH,
         ConsistencyImpl.SPECULATIVE)


@pytest.mark.parametrize("impl", IMPLS, ids=lambda i: i.name.lower())
@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name.lower())
class TestMatrix:
    def test_message_passing(self, model, impl):
        result = message_passing(model, impl, check=True)
        assert result.passed, result.detail

    def test_store_buffering(self, model, impl):
        result = store_buffering(model, impl, check=True)
        assert result.passed, result.detail


class TestMessagePassingSemantics:
    def test_rc_reorders_flag_before_data(self):
        """Under RC the flag store drains from the store buffer ahead of
        the slower data store -- the witnessed reordering."""
        result = message_passing(ConsistencyModel.RC,
                                 ConsistencyImpl.STRAIGHTFORWARD)
        assert result.observed and result.allowed

    def test_sc_keeps_program_order(self):
        result = message_passing(ConsistencyModel.SC,
                                 ConsistencyImpl.STRAIGHTFORWARD)
        assert not result.observed and not result.allowed


class TestStoreBufferingSemantics:
    def test_pc_allows_dekker_failure(self):
        result = store_buffering(ConsistencyModel.PC,
                                 ConsistencyImpl.STRAIGHTFORWARD)
        assert result.observed and result.allowed

    def test_sc_speculative_rolls_back(self):
        """SC with speculative loads must still forbid the relaxed
        outcome (the R10000-style rollback re-performs the load)."""
        result = store_buffering(ConsistencyModel.SC,
                                 ConsistencyImpl.SPECULATIVE)
        assert not result.observed and not result.allowed


class TestMigratory:
    @pytest.mark.parametrize("protocol", [False, True],
                             ids=["base", "adaptive"])
    def test_handoff_detected(self, protocol):
        result = migratory_handoff(protocol)
        assert result.passed, result.detail


def test_full_suite_shape():
    results = run_litmus_suite(check=True)
    assert len(results) == 20
    assert all(r.passed for r in results), \
        "\n".join(str(r) for r in results if not r.passed)
