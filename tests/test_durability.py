"""Tests for the crash-consistency harness.

Covers the unified atomic write primitive (:mod:`repro.run.atomicio`),
deterministic disk-fault injection (``REPRO_FAULTS`` ``torn`` /
``shortwrite`` / ``enospc`` / ``eio`` / ``renamecrash`` /
``fsyncdrop``), the recovery auditor (``repro audit-state``), gc race
safety against in-flight writes, the R013 lint rule, and the core
property: a sweep crashed at *every* durable write boundary of every
artifact category, then resumed, reproduces the fault-free results
byte-for-byte with a clean durability audit.
"""

import errno
import json
import os
import warnings
from pathlib import Path

import pytest

import repro.run
from repro import cli
from repro.params import default_system
from repro.run import (
    DEFAULT_POLICY,
    MANIFEST_NAME,
    AuditReport,
    CriticalWriteError,
    DurabilityWarning,
    FaultPlan,
    FramedReadError,
    InjectedCrash,
    InjectedDiskFault,
    JobSpec,
    ResultCache,
    RetryPolicy,
    SweepManifest,
    WorkloadSpec,
    audit_state,
    run_many,
)
from repro.run import atomicio
from repro.run import checkpoint as ckpt
from repro.run import gc as run_gc
from repro.run import triage
from repro.run.faults import DISK_FAULT_KINDS

TINY = dict(instructions=800, warmup=800)

FAST_BACKOFF = dict(backoff_base=0.001, backoff_cap=0.01)


def tiny_spec(seed=0, kind="oltp", **params_changes):
    params = default_system(**params_changes)
    return JobSpec(params, WorkloadSpec(kind), seed=seed, **TINY)


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    """Isolate each test from process-wide runner and atomicio state."""
    monkeypatch.setattr(repro.run, "_jobs", 1)
    monkeypatch.setattr(repro.run, "_cache", None)
    monkeypatch.setattr(repro.run, "_manifest", None)
    monkeypatch.setattr(repro.run, "_policy", DEFAULT_POLICY)
    monkeypatch.setattr(repro.run, "_resume", False)
    monkeypatch.setattr(repro.run, "_checkpoint_every",
                        repro.run.DEFAULT_CHECKPOINT_EVERY)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    atomicio.reset_state()
    yield
    atomicio.reset_state()


def _plan(**kwargs):
    return FaultPlan(**kwargs)


# ---------------------------------------------------------------------------
# The atomic write primitive
# ---------------------------------------------------------------------------

class TestAtomicWrite:
    def test_bytes_round_trip_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "deep" / "artifact.bin"
        assert atomicio.atomic_write_bytes(target, b"payload",
                                           category="cache")
        assert target.read_bytes() == b"payload"
        assert atomicio.orphan_tmp_files(target.parent) == []

    def test_json_is_canonical_with_trailing_newline(self, tmp_path):
        target = tmp_path / "doc.json"
        assert atomicio.atomic_write_json(target, {"b": 1, "a": 2},
                                          category="cache")
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        target = tmp_path / "doc.txt"
        atomicio.atomic_write_text(target, "old", category="cache")
        atomicio.atomic_write_text(target, "new", category="cache")
        assert target.read_text() == "new"

    def test_best_effort_failure_warns_once_per_kind(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        target = blocker / "entry.json"
        with pytest.warns(DurabilityWarning, match="cache write failed"):
            assert not atomicio.atomic_write_bytes(target, b"x",
                                                   category="cache")
        # Same (category, error kind): silent the second time.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not atomicio.atomic_write_bytes(target, b"x",
                                                   category="cache")
        # A different category still gets its one warning.
        with pytest.warns(DurabilityWarning, match="arena write failed"):
            assert not atomicio.atomic_write_bytes(target, b"x",
                                                   category="arena")

    def test_critical_failure_raises(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(CriticalWriteError, match="manifest"):
            atomicio.atomic_write_bytes(blocker / "m.json", b"x",
                                        category="manifest",
                                        critical=True)

    def test_framed_round_trip_and_validation(self, tmp_path):
        target = tmp_path / "blob.ckpt"
        magic = b"TESTMAG1"
        assert atomicio.write_framed(target, magic, b"hello",
                                     category="checkpoint")
        assert atomicio.read_framed(target, magic) == b"hello"
        with pytest.raises(FramedReadError, match="bad magic"):
            atomicio.read_framed(target, b"OTHERMAG")
        data = bytearray(target.read_bytes())
        data[-1] ^= 0x01
        target.write_bytes(bytes(data))
        with pytest.raises(FramedReadError, match="checksum mismatch"):
            atomicio.read_framed(target, magic)

    def test_checked_json_round_trip_and_validation(self, tmp_path):
        target = tmp_path / "state.json"
        body = {"removed": 3, "freed": 4096}
        assert atomicio.write_checked_json(target, body,
                                           category="gcstate")
        assert atomicio.read_checked_json(target) == body
        payload = json.loads(target.read_text())
        payload["body"]["removed"] = 99      # checksum now stale
        target.write_text(json.dumps(payload))
        with pytest.raises(FramedReadError, match="checksum mismatch"):
            atomicio.read_checked_json(target)
        target.write_text("not json at all")
        with pytest.raises(FramedReadError, match="unparseable"):
            atomicio.read_checked_json(target)

    def test_quarantine_moves_evidence_and_warns(self, tmp_path):
        corrupt = tmp_path / "bad.json"
        corrupt.write_text("torn")
        with pytest.warns(RuntimeWarning,
                          match="quarantined corrupt cache entry"):
            moved = atomicio.quarantine(corrupt, "checksum mismatch",
                                        label="cache entry")
        assert moved == tmp_path / "quarantine" / "bad.json"
        assert moved.exists() and not corrupt.exists()

    def test_sweep_orphans_removes_only_stale(self, tmp_path):
        stale = tmp_path / "dead.tmp"
        young = tmp_path / "live.tmp"
        stale.write_bytes(b"")
        young.write_bytes(b"")
        now = atomicio.time_now()
        os.utime(stale, (now - 7200, now - 7200))
        assert atomicio.sweep_orphans(tmp_path, now=now) == 1
        assert not stale.exists() and young.exists()


# ---------------------------------------------------------------------------
# Deterministic disk-fault injection
# ---------------------------------------------------------------------------

class TestDiskFaultInjection:
    def test_parse_recognises_disk_fault_keys(self):
        plan = FaultPlan.parse(
            "torn:0.1,shortwrite:0.2,enospc:0.3,eio:0.4,"
            "renamecrash:0.5,fsyncdrop:0.6,seed:9")
        for kind, prob in zip(DISK_FAULT_KINDS,
                              (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)):
            assert getattr(plan, kind) == prob
        assert plan.seed == 9
        assert plan.active and plan.disk_active

    def test_schedule_is_a_pure_function_of_the_plan(self):
        plan = _plan(torn=0.3, enospc=0.2, renamecrash=0.1, seed=5)
        schedule = [plan.disk_fault("cache", "write", seq)
                    for seq in range(64)]
        assert schedule == [plan.disk_fault("cache", "write", seq)
                            for seq in range(64)]
        # Multiple kinds actually fire somewhere in the window, and a
        # different category rolls an independent schedule.
        assert len({kind for kind in schedule if kind}) >= 2
        assert schedule != [plan.disk_fault("arena", "write", seq)
                            for seq in range(64)]

    def test_torn_offset_strictly_damages_the_payload(self):
        plan = _plan(torn=1.0, seed=3)
        for size in (1, 2, 17, 4096):
            offset = plan.torn_offset(size, "cache", 0)
            assert 0 <= offset < size

    def test_sequence_counters_order_the_schedule(self, tmp_path):
        plan = _plan()          # inactive: no faults, just counting
        for i in range(3):
            atomicio.atomic_write_bytes(tmp_path / f"{i}.bin", b"x",
                                        category="cache", plan=plan)
        atomicio.atomic_write_bytes(tmp_path / "a.bin", b"x",
                                    category="arena", plan=plan)
        assert atomicio.sequence_numbers() == {"cache": 3, "arena": 1}

    def test_enospc_fails_up_front(self, tmp_path):
        target = tmp_path / "entry.json"
        with pytest.warns(DurabilityWarning, match="ENOSPC"):
            ok = atomicio.atomic_write_bytes(target, b"x" * 64,
                                             category="cache",
                                             plan=_plan(enospc=1.0))
        assert not ok
        assert not target.exists()
        assert atomicio.orphan_tmp_files(tmp_path) == []

    def test_torn_write_renames_damaged_bytes(self, tmp_path):
        target = tmp_path / "blob.ckpt"
        magic = b"TESTMAG1"
        assert atomicio.write_framed(target, magic, b"p" * 100,
                                     category="checkpoint",
                                     plan=_plan(torn=1.0))
        assert target.exists()
        assert len(target.read_bytes()) < len(magic) + 64 + 100
        with pytest.raises(FramedReadError):
            atomicio.read_framed(target, magic)

    def test_shortwrite_fails_with_eio_and_cleans_up(self, tmp_path):
        target = tmp_path / "entry.json"
        with pytest.warns(DurabilityWarning, match="EIO"):
            ok = atomicio.atomic_write_bytes(target, b"x" * 64,
                                             category="cache",
                                             plan=_plan(shortwrite=1.0))
        assert not ok
        assert not target.exists()
        assert atomicio.orphan_tmp_files(tmp_path) == []

    def test_eio_fails_the_rename_and_cleans_up(self, tmp_path):
        target = tmp_path / "entry.json"
        with pytest.warns(DurabilityWarning, match="EIO"):
            ok = atomicio.atomic_write_bytes(target, b"x",
                                             category="cache",
                                             plan=_plan(eio=1.0))
        assert not ok
        assert not target.exists()
        assert atomicio.orphan_tmp_files(tmp_path) == []

    def test_renamecrash_leaves_the_orphan_behind(self, tmp_path):
        target = tmp_path / "entry.json"
        with pytest.raises(InjectedCrash, match="before rename"):
            atomicio.atomic_write_bytes(target, b"x", category="cache",
                                        plan=_plan(renamecrash=1.0))
        assert not target.exists()
        assert len(atomicio.orphan_tmp_files(tmp_path)) == 1

    def test_fsyncdrop_keeps_the_content_intact(self, tmp_path):
        target = tmp_path / "entry.json"
        assert atomicio.atomic_write_bytes(target, b"payload",
                                           category="cache",
                                           plan=_plan(fsyncdrop=1.0))
        assert target.read_bytes() == b"payload"

    def test_critical_writes_are_exempt_from_injection(self, tmp_path):
        target = tmp_path / "manifest.json"
        plan = _plan(enospc=1.0, renamecrash=1.0)
        assert atomicio.atomic_write_bytes(target, b"ledger",
                                           category="manifest",
                                           critical=True, plan=plan)
        assert target.read_bytes() == b"ledger"

    def test_explicit_none_plan_disables_env_injection(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "enospc:1")
        target = tmp_path / "entry.json"
        assert atomicio.atomic_write_bytes(target, b"x",
                                           category="cache", plan=None)
        assert target.exists()

    def test_injected_disk_fault_is_a_real_oserror(self):
        fault = InjectedDiskFault(errno.ENOSPC, "injected")
        assert isinstance(fault, OSError)
        assert fault.errno == errno.ENOSPC


# ---------------------------------------------------------------------------
# Crash at every durable write boundary, resume, byte-identity + audit
# ---------------------------------------------------------------------------

class _BoundaryPlan:
    """Fault-plan stub firing one kind at exactly one (category, seq)."""

    def __init__(self, category, seq, kind="renamecrash"):
        self.category = category
        self.seq = seq
        self.kind = kind
        self.fired = False

    def disk_fault(self, category, op, seq):
        if category == self.category and seq == self.seq:
            self.fired = True
            return self.kind
        return None

    def torn_offset(self, size, category, seq):
        return size // 2 if size > 1 else 0


def _sweep(cache_dir, *, arenas="off", checkpoint_every=0,
           seeds=(0, 1)):
    cache_dir = Path(cache_dir)
    cache = ResultCache(cache_dir)
    manifest = SweepManifest(cache_dir / MANIFEST_NAME)
    specs = [tiny_spec(seed=s) for s in seeds]
    return run_many(
        specs, jobs=1, cache=cache, manifest=manifest,
        policy=RetryPolicy(retries=3, job_timeout=60, **FAST_BACKOFF),
        resume=True, arenas=arenas,
        trace_dir=str(cache_dir / "traces"),
        checkpoint_every=checkpoint_every)


def _dumps(report):
    return [r.dump() for r in report.results]


def _assert_clean_audit(cache_dir):
    report = audit_state(cache_dir)
    assert isinstance(report, AuditReport)
    assert report.ok, report.format_report(verbose=True)
    return report


class TestCrashAtEveryWriteBoundary:
    """The acceptance property: kill the writer at each durable write
    boundary; a resumed sweep must match the fault-free baseline
    byte-for-byte and leave zero audit violations."""

    @pytest.mark.parametrize("category,arenas,every", [
        ("cache", "off", 0),
        ("checkpoint", "off", 400),
        ("arena", "on", 0),
    ])
    def test_writer_death_at_every_boundary(self, tmp_path, monkeypatch,
                                            category, arenas, every):
        base = _sweep(tmp_path / "base", arenas=arenas,
                      checkpoint_every=every)
        assert not base.failures
        base_dumps = _dumps(base)
        boundaries = atomicio.sequence_numbers().get(category, 0)
        assert boundaries >= 2, \
            f"baseline produced no {category} write boundaries"

        for seq in range(boundaries):
            workdir = tmp_path / f"{category}-{seq}"
            plan = _BoundaryPlan(category, seq)
            atomicio.reset_state()
            monkeypatch.setattr(atomicio, "plan_from_env",
                                lambda p=plan: p)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    _sweep(workdir, arenas=arenas,
                           checkpoint_every=every)
                except InjectedCrash:
                    pass     # writer death escaped run_many: a real
                    #          process kill looks exactly like this
            monkeypatch.setattr(atomicio, "plan_from_env",
                                lambda: None)
            assert plan.fired, \
                f"{category} boundary {seq} never reached"
            atomicio.reset_state()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                resumed = _sweep(workdir, arenas=arenas,
                                 checkpoint_every=every)
            assert not resumed.failures
            assert _dumps(resumed) == base_dumps, \
                f"resume after {category} boundary {seq} diverged"
            _assert_clean_audit(workdir)

    def test_crash_between_manifest_flushes(self, tmp_path, monkeypatch):
        base = _sweep(tmp_path / "base")
        base_dumps = _dumps(base)
        flushes = atomicio.sequence_numbers().get("manifest", 0)
        assert flushes >= 2

        real_write = atomicio.atomic_write_json
        for target in range(flushes):
            workdir = tmp_path / f"manifest-{target}"
            state = {"calls": 0}

            def crashing(path, payload, *, category, _state=state,
                         _target=target, **kwargs):
                if category == "manifest":
                    call = _state["calls"]
                    _state["calls"] = call + 1
                    if call == _target:
                        raise InjectedCrash(
                            f"injected crash at manifest flush {call}")
                return real_write(path, payload, category=category,
                                  **kwargs)

            atomicio.reset_state()
            monkeypatch.setattr(atomicio, "atomic_write_json", crashing)
            try:
                _sweep(workdir)
            except InjectedCrash:
                pass
            monkeypatch.setattr(atomicio, "atomic_write_json",
                                real_write)
            assert state["calls"] > target
            atomicio.reset_state()
            resumed = _sweep(workdir)
            assert not resumed.failures
            assert _dumps(resumed) == base_dumps, \
                f"resume after manifest flush {target} diverged"
            _assert_clean_audit(workdir)

    def test_torn_cache_entry_is_quarantined_and_recomputed(
            self, tmp_path, monkeypatch):
        base = _sweep(tmp_path / "base")
        base_dumps = _dumps(base)

        workdir = tmp_path / "torn"
        plan = _BoundaryPlan("cache", 0, kind="torn")
        atomicio.reset_state()
        monkeypatch.setattr(atomicio, "plan_from_env", lambda: plan)
        torn = _sweep(workdir)
        monkeypatch.setattr(atomicio, "plan_from_env", lambda: None)
        assert plan.fired
        # The torn write renamed silently; results are still correct
        # (computed in memory) and the scar is caught at the next read.
        assert _dumps(torn) == base_dumps
        report = audit_state(workdir)
        assert report.ok
        assert any("corrupt entry" in f.message for f in report.warnings)

        atomicio.reset_state()
        with pytest.warns(RuntimeWarning, match="quarantined"):
            resumed = _sweep(workdir)
        assert _dumps(resumed) == base_dumps
        _assert_clean_audit(workdir)

    def test_sweep_survives_total_storage_failure(self, tmp_path,
                                                  monkeypatch):
        base = _sweep(tmp_path / "base", checkpoint_every=400)
        base_dumps = _dumps(base)
        # Every best-effort write fails with disk-full; only the
        # critical manifest lands.  The sweep must still complete with
        # byte-identical results and a clean (if scarred) audit.
        monkeypatch.setenv("REPRO_FAULTS", "enospc:1,seed:0")
        workdir = tmp_path / "full-disk"
        with pytest.warns(DurabilityWarning):
            report = _sweep(workdir, checkpoint_every=400)
        assert not report.failures
        assert _dumps(report) == base_dumps
        monkeypatch.delenv("REPRO_FAULTS")
        _assert_clean_audit(workdir)

    def test_chaos_plan_resumes_to_byte_identity(self, tmp_path,
                                                 monkeypatch):
        """The CI chaos-smoke recipe in miniature: a mixed
        torn+enospc+renamecrash plan, re-invoked until the sweep
        completes, must converge on the fault-free baseline."""
        base = _sweep(tmp_path / "base", arenas="on",
                      checkpoint_every=400)
        base_dumps = _dumps(base)
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "torn:0.08,enospc:0.08,renamecrash:0.04,seed:11")
        workdir = tmp_path / "chaos"
        report = None
        for _ in range(25):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                try:
                    report = _sweep(workdir, arenas="on",
                                    checkpoint_every=400)
                    break
                except InjectedCrash:
                    continue    # process died mid-write: run again
        assert report is not None, "chaos sweep never completed"
        assert not report.failures
        assert _dumps(report) == base_dumps
        monkeypatch.delenv("REPRO_FAULTS")
        atomicio.reset_state()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            resumed = _sweep(workdir, arenas="on", checkpoint_every=400)
        assert _dumps(resumed) == base_dumps
        _assert_clean_audit(workdir)


# ---------------------------------------------------------------------------
# Focused boundary tests for triage bundles and the gc journal
# ---------------------------------------------------------------------------

class TestTriageAndGcStateBoundaries:
    def test_triage_writer_death_leaves_auditable_orphan(
            self, tmp_path, monkeypatch):
        spec = tiny_spec()
        monkeypatch.setenv("REPRO_FAULTS", "renamecrash:1,seed:0")
        with pytest.raises(InjectedCrash):
            triage.write_bundle(tmp_path, spec=spec,
                                fingerprint=spec.fingerprint(),
                                attempt=0, error="boom")
        monkeypatch.delenv("REPRO_FAULTS")
        report = audit_state(tmp_path)
        assert report.ok
        assert any(f.category == "orphan" for f in report.notes)

    def test_gc_journal_faulted_write_degrades_and_audits(
            self, tmp_path, monkeypatch):
        plan = run_gc.plan_gc(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "enospc:1,seed:0")
        with pytest.warns(DurabilityWarning):
            assert not run_gc.write_gc_state(tmp_path, plan, 0, 0)
        assert run_gc.read_gc_state(tmp_path) is None

        monkeypatch.setenv("REPRO_FAULTS", "torn:1,seed:0")
        atomicio.reset_state()
        assert run_gc.write_gc_state(tmp_path, plan, 0, 0)
        with pytest.raises(FramedReadError):
            run_gc.read_gc_state(tmp_path)
        monkeypatch.delenv("REPRO_FAULTS")
        report = audit_state(tmp_path)
        assert report.ok
        assert any(f.category == "gcstate" for f in report.warnings)

    def test_gc_journal_round_trip(self, tmp_path):
        plan = run_gc.plan_gc(tmp_path)
        removed, freed = plan.apply()
        assert run_gc.write_gc_state(tmp_path, plan, removed, freed)
        body = run_gc.read_gc_state(tmp_path)
        assert body["removed"] == removed
        assert body["freed_bytes"] == freed
        assert body["format"] == run_gc.GC_STATE_FORMAT
        _assert_clean_audit(tmp_path)


# ---------------------------------------------------------------------------
# Manifest criticality
# ---------------------------------------------------------------------------

class TestManifestCriticality:
    def test_unwritable_manifest_fails_loudly(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        manifest = SweepManifest(blocker / MANIFEST_NAME)
        manifest.records = {}
        with pytest.raises(CriticalWriteError):
            manifest.flush()

    def test_manifest_flush_ignores_disk_fault_plans(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS",
                           "enospc:1,renamecrash:1,seed:0")
        manifest = SweepManifest(tmp_path / MANIFEST_NAME)
        manifest.flush()
        assert (tmp_path / MANIFEST_NAME).exists()
        data = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert "jobs" in data


# ---------------------------------------------------------------------------
# GC racing in-flight writes
# ---------------------------------------------------------------------------

class TestGcRaceSafety:
    def test_grace_window_pins_fresh_artifacts(self, tmp_path):
        now = atomicio.time_now()
        ckdir = tmp_path / "checkpoints" / ("a" * 64)
        ckdir.mkdir(parents=True)
        (ckdir / "ck-000000000400.ckpt").write_bytes(b"fresh")
        rules = {"checkpoints": run_gc.RetentionRule(max_age_s=0.0)}
        plan = run_gc.plan_gc(tmp_path, rules=rules, now=now)
        assert plan.evictions == []
        (pinned,) = plan.pinned
        assert "grace window" in pinned.pin_reason

    def test_gc_never_eats_a_young_tmp_file(self, tmp_path):
        now = atomicio.time_now()
        young = tmp_path / "inflight.tmp"
        young.write_bytes(b"mid-write")
        stale = tmp_path / "abandoned.tmp"
        stale.write_bytes(b"dead")
        os.utime(stale, (now - 7200, now - 7200))
        plan = run_gc.plan_gc(tmp_path, now=now)
        evicted = {item.path for item in plan.evictions}
        assert stale in evicted and young not in evicted
        plan.apply()
        assert young.exists() and not stale.exists()
        _assert_clean_audit(tmp_path)

    def test_just_renamed_artifact_survives_aggressive_rules(
            self, tmp_path):
        now = atomicio.time_now()
        traces = tmp_path / "traces"
        traces.mkdir()
        (traces / "fresh.arena").write_bytes(b"x" * 128)
        rules = {"arenas": run_gc.RetentionRule(max_age_s=0.0,
                                                max_bytes=0)}
        plan = run_gc.plan_gc(tmp_path, rules=rules, now=now)
        assert plan.evictions == []

    def test_audit_clean_after_gc_on_a_real_sweep(self, tmp_path):
        _sweep(tmp_path, arenas="on", checkpoint_every=400)
        # Age everything past the caps, then collect with audit cross-
        # check: gc plus the journal write must leave zero violations.
        old = atomicio.time_now() - 30 * 86400
        for path in tmp_path.rglob("*"):
            if path.name != MANIFEST_NAME:
                os.utime(path, (old, old))
        plan = run_gc.plan_gc(tmp_path)
        removed, freed = plan.apply()
        assert run_gc.write_gc_state(tmp_path, plan, removed, freed)
        report = _assert_clean_audit(tmp_path)
        assert report.scanned.get("gcstate") == 1


# ---------------------------------------------------------------------------
# The recovery auditor
# ---------------------------------------------------------------------------

class TestAuditState:
    def test_missing_directory_is_a_note(self, tmp_path):
        report = audit_state(tmp_path / "never-created")
        assert report.ok
        assert len(report.notes) == 1

    def test_clean_sweep_audits_clean(self, tmp_path):
        _sweep(tmp_path, arenas="on", checkpoint_every=400)
        report = _assert_clean_audit(tmp_path)
        assert report.scanned.get("entries") == 2
        assert report.scanned.get("manifest") == 1
        assert report.scanned.get("arenas") == 2
        assert not report.findings

    def test_corrupt_entry_is_a_warning_not_a_violation(self, tmp_path):
        _sweep(tmp_path)
        entry = sorted(p for p in tmp_path.glob("*.json")
                       if ResultCache._is_entry(p))[0]
        entry.write_text(entry.read_text()[: entry.stat().st_size // 2])
        report = audit_state(tmp_path)
        assert report.ok
        assert any("corrupt entry" in f.message
                   for f in report.warnings)

    def test_unparseable_manifest_is_a_violation(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / MANIFEST_NAME).write_text("{torn mid-write")
        report = audit_state(tmp_path)
        assert not report.ok
        assert any(f.category == "manifest"
                   for f in report.violations)

    def test_double_charged_attempt_is_a_violation(self, tmp_path):
        record = {
            "fingerprint": "ab" * 32, "label": "cell", "status": "done",
            "attempts": 2, "cached": True, "error": "",
            "attempt_log": [
                {"attempt": 0, "outcome": "ok", "error": "",
                 "start_offset": 0},
                {"attempt": 0, "outcome": "ok", "error": "",
                 "start_offset": 0},
            ],
        }
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": 1, "jobs": [record]}))
        report = audit_state(tmp_path)
        assert not report.ok
        assert any("charged more than once" in f.message
                   for f in report.violations)

    def test_dishonest_checkpoint_name_is_a_violation(self, tmp_path):
        from repro.run.jobs import MODEL_VERSION
        store = ckpt.CheckpointStore.for_job(tmp_path, "c" * 64)
        saved = store.save({"format": ckpt.CHECKPOINT_FORMAT,
                            "model_version": MODEL_VERSION,
                            "retired": 400})
        assert saved is not None
        saved.rename(saved.with_name("ck-000000000999.ckpt"))
        report = audit_state(tmp_path)
        assert not report.ok
        assert any("fallback ordering would lie" in f.message
                   for f in report.violations)

    def test_stale_orphans_warn_and_sweep_on_request(self, tmp_path):
        stray = tmp_path / "abandoned.tmp"
        stray.write_bytes(b"")
        now = atomicio.time_now() + 2 * atomicio.ORPHAN_TTL
        report = audit_state(tmp_path, now=now)
        assert report.ok
        assert any(f.category == "orphan" for f in report.warnings)
        swept = audit_state(tmp_path, now=now, sweep=True)
        assert swept.swept == 1 and not stray.exists()
        assert not audit_state(tmp_path, now=now).findings

    def test_format_report_states_the_verdict(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{")
        report = audit_state(tmp_path)
        text = report.format_report(verbose=True)
        assert "durability contract: VIOLATED" in text
        clean = audit_state(tmp_path / "empty-elsewhere")
        assert "durability contract: OK" in clean.format_report()


# ---------------------------------------------------------------------------
# R013: durable writes must go through atomicio
# ---------------------------------------------------------------------------

class TestR013Lint:
    @staticmethod
    def _lint_override(rel_path, source):
        from repro.check.lint import default_lint_root, lint_paths
        target = os.path.join(default_lint_root(), rel_path)
        violations, _ = lint_paths([target], overrides={target: source})
        return [v for v in violations if v.code == "R013"]

    def test_fires_on_raw_open_in_the_durable_tree(self):
        hits = self._lint_override(
            os.path.join("run", "cache.py"),
            "def probe(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n")
        assert len(hits) == 1
        assert "atomicio" in hits[0].message

    def test_fires_on_os_replace_and_path_write(self):
        hits = self._lint_override(
            os.path.join("trace", "arena.py"),
            "import os\n"
            "def probe(tmp, path):\n"
            "    os.replace(tmp, path)\n"
            "    path.write_bytes(b'x')\n")
        assert {v.line for v in hits} == {3, 4}

    def test_read_only_open_is_fine(self):
        hits = self._lint_override(
            os.path.join("run", "cache.py"),
            "def probe(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
            "def probe2(path):\n"
            "    with open(path, 'rb') as fh:\n"
            "        return fh.read()\n")
        assert hits == []

    def test_atomicio_itself_is_exempt(self):
        hits = self._lint_override(
            os.path.join("run", "atomicio.py"),
            "import os\n"
            "def probe(tmp, path):\n"
            "    os.replace(tmp, path)\n")
        assert hits == []

    def test_pragma_escape_hatch(self):
        hits = self._lint_override(
            os.path.join("run", "cache.py"),
            "def probe(path, text):\n"
            "    path.write_text(text)  "
            "# repro-lint: disable=R013\n")
        assert hits == []

    def test_static_teeth_mutation_is_detected(self):
        from repro.check.lint.selftest import run_static_mutation
        detail = run_static_mutation("raw-durable-write")
        assert "R013 fired" in detail

    def test_the_real_tree_is_clean(self):
        from repro.check.lint import default_lint_root, lint_paths
        violations, _ = lint_paths([default_lint_root()])
        assert [v for v in violations if v.code == "R013"] == []

    def test_explain_describes_the_contract(self):
        from repro.check.lint import explain_rule
        text = explain_rule("R013")
        assert "atomicio" in text and "R013" in text


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestAuditStateCli:
    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        _sweep(tmp_path)
        assert cli.main(["--no-cache", "audit-state",
                         str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "durability contract: OK" in out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / MANIFEST_NAME).write_text("{torn")
        assert cli.main(["--no-cache", "audit-state",
                         str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "durability contract: VIOLATED" in out

    def test_sweep_flag_removes_stale_orphans(self, tmp_path):
        stray = tmp_path / "abandoned.tmp"
        stray.write_bytes(b"")
        old = atomicio.time_now() - 2 * atomicio.ORPHAN_TTL
        os.utime(stray, (old, old))
        assert cli.main(["--no-cache", "audit-state", "--sweep",
                         str(tmp_path)]) == 0
        assert not stray.exists()

    def test_check_durability_flag_runs(self, tmp_path, monkeypatch):
        calls = {}

        def fake_suite(verbose=True, self_test=True, durability=False):
            calls["durability"] = durability
            return True

        monkeypatch.setattr("repro.check.run_check_suite", fake_suite)
        assert cli.main(["check", "--durability"]) == 0
        assert calls["durability"] is True
