"""Tests for trace capture and replay."""

import io
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.workloads import oltp_workload
from repro.params import default_system
from repro.system.machine import Machine
from repro.trace.instr import (
    BR_CALL,
    BR_COND,
    OP_BRANCH,
    OP_INT,
    OP_LOAD,
    OP_STORE,
    Instruction,
)
from repro.trace.tracefile import (
    MAGIC,
    TraceWriteError,
    capture,
    read_trace,
    replay,
    write_trace,
)


def roundtrip(instructions):
    buf = io.BytesIO()
    write_trace(iter(instructions), buf)
    buf.seek(0)
    return list(read_trace(buf))


class TestRoundTrip:
    def test_alu(self):
        out = roundtrip([Instruction(OP_INT, 0x1000, deps=(1, 5),
                                     latency=3)])
        instr = out[0]
        assert (instr.op, instr.pc, instr.deps, instr.latency) == \
            (OP_INT, 0x1000, (1, 5), 3)

    def test_memory_ops(self):
        out = roundtrip([
            Instruction(OP_LOAD, 0x1000, addr=0x2000_0000, deps=(2,)),
            Instruction(OP_STORE, 0x1004, addr=0x2000_0040)])
        assert out[0].addr == 0x2000_0000
        assert out[0].deps == (2,)
        assert out[1].op == OP_STORE

    def test_branches(self):
        out = roundtrip([
            Instruction(OP_BRANCH, 0x1000, taken=True, target=0x5000,
                        branch_kind=BR_CALL),
            Instruction(OP_BRANCH, 0x1010, taken=False, target=0x1014,
                        branch_kind=BR_COND)])
        assert out[0].taken and out[0].target == 0x5000
        assert out[0].branch_kind == BR_CALL
        assert not out[1].taken

    def test_workload_segment_roundtrips(self):
        gen = oltp_workload().generators(4)[0]
        original = list(itertools.islice(iter(gen), 5000))
        out = roundtrip(original)
        assert len(out) == 5000
        for a, b in zip(original, out):
            assert (a.op, a.pc, a.addr, tuple(a.deps)[:3], a.taken,
                    a.target if a.op == OP_BRANCH else 0) == \
                   (b.op, b.pc, b.addr, b.deps, b.taken,
                    b.target if b.op == OP_BRANCH else 0)

    @given(st.lists(st.tuples(
        st.sampled_from([OP_INT, OP_LOAD, OP_STORE]),
        st.integers(0, 1 << 40),
        st.lists(st.integers(1, 0xFFFF), max_size=3)), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_records(self, specs):
        instrs = [Instruction(op, 0x1000, addr=addr, deps=tuple(deps))
                  for op, addr, deps in specs]
        out = roundtrip(instrs)
        assert [(i.op, i.addr, i.deps) for i in out] == \
            [(i.op, i.addr, tuple(i.deps)) for i in instrs]


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            list(read_trace(io.BytesIO(b"NOTATRACE")))

    def test_truncated(self):
        buf = io.BytesIO()
        write_trace(iter([Instruction(OP_INT, 0x1000)]), buf)
        data = buf.getvalue()[:-5]
        with pytest.raises(ValueError, match="truncated"):
            list(read_trace(io.BytesIO(data)))

    def test_oversized_dep(self):
        with pytest.raises(TraceWriteError):
            roundtrip([Instruction(OP_INT, 0x1000, deps=(1 << 20,))])


class TestFileHelpers:
    def test_capture_and_replay(self, tmp_path):
        gen = oltp_workload().generators(4)[0]
        path = str(tmp_path / "oltp.trace")
        written = capture(gen, path, 2000)
        assert written == 2000
        replayed = list(replay(path))
        assert len(replayed) == 2000

    def test_replay_loop(self, tmp_path):
        path = str(tmp_path / "t.trace")
        capture(iter([Instruction(OP_INT, 0x1000 + 4 * i)
                      for i in range(10)]), path, 10)
        stream = replay(path, loop=True)
        first_20 = list(itertools.islice(stream, 20))
        assert len(first_20) == 20
        assert first_20[0].pc == first_20[10].pc

    def test_replayed_trace_drives_machine(self, tmp_path):
        """A captured trace file can replace the live generator."""
        gens = oltp_workload().generators(1)
        path = str(tmp_path / "p0.trace")
        capture(gens[0], path, 20_000)
        params = default_system(n_nodes=1, mesh_width=1)
        machine = Machine(params, [replay(path, loop=True)])
        machine.run(5000)
        assert machine.total_retired() >= 5000
