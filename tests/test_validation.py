"""Tests for the section-2.3-style validation checks."""

import pytest

from repro.core.validation import (
    check_determinism,
    check_lock_correctness,
    check_scaling,
    check_stall_accounting,
    run_all,
)


class TestValidationChecks:
    def test_determinism(self):
        result = check_determinism(instructions=6000)
        assert result.passed, result.detail

    def test_scaling(self):
        result = check_scaling(instructions=16_000)
        assert result.passed, result.detail

    def test_lock_correctness(self):
        result = check_lock_correctness(instructions=20_000)
        assert result.passed, result.detail

    def test_stall_accounting(self):
        result = check_stall_accounting(instructions=8000)
        assert result.passed, result.detail

    def test_result_formatting(self):
        result = check_determinism(instructions=3000)
        text = str(result)
        assert "determinism" in text
        assert "PASS" in text or "FAIL" in text
