"""Tests for the ASCII figure renderer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.render import (
    LEGEND,
    render_bar,
    render_distribution,
    render_figure,
)


def shares(cpu=0.2, read=0.5, write=0.1, sync=0.1, instr=0.1):
    return {"cpu": cpu, "read": read, "write": write, "sync": sync,
            "instr": instr}


class TestRenderBar:
    def test_length_matches_total(self):
        bar = render_bar(shares(), width=60)
        assert len(bar) == 60

    def test_segments_in_order(self):
        bar = render_bar(shares(), width=60)
        # C-block before R-block before I-block.
        assert bar.index("C") < bar.index("R") < bar.index("I")

    def test_empty_components(self):
        assert render_bar({}, width=40) == ""

    def test_scaled_bar_shorter(self):
        full = render_bar(shares(), width=60)
        half = render_bar({k: v / 2 for k, v in shares().items()},
                          width=60)
        assert len(half) < len(full)

    @given(st.dictionaries(
        st.sampled_from(["cpu", "read", "write", "sync", "instr"]),
        st.floats(min_value=0, max_value=1), max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_length_tracks_sum(self, components):
        bar = render_bar(components, width=50)
        expected = round(sum(components.values()) * 50)
        assert abs(len(bar) - expected) <= len(components)


class TestRenderFigure:
    def test_contains_labels_and_legend(self):
        text = render_figure([("alpha", 1.0, shares()),
                              ("beta", 0.5, shares())])
        assert "alpha" in text and "beta" in text
        assert LEGEND in text

    def test_normalized_scales_bars(self):
        text = render_figure([("a", 1.0, shares()),
                              ("b", 0.5, shares())], width=60)
        line_a, line_b = text.splitlines()[:2]
        assert line_a.count("R") > line_b.count("R")


class TestRenderDistribution:
    def test_histogram_rows(self):
        text = render_distribution({1: 1.0, 2: 0.5, 3: 0.0},
                                   title="L1D")
        assert "L1D" in text
        lines = text.splitlines()
        assert ">=1" in lines[1] and ">=3" in lines[3]
        assert lines[1].count("#") > lines[2].count("#")
