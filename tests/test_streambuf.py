"""Tests for the instruction stream buffer (paper section 4.1)."""

from repro.mem.streambuf import InstructionStreamBuffer


class FakeFetcher:
    """Records prefetches; each completes 20 cycles after issue."""

    def __init__(self, latency=20):
        self.latency = latency
        self.fetched = []

    def __call__(self, line, now):
        self.fetched.append((line, now))
        return now + self.latency


class TestStreamBuffer:
    def test_disabled_buffer_never_hits(self):
        sb = InstructionStreamBuffer(0, FakeFetcher())
        assert not sb.enabled
        assert sb.probe(10, 0) is None
        assert sb.misses == 0  # disabled: not even counted

    def test_miss_starts_stream(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(4, fetcher)
        assert sb.probe(100, 0) is None
        # Launches up to max_issue_per_probe prefetches immediately;
        # deeper entries fill on later probes.
        assert [line for line, _ in fetcher.fetched] == [101, 102]
        sb.probe(101, 50)
        assert [line for line, _ in fetcher.fetched][-2:] == [103, 104]

    def test_sequential_miss_hits_buffer(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(4, fetcher)
        sb.probe(100, 0)
        ready = sb.probe(101, 50)
        assert ready is not None
        assert ready >= 50
        assert sb.hits == 1

    def test_hit_waits_for_inflight_prefetch(self):
        fetcher = FakeFetcher(latency=20)
        sb = InstructionStreamBuffer(2, fetcher)
        sb.probe(100, 0)              # prefetches 101 (ready ~21), 102
        ready = sb.probe(101, 5)      # probe before the prefetch lands
        assert ready > 20             # waits for arrival + transfer

    def test_hit_consumes_entries_and_tops_up(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(2, fetcher)
        sb.probe(100, 0)              # buffer: 101, 102
        sb.probe(101, 100)            # consume 101; top up with 103
        lines = [line for line, _ in fetcher.fetched]
        assert lines == [101, 102, 103]

    def test_skip_ahead_within_buffer(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(4, fetcher)
        sb.probe(100, 0)              # buffer: 101, 102 (paced fill)
        sb.probe(101, 50)             # consume 101; buffer: 102, 103, 104
        ready = sb.probe(103, 100)    # hits deeper entry; drops 102
        assert ready is not None
        # 104 still buffered; top-up continues past it.
        assert fetcher.fetched[-1][0] >= 105

    def test_non_sequential_miss_flushes(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(4, fetcher)
        sb.probe(100, 0)
        assert sb.probe(500, 100) is None
        assert sb.flushes == 1
        # New stream starts at 501.
        assert fetcher.fetched[-2][0] == 501

    def test_invalidate_removes_entry(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(4, fetcher)
        sb.probe(100, 0)
        sb.invalidate(101)
        assert sb.probe(101, 100) is None  # no longer buffered

    def test_hit_rate(self):
        fetcher = FakeFetcher()
        sb = InstructionStreamBuffer(4, fetcher)
        sb.probe(100, 0)
        sb.probe(101, 100)
        sb.probe(102, 200)
        assert sb.hit_rate == 2 / 3

    def test_prefetch_count_grows_with_buffer_size(self):
        f2, f8 = FakeFetcher(), FakeFetcher()
        sb2 = InstructionStreamBuffer(2, f2)
        sb8 = InstructionStreamBuffer(8, f8)
        for t, line in ((0, 100), (50, 101), (100, 102), (150, 103)):
            sb2.probe(line, t)
            sb8.probe(line, t)
        assert len(f8.fetched) > len(f2.fetched)
