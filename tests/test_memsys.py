"""Tests for the per-node memory hierarchy composition."""

import pytest

from repro.mem.coherence import CoherentMemory
from repro.mem.interconnect import MeshNetwork
from repro.mem.memsys import (
    CAT_DIRTY,
    CAT_L1_HIT,
    CAT_L2_HIT,
    CAT_LOCAL,
    CAT_REMOTE,
    NodeMemorySystem,
)
from repro.mem.tlb import PageTable
from repro.params import default_system
from repro.stats.mshr import MshrOccupancy


def make_node(params=None, node_id=0, n_nodes=4):
    params = params or default_system()
    page_table = PageTable(params.page_size, n_nodes)
    mesh = MeshNetwork(n_nodes, 2 if n_nodes > 1 else 1)
    memory = CoherentMemory(params.latencies, mesh,
                            params.page_size // 64)
    nodes = [NodeMemorySystem(i, params, page_table, memory)
             for i in range(n_nodes)]
    return nodes[node_id], nodes, memory


VADDR = 0x1000_0000


class TestDataPath:
    def test_cold_miss_then_hit(self):
        node, _, _ = make_node()
        first = node.access_data(0, VADDR, is_write=False)
        assert not first.stalled
        assert first.category in (CAT_LOCAL, CAT_REMOTE)
        assert first.done_at >= 100
        again = node.access_data(first.done_at + 1, VADDR, is_write=False)
        assert again.category == CAT_L1_HIT
        assert again.done_at == first.done_at + 2  # 1-cycle hit

    def test_l2_hit_after_l1_eviction(self):
        params = default_system()
        node, _, _ = make_node(params)
        lines = params.l1d.num_lines
        t = 0
        node.access_data(t, VADDR, False)
        # Touch enough distinct lines to evict VADDR's line from L1.
        for i in range(1, 4 * lines):
            t += 1000
            node.access_data(t, VADDR + i * 64, False)
        result = node.access_data(t + 1000, VADDR, False)
        assert result.category == CAT_L2_HIT

    def test_mshr_coalescing_same_line(self):
        node, _, _ = make_node()
        first = node.access_data(0, VADDR, False)
        second = node.access_data(1, VADDR + 8, False)
        assert not second.stalled
        # Coalesced: completes with (not after) the outstanding miss.
        assert second.done_at <= first.done_at + 2

    def test_write_after_read_miss_upgrades(self):
        node, nodes, _ = make_node()
        # Make the line genuinely shared so the read does not get E.
        nodes[1].access_data(0, VADDR, False)
        nodes[1]._writable.discard(
            nodes[1].page_table.translate_line(VADDR))
        read = node.access_data(1000, VADDR, False)
        write = node.access_data(read.done_at + 1, VADDR, True)
        assert not write.stalled
        line = node.page_table.translate_line(VADDR)
        assert line in node._writable

    def test_exclusive_grant_enables_silent_write(self):
        node, _, mem = make_node()
        read = node.access_data(0, VADDR, False)
        write = node.access_data(read.done_at + 1, VADDR, True)
        assert write.category == CAT_L1_HIT  # silent E->M upgrade

    def test_port_saturation_stalls(self):
        params = default_system()
        node, _, _ = make_node(params)
        ports = params.l1d.request_ports
        t = 10_000
        for _ in range(ports):
            assert not node.access_data(t, VADDR, False).stalled
        third = node.access_data(t, VADDR + 4096, False)
        assert third.stalled
        assert third.retry_at == t + 1

    def test_mshr_full_stalls_with_wake_time(self):
        import dataclasses
        params = default_system()
        params = params.replace(
            l1d=dataclasses.replace(params.l1d, mshrs=1))
        node, _, _ = make_node(params)
        first = node.access_data(0, VADDR, False)
        blocked = node.access_data(1, VADDR + 128 * 8192, False)
        assert blocked.stalled
        assert blocked.retry_at == first.done_at

    def test_dirty_transfer_between_nodes(self):
        node0, nodes, _ = make_node()
        node1 = nodes[1]
        w = node0.access_data(0, VADDR, True)
        r = node1.access_data(w.done_at + 10, VADDR, False)
        assert r.category == CAT_DIRTY

    def test_invalidation_removes_from_all_levels(self):
        node0, nodes, _ = make_node()
        node1 = nodes[1]
        w = node0.access_data(0, VADDR, True)
        line = node0.page_table.translate_line(VADDR)
        node1.access_data(w.done_at + 10, VADDR, True)  # invalidates node0
        assert not node0.l1d.lookup(line, touch=False)
        assert not node0.l2.lookup(line, touch=False)
        assert line not in node0._writable

    def test_violation_hook_fires_on_invalidation(self):
        node0, nodes, _ = make_node()
        seen = []
        node0.violation_hook = seen.append
        w = node0.access_data(0, VADDR, True)
        nodes[1].access_data(w.done_at + 10, VADDR, True)
        assert node0.page_table.translate_line(VADDR) in seen

    def test_perfect_dcache(self):
        node, _, _ = make_node(default_system(perfect_dcache=True))
        r = node.access_data(0, VADDR, False)     # cold TLB still misses
        assert r.category == CAT_L1_HIT
        r2 = node.access_data(100, VADDR, False)  # warm TLB: pure L1 hit
        assert r2.category == CAT_L1_HIT
        assert r2.done_at == 101


class TestInstructionPath:
    def test_cold_then_warm_fetch(self):
        node, _, _ = make_node()
        pc = 0x0100_0000
        ready, cat = node.access_instr(0, pc)
        assert ready > 0
        ready2, cat2 = node.access_instr(ready + 1, pc)
        assert cat2 == CAT_L1_HIT
        assert ready2 <= ready + 1

    def test_perfect_icache_never_stalls(self):
        node, _, _ = make_node(default_system(perfect_icache=True))
        for i in range(50):
            ready, cat = node.access_instr(i, 0x0100_0000 + i * 4096)
            assert ready == i
            assert cat == CAT_L1_HIT

    def test_stream_buffer_catches_sequential_lines(self):
        node, _, _ = make_node(default_system(stream_buffer_entries=4))
        pc = 0x0100_0000
        ready, _ = node.access_instr(0, pc)
        # Allow prefetches to land, then fetch the next line.
        ready2, _ = node.access_instr(ready + 500, pc + 64)
        assert node.stream_buffer.hits == 1
        # Much faster than a cold memory fetch.
        assert ready2 - (ready + 500) < 60

    def test_miss_counting_per_reference(self):
        node, _, _ = make_node()
        node.access_instr(0, 0x0100_0000)
        # Accesses are counted by the core per reference; memsys counts
        # only misses.
        assert node.l1i_misses == 1
        assert node.l1i_accesses == 0


class TestHints:
    def test_prefetch_installs_writable_line(self):
        node, _, _ = make_node()
        node.prefetch_data(0, VADDR, exclusive=True)
        line = node.page_table.translate_line(VADDR)
        assert line in node._writable
        r = node.access_data(1000, VADDR, True)
        assert r.category == CAT_L1_HIT

    def test_flush_keeps_clean_copy(self):
        node, nodes, mem = make_node()
        w = node.access_data(0, VADDR, True)
        node.flush_line(w.done_at + 1, VADDR)
        line = node.page_table.translate_line(VADDR)
        assert node.l2.lookup(line, touch=False)
        assert not node.l2.is_dirty(line)
        assert line not in node._writable
        # Another node's read is now serviced by memory.
        r = nodes[1].access_data(w.done_at + 100, VADDR, False)
        assert r.category in (CAT_LOCAL, CAT_REMOTE)

    def test_flush_of_clean_line_is_noop(self):
        node, _, mem = make_node()
        r = node.access_data(0, VADDR, False)
        node._writable.discard(node.page_table.translate_line(VADDR))
        node.flush_line(r.done_at + 1, VADDR)
        assert mem.stats.flushes == 0


class TestStats:
    def test_miss_rates(self):
        node, _, _ = make_node()
        node.access_data(0, VADDR, False)
        t = node.access_data(0, VADDR, False).done_at
        node.access_data(t + 10, VADDR, False)
        assert 0 < node.l1d_miss_rate < 1

    def test_mshr_stats_fed(self):
        params = default_system()
        page_table = PageTable(params.page_size, 4)
        mesh = MeshNetwork(4, 2)
        memory = CoherentMemory(params.latencies, mesh, 128)
        stats = MshrOccupancy()
        node = NodeMemorySystem(0, params, page_table, memory,
                                l1d_mshr_stats=stats)
        node.access_data(0, VADDR, False)
        assert stats.distribution()[1] == 1.0
