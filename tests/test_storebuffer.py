"""Tests for the post-retirement store buffer drain policies."""

from repro.cpu.storebuffer import StoreBuffer
from repro.mem.memsys import MemResult


class FakeMemsys:
    """Deterministic memory: each store completes after ``latency``; can
    be switched to stall to exercise retry behaviour."""

    def __init__(self, latency=100):
        self.latency = latency
        self.accesses = []
        self.prefetches = []
        self.stall_until = None

    def access_data(self, now, addr, is_write, pc=0):
        if self.stall_until is not None and now < self.stall_until:
            return MemResult(stalled=True, retry_at=self.stall_until)
        self.accesses.append((now, addr))
        return MemResult(done_at=now + self.latency)

    def prefetch_data(self, now, addr, exclusive=True, pc=0):
        self.prefetches.append(addr)


class TestCapacity:
    def test_push_until_full(self):
        sb = StoreBuffer(2, FakeMemsys(), overlap=1)
        assert sb.push_store(0x100, 0)
        assert sb.push_store(0x200, 0)
        assert not sb.push_store(0x300, 0)
        assert sb.full

    def test_barriers_do_not_consume_capacity(self):
        sb = StoreBuffer(2, FakeMemsys(), overlap=1)
        sb.push_store(0x100, 0)
        sb.push_barrier()
        assert len(sb) == 1
        assert sb.push_store(0x200, 0)

    def test_drain_frees_capacity(self):
        mem = FakeMemsys(latency=10)
        sb = StoreBuffer(1, mem, overlap=1)
        sb.push_store(0x100, 0)
        sb.drain(0)
        sb.drain(10)   # store completed
        assert sb.empty


class TestRcOverlap:
    def test_multiple_outstanding(self):
        mem = FakeMemsys(latency=100)
        sb = StoreBuffer(16, mem, overlap=4)
        for i in range(6):
            sb.push_store(0x100 * (i + 1), 0)
        sb.drain(0)
        assert len(mem.accesses) == 4  # overlap limit

    def test_barrier_blocks_later_stores(self):
        mem = FakeMemsys(latency=100)
        sb = StoreBuffer(16, mem, overlap=4)
        sb.push_store(0x100, 0)
        sb.push_barrier()
        sb.push_store(0x200, 0)
        sb.drain(0)
        assert len(mem.accesses) == 1     # 0x200 held by the barrier
        sb.drain(100)                     # 0x100 completed
        assert len(mem.accesses) == 2

    def test_adjacent_barriers_coalesce(self):
        sb = StoreBuffer(16, FakeMemsys(), overlap=4)
        sb.push_store(0x100, 0)
        sb.push_barrier()
        sb.push_barrier()
        assert sb.barriers_pushed == 1

    def test_barrier_on_empty_buffer_is_noop(self):
        sb = StoreBuffer(16, FakeMemsys(), overlap=4)
        sb.push_barrier()
        assert sb.empty


class TestPcSerialization:
    def test_one_at_a_time_in_order(self):
        mem = FakeMemsys(latency=100)
        sb = StoreBuffer(16, mem, overlap=1)
        sb.push_store(0x100, 0)
        sb.push_store(0x200, 0)
        sb.drain(0)
        assert [a for _, a in mem.accesses] == [0x100]
        sb.drain(50)
        assert len(mem.accesses) == 1     # still outstanding
        sb.drain(100)
        assert [a for _, a in mem.accesses] == [0x100, 0x200]

    def test_prefetch_for_waiting_stores(self):
        mem = FakeMemsys(latency=100)
        sb = StoreBuffer(16, mem, overlap=1, wants_prefetch=True)
        sb.push_store(0x100, 0)
        sb.push_store(0x200, 0)
        sb.drain(0)
        assert 0x200 in mem.prefetches

    def test_prefetch_issued_once(self):
        mem = FakeMemsys(latency=100)
        sb = StoreBuffer(16, mem, overlap=1, wants_prefetch=True)
        sb.push_store(0x100, 0)
        sb.push_store(0x200, 0)
        sb.drain(0)
        sb.drain(1)
        assert mem.prefetches.count(0x200) == 1


class TestRetry:
    def test_structural_stall_retries(self):
        mem = FakeMemsys(latency=10)
        mem.stall_until = 50
        sb = StoreBuffer(16, mem, overlap=1)
        sb.push_store(0x100, 0)
        next_event = sb.drain(0)
        assert next_event == 50
        assert not mem.accesses
        sb.drain(50)
        assert mem.accesses

    def test_next_event_reflects_completion(self):
        mem = FakeMemsys(latency=100)
        sb = StoreBuffer(16, mem, overlap=1)
        sb.push_store(0x100, 0)
        assert sb.drain(0) == 100

    def test_empty_returns_none(self):
        sb = StoreBuffer(16, FakeMemsys(), overlap=1)
        assert sb.drain(0) is None

    def test_reset(self):
        sb = StoreBuffer(16, FakeMemsys(), overlap=1)
        sb.push_store(0x100, 0)
        sb.reset()
        assert sb.empty
