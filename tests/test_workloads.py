"""Tests for the OLTP and DSS trace generators: instruction mix, locality
structure, sharing structure, determinism."""

import itertools
from collections import Counter

import pytest

from repro.core.workloads import dss_workload, oltp_workload
from repro.trace.database import (
    BLOCK_BUFFER_BASE,
    CODE_BASE,
    LOCK_BASE,
    PRIVATE_BASE,
    DatabaseLayout,
    MigratoryHints,
)
from repro.trace.instr import (
    MEMORY_OPS,
    OP_BRANCH,
    OP_FLUSH,
    OP_FP,
    OP_INT,
    OP_LOAD,
    OP_LOCK_ACQ,
    OP_LOCK_REL,
    OP_PREFETCH,
    OP_STORE,
    OP_SYSCALL,
    Instruction,
)
from repro.trace.oltp import OltpTraceGenerator
from repro.trace.dss import DssTraceGenerator


def take(gen, n):
    return list(itertools.islice(iter(gen), n))


def mix(instrs):
    counts = Counter(i.op for i in instrs)
    total = len(instrs)
    return {op: c / total for op, c in counts.items()}


class TestOltpGenerator:
    def setup_method(self):
        self.layout = DatabaseLayout().scaled(16)
        self.gen = OltpTraceGenerator(0, self.layout, seed=1)
        self.instrs = take(self.gen, 30_000)

    def test_instruction_mix(self):
        m = mix(self.instrs)
        assert 0.10 < m[OP_LOAD] < 0.35
        assert 0.04 < m[OP_STORE] < 0.25
        assert 0.10 < m[OP_BRANCH] < 0.30
        assert m[OP_INT] > 0.25

    def test_transactions_commit(self):
        syscalls = sum(1 for i in self.instrs if i.op == OP_SYSCALL)
        assert syscalls == self.gen.transactions_emitted or \
            abs(syscalls - self.gen.transactions_emitted) <= 1
        assert syscalls > 5

    def test_locks_balanced(self):
        acq = sum(1 for i in self.instrs if i.op == OP_LOCK_ACQ)
        rel = sum(1 for i in self.instrs if i.op == OP_LOCK_REL)
        assert abs(acq - rel) <= 1
        assert acq > 10

    def test_lock_addresses_in_lock_region(self):
        for i in self.instrs:
            if i.op in (OP_LOCK_ACQ, OP_LOCK_REL):
                assert LOCK_BASE <= i.addr < LOCK_BASE + 0x0400_0000

    def test_pcs_in_code_region(self):
        for i in self.instrs[:5000]:
            assert CODE_BASE <= i.pc < CODE_BASE + self.layout.code_bytes

    def test_data_addresses_valid_regions(self):
        for i in self.instrs[:5000]:
            if i.op in (OP_LOAD, OP_STORE):
                assert i.addr >= BLOCK_BUFFER_BASE

    def test_deterministic_for_same_seed(self):
        g1 = OltpTraceGenerator(0, self.layout, seed=7)
        g2 = OltpTraceGenerator(0, self.layout, seed=7)
        for a, b in zip(take(g1, 2000), take(g2, 2000)):
            assert (a.op, a.pc, a.addr, a.deps) == (b.op, b.pc, b.addr,
                                                    b.deps)

    def test_different_pids_differ(self):
        g1 = OltpTraceGenerator(0, self.layout, seed=7)
        g2 = OltpTraceGenerator(1, self.layout, seed=7)
        s1 = [(i.op, i.addr) for i in take(g1, 2000)]
        s2 = [(i.op, i.addr) for i in take(g2, 2000)]
        assert s1 != s2

    def test_load_chains_present(self):
        """OLTP is characterized by frequent load-to-load dependences."""
        chained = 0
        loads = [i for i in self.instrs if i.op == OP_LOAD]
        for i in self.instrs:
            if i.op == OP_LOAD and i.deps:
                chained += 1
        assert chained / len(loads) > 0.2

    def test_code_footprint_streams(self):
        """Successive instruction lines form short ascending streams."""
        lines = [i.pc >> 6 for i in self.instrs[:20000]]
        deltas = [b - a for a, b in zip(lines, lines[1:]) if a != b]
        assert sum(1 for d in deltas if d == 1) / len(deltas) > 0.3

    def test_hints_insert_prefetch_and_flush(self):
        hints = MigratoryHints(prefetch=True, flush=True)
        gen = OltpTraceGenerator(0, self.layout, seed=1, hints=hints)
        instrs = take(gen, 30_000)
        assert any(i.op == OP_PREFETCH for i in instrs)
        assert any(i.op == OP_FLUSH for i in instrs)

    def test_hints_respect_pc_filter(self):
        hints = MigratoryHints(prefetch=True, flush=True, pc_filter=set())
        gen = OltpTraceGenerator(0, self.layout, seed=1, hints=hints)
        instrs = take(gen, 30_000)
        assert not any(i.op in (OP_PREFETCH, OP_FLUSH) for i in instrs)

    def test_no_hints_by_default(self):
        assert not any(i.op in (OP_PREFETCH, OP_FLUSH)
                       for i in self.instrs)

    def test_shared_migratory_structures_across_processes(self):
        """Different processes touch the same migratory lines."""
        def migratory_lines(pid):
            gen = OltpTraceGenerator(pid, self.layout, seed=3)
            span = self.layout.migratory_lines * 64
            return {i.addr >> 6 for i in take(gen, 40_000)
                    if i.op in (OP_LOAD, OP_STORE)
                    and 0x1000_0000 <= i.addr < 0x1000_0000 + span}
        shared = migratory_lines(0) & migratory_lines(1)
        assert len(shared) >= 4


class TestDssGenerator:
    def setup_method(self):
        self.layout = DatabaseLayout().scaled(16)
        self.gen = DssTraceGenerator(0, self.layout, seed=1,
                                     n_processes=16)
        self.instrs = take(self.gen, 30_000)

    def test_compute_intensive_mix(self):
        m = mix(self.instrs)
        alu_share = m.get(OP_INT, 0) + m.get(OP_FP, 0)
        assert alu_share > 0.35
        assert m.get(OP_FP, 0) > 0.03  # revenue arithmetic uses FP

    def test_scan_is_sequential_per_process(self):
        table_reads = [i.addr for i in self.instrs
                       if i.op == OP_LOAD
                       and BLOCK_BUFFER_BASE <= i.addr < PRIVATE_BASE
                       and i.addr < 0x1000_0000]
        assert table_reads
        increasing = sum(1 for a, b in zip(table_reads, table_reads[1:])
                         if b >= a)
        assert increasing / len(table_reads) > 0.9

    def test_partitions_disjoint(self):
        """Different processes scan different pages."""
        def pages(pid):
            gen = DssTraceGenerator(pid, self.layout, seed=1,
                                    n_processes=16)
            return {i.addr >> 13 for i in take(gen, 20_000)
                    if i.op == OP_LOAD
                    and BLOCK_BUFFER_BASE <= i.addr < 0x1000_0000}
        assert not (pages(0) & pages(1))

    def test_small_code_footprint(self):
        pcs = {i.pc >> 6 for i in self.instrs}
        assert len(pcs) * 64 <= 4 * self.gen.params.code_bytes

    def test_negligible_locking(self):
        locks = sum(1 for i in self.instrs if i.op == OP_LOCK_ACQ)
        assert locks / len(self.instrs) < 0.001

    def test_deterministic(self):
        g1 = DssTraceGenerator(2, self.layout, seed=5, n_processes=16)
        g2 = DssTraceGenerator(2, self.layout, seed=5, n_processes=16)
        for a, b in zip(take(g1, 2000), take(g2, 2000)):
            assert (a.op, a.pc, a.addr) == (b.op, b.pc, b.addr)


class TestWorkloadFactories:
    def test_oltp_process_count(self):
        wl = oltp_workload()
        gens = wl.generators(4)
        assert len(gens) == wl.processes_per_cpu * 4

    def test_dss_process_count(self):
        wl = dss_workload()
        assert len(wl.generators(4)) == 16

    def test_generators_share_layout(self):
        wl = oltp_workload()
        gens = wl.generators(2)
        assert gens[0].layout is gens[1].layout

    def test_scale_shrinks_footprints(self):
        big = oltp_workload(scale=1)
        small = oltp_workload(scale=16)
        assert small.layout.code_bytes < big.layout.code_bytes
        assert small.layout.block_buffer_bytes < \
            big.layout.block_buffer_bytes
