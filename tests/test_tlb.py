"""Tests for the page table (bin-hopping) and TLBs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.tlb import PageTable, Tlb
from repro.params import TlbParams


class TestPageTable:
    def test_frames_assigned_round_robin(self):
        pt = PageTable(page_size=8192, n_nodes=4)
        frames = [pt.frame_of(vpage) for vpage in (100, 7, 42, 9)]
        assert frames == [0, 1, 2, 3]

    def test_translation_is_stable(self):
        pt = PageTable()
        assert pt.frame_of(123) == pt.frame_of(123)

    def test_home_node_interleaves(self):
        pt = PageTable(n_nodes=4)
        homes = {pt.home_node(pt.frame_of(v)) for v in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_translate_line_preserves_page_offset(self):
        pt = PageTable(page_size=8192)
        vaddr = (5 << 13) | (3 << 6)  # page 5, line 3 within page
        line = pt.translate_line(vaddr)
        assert line % 128 == 3

    def test_same_line_same_translation(self):
        pt = PageTable()
        assert pt.translate_line(0x10008) == pt.translate_line(0x10010)

    def test_different_pages_different_frames(self):
        pt = PageTable()
        l1 = pt.translate_line(0 << 13)
        l2 = pt.translate_line(1 << 13)
        assert l1 // 128 != l2 // 128

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_distinct_pages_get_distinct_frames(self, vaddrs):
        pt = PageTable()
        frames = {}
        for vaddr in vaddrs:
            vpage = vaddr >> 13
            frame = pt.frame_of(vpage)
            if vpage in frames:
                assert frames[vpage] == frame
            frames[vpage] = frame
        assert len(set(frames.values())) == len(frames)


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb(TlbParams(entries=4))
        assert not tlb.access(1)
        assert tlb.access(1)
        assert tlb.misses == 1 and tlb.hits == 1

    def test_lru_replacement(self):
        tlb = Tlb(TlbParams(entries=2))
        tlb.access(1)
        tlb.access(2)
        tlb.access(1)          # 1 refreshed; 2 is LRU
        tlb.access(3)          # evicts 2
        assert tlb.access(1)
        assert not tlb.access(2)

    def test_capacity(self):
        tlb = Tlb(TlbParams(entries=128))
        for vpage in range(128):
            tlb.access(vpage)
        hits = sum(tlb.access(v) for v in range(128))
        assert hits == 128

    def test_perfect_mode(self):
        tlb = Tlb(TlbParams(entries=1, perfect=True))
        assert tlb.access(1)
        assert tlb.access(99999)
        assert tlb.misses == 0

    def test_miss_rate(self):
        tlb = Tlb(TlbParams(entries=8))
        tlb.access(1)
        tlb.access(1)
        assert tlb.miss_rate == 0.5
