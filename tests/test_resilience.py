"""Tests for the sweep resilience layer.

Covers deterministic fault injection (``REPRO_FAULTS``), per-job retry /
timeout / backoff isolation in both the serial and pool executors, the
persistent sweep manifest with ``--resume`` semantics, cache integrity
(checksums, quarantine, best-effort writes, orphan sweeping), failure
accounting in :class:`RunReport`, explicit figure gaps, and the
acceptance property that a fault-injected sweep reproduces the
fault-free results byte-for-byte.
"""

import json
import math
import os

import pytest

import repro.run
import repro.run.executor as executor
from repro.core import figures as F
from repro.core.sweep import seed_sweep
from repro.core.workloads import oltp_workload
from repro.params import default_system
from repro.run import (
    DEFAULT_POLICY,
    MANIFEST_NAME,
    FaultPlan,
    InjectedCrash,
    JobSpec,
    ResultCache,
    RetryPolicy,
    SweepManifest,
    WorkloadSpec,
    plan_from_env,
    run_many,
)

# Small enough that retries stay cheap, large enough to exercise the
# simulator for real.  One attempt takes ~0.1s serially on a slow box;
# every timeout in this file keeps a generous multiple of that.
TINY = dict(instructions=800, warmup=800)

#: Backoff knobs that keep retry-heavy tests fast without changing the
#: deterministic schedule's shape.
FAST_BACKOFF = dict(backoff_base=0.001, backoff_cap=0.01)


def tiny_spec(seed=0, kind="oltp", **params_changes):
    params = default_system(**params_changes)
    return JobSpec(params, WorkloadSpec(kind), seed=seed, **TINY)


def find_fault_seed(predicate, limit=200000):
    """Smallest fault-plan seed satisfying ``predicate`` -- fault rolls
    are pure hashes, so the search (and thus the test) is deterministic."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no suitable fault seed in search range")


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    """Isolate each test from process-wide runner state and fault env."""
    monkeypatch.setattr(repro.run, "_jobs", 1)
    monkeypatch.setattr(repro.run, "_cache", None)
    monkeypatch.setattr(repro.run, "_manifest", None)
    monkeypatch.setattr(repro.run, "_policy", DEFAULT_POLICY)
    monkeypatch.setattr(repro.run, "_resume", False)
    monkeypatch.setattr(repro.run, "_checkpoint_every",
                        repro.run.DEFAULT_CHECKPOINT_EVERY)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


# ---------------------------------------------------------------------------
# Fault plan parsing and deterministic rolls
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_full_plan(self):
        plan = FaultPlan.parse("crash:0.2,hang:0.1,corrupt:0.1,seed:7")
        assert plan.crash == 0.2 and plan.hang == 0.1
        assert plan.corrupt == 0.1 and plan.seed == 7
        assert plan.active

    def test_parse_hang_duration(self):
        assert FaultPlan.parse("hang:1,hang_s:0.25").hang_seconds == 0.25

    def test_parse_rejects_probability_outside_unit_interval(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:1.5")
        with pytest.raises(ValueError):
            FaultPlan.parse("hang:-0.1")

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.parse("explode:0.5")

    def test_parse_rejects_malformed_entry(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.parse("crash")

    def test_plan_from_env(self, monkeypatch):
        assert plan_from_env("") is None
        # All-zero probabilities: syntactically valid but inactive.
        assert plan_from_env("crash:0,hang:0,corrupt:0") is None
        monkeypatch.setenv("REPRO_FAULTS", "crash:1,seed:3")
        plan = plan_from_env()
        assert plan is not None
        assert plan.crash == 1.0 and plan.seed == 3

    def test_rolls_deterministic_and_attempt_independent(self):
        plan = FaultPlan(crash=0.5, seed=7)
        fingerprint = "a" * 64
        rolls = [plan.roll("crash", fingerprint, a) for a in range(32)]
        again = [plan.roll("crash", fingerprint, a) for a in range(32)]
        assert rolls == again
        # Retried attempts roll independently: with p=0.5 over 32
        # attempts both outcomes must appear (else retries could never
        # rescue a crashing job).
        assert any(rolls) and not all(rolls)

    def test_maybe_crash(self):
        with pytest.raises(InjectedCrash):
            FaultPlan(crash=1.0).maybe_crash("f" * 64)
        FaultPlan(crash=0.0).maybe_crash("f" * 64)  # no-op

    def test_injected_crash_is_not_a_common_exception_type(self):
        # Guards the "arbitrary exception" isolation claim: if this ever
        # becomes an OSError/RuntimeError subclass, the executor tests
        # would only prove a lucky catch tuple.
        assert not issubclass(InjectedCrash, (OSError, RuntimeError))

    def test_corrupt_text_deterministic_and_always_detectable(self):
        plan = FaultPlan(corrupt=1.0, seed=1)
        text = json.dumps({"payload": list(range(64))})
        for char in "abcd":
            fingerprint = char * 64
            mangled = plan.corrupt_text(text, fingerprint)
            assert mangled != text
            assert mangled == plan.corrupt_text(text, fingerprint)
        assert FaultPlan(corrupt=0.0).corrupt_text(text, "a" * 64) == text


class TestRetryPolicy:
    def test_backoff_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.4)
        fingerprint = "e" * 64
        delays = [policy.backoff_delay(fingerprint, a) for a in range(1, 10)]
        assert delays == [policy.backoff_delay(fingerprint, a)
                          for a in range(1, 10)]
        assert policy.backoff_delay(fingerprint, 0) == 0.0
        assert all(0.0 < delay <= 0.4 for delay in delays)
        # Late attempts sit at the cap (modulo the 0.5-1.0 jitter band).
        assert delays[-1] >= 0.2

    def test_deadline(self):
        assert RetryPolicy(job_timeout=None).deadline_for(5.0) == math.inf
        assert RetryPolicy(job_timeout=2.0).deadline_for(5.0) == 7.0


# ---------------------------------------------------------------------------
# Serial executor: retries, exhaustion, post-hoc timeouts
# ---------------------------------------------------------------------------

class TestSerialRetries:
    def test_crash_then_success_matches_fault_free_baseline(
            self, monkeypatch):
        spec = tiny_spec()
        baseline = spec.run()
        fingerprint = spec.fingerprint()
        fault_seed = find_fault_seed(
            lambda s: FaultPlan(crash=0.5, seed=s).roll(
                "crash", fingerprint, 0)
            and not FaultPlan(crash=0.5, seed=s).roll(
                "crash", fingerprint, 1))
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.5,seed:{fault_seed}")
        policy = RetryPolicy(retries=2, **FAST_BACKOFF)
        report = run_many([spec], jobs=1, cache=None, policy=policy)
        outcome = report.outcomes[0]
        assert not outcome.failed and outcome.attempts == 2
        assert report.retried == 1 and not report.failures
        assert outcome.result.dump() == baseline.dump()

    def test_exhausted_retries_fail_without_aborting_the_sweep(
            self, monkeypatch):
        specs = [tiny_spec(seed=s) for s in range(3)]
        monkeypatch.setenv("REPRO_FAULTS", "crash:1,seed:0")
        policy = RetryPolicy(retries=1, **FAST_BACKOFF)
        report = run_many(specs, jobs=1, cache=None, policy=policy)
        assert len(report.outcomes) == 3
        assert len(report.failures) == 3
        assert all(o.failed and o.attempts == 2 for o in report.outcomes)
        assert all("InjectedCrash" in o.error for o in report.outcomes)
        assert report.results == [None, None, None]
        assert report.simulated_instructions == 0
        assert "3 FAILED" in report.format_summary()

    def test_serial_timeout_is_enforced_post_hoc(self, monkeypatch):
        # Every attempt hangs 0.8s against a 0.4s budget: the serial
        # path cannot interrupt the attempt, so it must discard the
        # over-budget result afterwards and eventually fail the job.
        spec = tiny_spec()
        monkeypatch.setenv("REPRO_FAULTS", "hang:1,hang_s:0.8,seed:0")
        policy = RetryPolicy(retries=1, job_timeout=0.4, **FAST_BACKOFF)
        report = run_many([spec], jobs=1, cache=None, policy=policy)
        outcome = report.outcomes[0]
        assert outcome.failed and outcome.attempts == 2
        assert "timeout" in outcome.error

    def test_timeout_then_success_matches_baseline(self, monkeypatch):
        spec = tiny_spec(seed=3)
        baseline = spec.run()
        fingerprint = spec.fingerprint()
        fault_seed = find_fault_seed(
            lambda s: FaultPlan(hang=0.5, seed=s).roll(
                "hang", fingerprint, 0)
            and not FaultPlan(hang=0.5, seed=s).roll(
                "hang", fingerprint, 1))
        monkeypatch.setenv("REPRO_FAULTS",
                           f"hang:0.5,hang_s:1.5,seed:{fault_seed}")
        # A clean attempt takes ~0.1s; 0.6s keeps a wide margin while
        # the injected 1.5s hang reliably overshoots it.
        policy = RetryPolicy(retries=2, job_timeout=0.6, **FAST_BACKOFF)
        report = run_many([spec], jobs=1, cache=None, policy=policy)
        outcome = report.outcomes[0]
        assert not outcome.failed and outcome.attempts == 2
        assert outcome.result.dump() == baseline.dump()


# ---------------------------------------------------------------------------
# Pool executor: isolation, timeout abandonment, serial fallback
# ---------------------------------------------------------------------------

class TestPoolResilience:
    def test_pool_crash_isolation_matches_baseline(self, monkeypatch):
        specs = [tiny_spec(seed=s) for s in range(4)]
        baseline = [spec.run().dump() for spec in specs]
        fingerprints = [spec.fingerprint() for spec in specs]

        def crashes_then_succeeds(seed):
            plan = FaultPlan(crash=0.5, seed=seed)
            first = [plan.roll("crash", fp, 0) for fp in fingerprints]
            second = [plan.roll("crash", fp, 1) for fp in fingerprints]
            return any(first) and \
                all(not (a and b) for a, b in zip(first, second))

        fault_seed = find_fault_seed(crashes_then_succeeds)
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.5,seed:{fault_seed}")
        policy = RetryPolicy(retries=2, **FAST_BACKOFF)
        report = run_many(specs, jobs=2, cache=None, policy=policy)
        assert not report.failures
        assert report.retried >= 1
        assert [r.dump() for r in report.results] == baseline

    def test_pool_timeout_abandons_and_retries(self, monkeypatch):
        specs = [tiny_spec(seed=s) for s in range(4)]
        baseline = [spec.run().dump() for spec in specs]
        fingerprints = [spec.fingerprint() for spec in specs]

        def one_hang_then_clean(seed):
            plan = FaultPlan(hang=0.3, seed=seed)
            first = [plan.roll("hang", fp, 0) for fp in fingerprints]
            second = [plan.roll("hang", fp, 1) for fp in fingerprints]
            return sum(first) == 1 and not any(second)

        fault_seed = find_fault_seed(one_hang_then_clean)
        monkeypatch.setenv("REPRO_FAULTS",
                           f"hang:0.3,hang_s:6,seed:{fault_seed}")
        # The 6s hang dwarfs the 2s budget; clean attempts (~0.3s even
        # under single-core pool contention) stay far inside it.
        policy = RetryPolicy(retries=3, job_timeout=2.0, **FAST_BACKOFF)
        report = run_many(specs, jobs=2, cache=None, policy=policy)
        assert not report.failures
        assert report.retried >= 1
        hung = [o for o in report.outcomes if o.attempts > 1]
        assert hung and all(not o.failed for o in hung)
        assert [r.dump() for r in report.results] == baseline

    def test_serial_fallback_reruns_only_missing_outcomes(
            self, monkeypatch):
        specs = [tiny_spec(seed=s) for s in range(3)]
        executed = []
        real_serial = executor._run_one_serial

        def half_done_pool(pending, jobs, cache, outcomes, policy,
                           manifest, arena_paths=None, **kw):
            # Complete the first pending job, then report the pool dead.
            index, spec = pending[0]
            outcomes[index] = executor._finish(
                spec, spec.run(), 0.0, 1, cache, manifest)
            return False

        def tracking_serial(spec, cache, policy, manifest,
                            workload=None, **kw):
            executed.append(spec.seed)
            return real_serial(spec, cache, policy, manifest,
                               workload=workload, **kw)

        monkeypatch.setattr(executor, "_run_pool", half_done_pool)
        monkeypatch.setattr(executor, "_run_one_serial", tracking_serial)
        report = run_many(specs, jobs=2, cache=None)
        assert report.fell_back_to_serial and report.jobs == 1
        # Seed 0 completed on the "pool" and must not re-run.
        assert executed == [1, 2]
        assert len(report.outcomes) == 3 and not report.failures

    def test_mixed_cached_failed_retried_accounting(self, tmp_path,
                                                    monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        cached_spec, retried_spec, doomed_spec = \
            tiny_spec(seed=0), tiny_spec(seed=1), tiny_spec(seed=2)
        cache.put(cached_spec, cached_spec.run())
        retried_fp = retried_spec.fingerprint()
        doomed_fp = doomed_spec.fingerprint()

        def mixed_fates(seed):
            plan = FaultPlan(crash=0.6, seed=seed)
            return (plan.roll("crash", retried_fp, 0)
                    and not plan.roll("crash", retried_fp, 1)
                    and all(plan.roll("crash", doomed_fp, a)
                            for a in range(3)))

        fault_seed = find_fault_seed(mixed_fates)
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.6,seed:{fault_seed}")
        policy = RetryPolicy(retries=2, **FAST_BACKOFF)
        report = run_many([cached_spec, retried_spec, doomed_spec],
                          jobs=1, cache=cache, policy=policy)
        assert report.cache_hits == 1 and report.cache_misses == 2
        assert report.retried == 2          # both needed >1 attempt
        assert len(report.failures) == 1
        assert report.failures[0].spec is doomed_spec
        assert report.outcomes[0].cached
        assert report.outcomes[0].attempts == 0
        assert report.outcomes[1].attempts == 2
        assert report.outcomes[2].attempts == 3
        assert report.results[2] is None
        # Only the retried job actually simulated anything.
        cost = retried_spec.instructions + retried_spec.warmup
        assert report.simulated_instructions == cost
        summary = report.format_summary()
        assert "1 cached" in summary
        assert "2 retried" in summary and "1 FAILED" in summary


# ---------------------------------------------------------------------------
# Cache integrity: checksums, quarantine, best-effort writes, orphans
# ---------------------------------------------------------------------------

class TestCacheIntegrity:
    def _seed_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec, spec.run())
        return cache, spec, next(cache.path.glob("*.json"))

    def test_checksum_round_trip(self, tmp_path):
        cache, spec, entry = self._seed_entry(tmp_path)
        data = json.loads(entry.read_text())
        assert data["format"] == 2 and data["checksum"]
        hit = cache.get(spec)
        assert hit is not None and hit.dump() == spec.run().dump()

    def test_bit_flip_quarantined(self, tmp_path):
        cache, spec, entry = self._seed_entry(tmp_path)
        text = entry.read_text()
        entry.write_text(text.replace('"checksum": "',
                                      '"checksum": "0', 1))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(spec) is None
        assert (cache.quarantine_path / entry.name).exists()
        assert cache.stats()["quarantine_entries"] == 1

    def test_truncation_quarantined(self, tmp_path):
        cache, spec, entry = self._seed_entry(tmp_path)
        text = entry.read_text()
        entry.write_text(text[:len(text) // 2])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(spec) is None
        assert cache.quarantined == 1

    def test_pre_integrity_format_quarantined(self, tmp_path):
        cache, spec, entry = self._seed_entry(tmp_path)
        data = json.loads(entry.read_text())
        del data["checksum"]
        data["format"] = 1
        entry.write_text(json.dumps(data))
        with pytest.warns(RuntimeWarning, match="missing checksum"):
            assert cache.get(spec) is None
        assert cache.quarantine_entries() == 1

    def test_put_is_best_effort_on_unwritable_directory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")          # a *file* where the dir should be
        cache = ResultCache(blocker / "cache")
        spec = tiny_spec()
        result = spec.run()
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            assert cache.put(spec, result) is False
        assert cache.write_errors == 1
        assert "1 write errors" in cache.format_stats()
        # The sweep that computed the result keeps going regardless.
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            report = run_many([spec], jobs=1, cache=cache)
        assert not report.failures
        assert report.results[0].dump() == result.dump()

    def test_orphan_tmp_files_swept_and_purged(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        stale = cache_dir / "killed-writer.tmp"
        stale.write_text("partial")
        os.utime(stale, (1, 1))         # ancient: well past the TTL
        fresh = cache_dir / "live-writer.tmp"
        fresh.write_text("partial")
        cache = ResultCache(cache_dir)
        cache.put(tiny_spec(), tiny_spec().run())  # triggers the sweep
        assert not stale.exists()       # stale orphan removed
        assert fresh.exists()           # in-flight writer left alone
        assert cache.purge() == 2       # entry + fresh tmp
        assert not any(cache_dir.glob("*.tmp"))

    def test_injected_corruption_quarantined_on_next_read(
            self, tmp_path, monkeypatch):
        spec = tiny_spec()
        fingerprint = spec.fingerprint()
        fault_seed = find_fault_seed(
            lambda s: FaultPlan(corrupt=0.5, seed=s).roll(
                "corrupt", fingerprint))
        monkeypatch.setenv("REPRO_FAULTS",
                           f"corrupt:0.5,seed:{fault_seed}")
        cache = ResultCache(tmp_path)
        first = run_many([spec], jobs=1, cache=cache)
        assert len(cache) == 1          # corrupt bytes landed, undetected
        with pytest.warns(RuntimeWarning, match="quarantined"):
            second = run_many([spec], jobs=1, cache=cache)
        assert second.cache_hits == 0   # detected, quarantined, re-run
        assert cache.quarantined == 1
        assert cache.quarantine_entries() == 1
        assert second.results[0].dump() == first.results[0].dump()


# ---------------------------------------------------------------------------
# Sweep manifest: persistence, recovery, resume
# ---------------------------------------------------------------------------

class TestSweepManifest:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        manifest = SweepManifest(path)
        manifest.begin(["f1", "f2", "f3"], ["a", "b", "c"])
        manifest.mark_running("f1")
        manifest.mark_done("f1")
        manifest.mark_running("f2")
        manifest.mark_retrying("f2", "InjectedCrash: boom")
        manifest.mark_running("f2")
        manifest.mark_failed("f2", "InjectedCrash: boom")
        reloaded = SweepManifest(path)
        assert len(reloaded) == 3 and reloaded.load_error is None
        assert reloaded.get("f1").complete
        assert reloaded.get("f2").status == "failed"
        assert reloaded.get("f2").attempts == 2
        assert "boom" in reloaded.get("f2").error
        assert reloaded.get("f3").status == "pending"
        assert reloaded.counts() == {"done": 1, "failed": 1, "pending": 1}
        assert reloaded.total_attempts() == 3
        assert "1/3 done" in reloaded.format_summary()
        assert "failed" in reloaded.format_status()

    def test_torn_manifest_recovers_without_wedging(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text('{"format": 1, "jobs": [{"fing')  # torn write
        manifest = SweepManifest(path)
        assert manifest.load_error is not None
        assert len(manifest) == 0
        manifest.begin(["f1"], ["a"])   # still fully usable
        assert SweepManifest(path).get("f1") is not None

    def test_resume_keeps_done_and_rearms_incomplete(self, tmp_path):
        manifest = SweepManifest(tmp_path / MANIFEST_NAME)
        manifest.begin(["f1", "f2"], ["a", "b"])
        manifest.mark_running("f1")
        manifest.mark_done("f1")
        manifest.mark_running("f2")
        manifest.mark_retrying("f2", "err")
        manifest.begin(["f1", "f2"], ["a", "b"], resume=True)
        assert manifest.get("f1").status == "done"
        assert manifest.get("f1").attempts == 1    # history preserved
        assert manifest.get("f2").status == "pending"
        assert manifest.get("f2").attempts == 1    # attempts accumulate
        # Without resume the same call resets everything.
        manifest.begin(["f1", "f2"], ["a", "b"], resume=False)
        assert manifest.get("f1").status == "pending"
        assert manifest.total_attempts() == 0

    def test_interrupted_sweep_resumes_only_the_remainder(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest(cache.path / MANIFEST_NAME)
        specs = [tiny_spec(seed=s) for s in range(6)]
        first = run_many(specs[:4], jobs=1, cache=cache,
                         manifest=manifest)
        assert not first.failures
        attempts_before = {spec.fingerprint():
                           manifest.get(spec.fingerprint()).attempts
                           for spec in specs[:4]}
        # A "new process" after the kill: reload the manifest from disk.
        reloaded = SweepManifest(cache.path / MANIFEST_NAME)
        assert len(reloaded) == 4
        second = run_many(specs, jobs=1, cache=cache, manifest=reloaded,
                          resume=True)
        assert not second.failures
        assert second.cache_hits == 4   # completed jobs did not re-run
        for spec in specs[:4]:
            record = reloaded.get(spec.fingerprint())
            assert record.status == "done" and record.cached
            assert record.attempts == \
                attempts_before[spec.fingerprint()]
        assert reloaded.counts() == {"done": 6}
        # A third resume run is a pure no-op: zero new attempts.
        total_attempts = reloaded.total_attempts()
        third = run_many(specs, jobs=1, cache=cache, manifest=reloaded,
                         resume=True)
        assert third.cache_hits == 6
        assert reloaded.total_attempts() == total_attempts


# ---------------------------------------------------------------------------
# Downstream consumers: figures render gaps, seed sweeps keep going
# ---------------------------------------------------------------------------

def _doctor_first_outcome(monkeypatch):
    """Make figure-level run_many calls report their first job failed."""
    real_run_many = F.run_many

    def doctored(specs, **kwargs):
        report = real_run_many(specs, jobs=1, cache=None)
        first = report.outcomes[0]
        report.outcomes[0] = executor.JobOutcome(
            first.spec, None, first.wall_time, attempts=3,
            error="InjectedCrash: injected crash")
        return report

    monkeypatch.setattr(F, "run_many", doctored)


class TestDownstreamGaps:
    def test_figure_renders_explicit_gap_for_failed_config(
            self, monkeypatch):
        _doctor_first_outcome(monkeypatch)
        out = F.figure5("oltp", **TINY)
        assert list(out.failed) == ["uniprocessor"]
        assert "InjectedCrash" in out.failed["uniprocessor"]
        assert [row.label for row in out.rows] == ["multiprocessor"]
        assert "FAILED" in out.format_table()

    def test_sweep_normalizes_to_first_surviving_config(
            self, monkeypatch):
        _doctor_first_outcome(monkeypatch)
        out = F.figure4(**TINY)
        assert len(out.failed) == 1
        assert out.rows and out.rows[0].normalized == 1.0
        assert out.rows[0].label not in out.failed

    def test_characterization_table_maps_failure_to_none(
            self, monkeypatch):
        _doctor_first_outcome(monkeypatch)
        table = F.characterization_table(**TINY)
        assert table["oltp"] is None
        assert table["dss"] is not None and "ipc" in table["dss"]

    def test_seed_sweep_reports_partial_failures(self, monkeypatch):
        params = default_system()
        specs = [JobSpec(params, WorkloadSpec("oltp"), seed=s, **TINY)
                 for s in (0, 1)]
        fp0, fp1 = (spec.fingerprint() for spec in specs)
        fault_seed = find_fault_seed(
            lambda s: FaultPlan(crash=0.5, seed=s).roll("crash", fp0, 0)
            and not FaultPlan(crash=0.5, seed=s).roll("crash", fp1, 0))
        monkeypatch.setenv("REPRO_FAULTS", f"crash:0.5,seed:{fault_seed}")
        monkeypatch.setattr(repro.run, "_policy",
                            RetryPolicy(retries=0, **FAST_BACKOFF))
        sweep = seed_sweep(params, oltp_workload, seeds=(0, 1),
                           label="partial", **TINY)
        assert sweep.failures == 1 and len(sweep.cycles) == 1
        assert "1 seed(s) FAILED" in str(sweep)

    def test_seed_sweep_raises_when_every_seed_fails(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:1,seed:0")
        monkeypatch.setattr(repro.run, "_policy",
                            RetryPolicy(retries=0, **FAST_BACKOFF))
        with pytest.raises(RuntimeError, match="every seed failed"):
            seed_sweep(default_system(), oltp_workload, seeds=(0, 1),
                       label="doomed", **TINY)


# ---------------------------------------------------------------------------
# Acceptance: fault-injected sweeps reproduce fault-free results
# ---------------------------------------------------------------------------

class TestAcceptance:
    def test_fault_free_run_with_resilience_layer_is_byte_identical(
            self, tmp_path):
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        plain = run_many(specs, jobs=1, cache=None,
                         policy=RetryPolicy(retries=0))
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest(cache.path / MANIFEST_NAME)
        layered = run_many(specs, jobs=1, cache=cache, manifest=manifest,
                           policy=RetryPolicy(retries=3, job_timeout=60))
        assert [r.dump() for r in layered.results] == \
            [r.dump() for r in plain.results]

    def test_twenty_job_sweep_under_faults_matches_fault_free(
            self, tmp_path, monkeypatch):
        specs = [tiny_spec(seed=s) for s in range(10)] + \
                [tiny_spec(seed=s, kind="dss") for s in range(10)]
        baseline = run_many(specs, jobs=1, cache=None)
        base_dumps = [r.dump() for r in baseline.results]
        fingerprints = [spec.fingerprint() for spec in specs]
        retries = 5

        def exercised_but_survivable(seed):
            plan = FaultPlan(crash=0.2, hang=0.1, corrupt=0.1, seed=seed)
            clean = all(
                any(not plan.roll("crash", fp, a)
                    and not plan.roll("hang", fp, a)
                    for a in range(retries + 1))
                for fp in fingerprints)
            return (clean
                    and any(plan.roll("crash", fp, 0)
                            for fp in fingerprints)
                    and any(plan.roll("hang", fp, 0)
                            for fp in fingerprints)
                    and any(plan.roll("corrupt", fp)
                            for fp in fingerprints))

        fault_seed = find_fault_seed(exercised_but_survivable)
        monkeypatch.setenv(
            "REPRO_FAULTS",
            f"crash:0.2,hang:0.1,corrupt:0.1,hang_s:6,seed:{fault_seed}")
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest(cache.path / MANIFEST_NAME)
        # Injected hangs (6s) trip the 2s deadline; clean attempts stay
        # far inside it even with two workers contending on one core.
        policy = RetryPolicy(retries=retries, job_timeout=2.0,
                             **FAST_BACKOFF)
        report = run_many(specs, jobs=2, cache=cache, manifest=manifest,
                          policy=policy)
        assert not report.failures
        assert report.retried >= 1      # crashes/hangs actually fired
        assert [r.dump() for r in report.results] == base_dumps
        assert manifest.counts() == {"done": len(specs)}

        # Second pass over the same cache: corrupt entries are detected,
        # quarantined, re-run -- and the results still match.
        with pytest.warns(RuntimeWarning, match="quarantined"):
            again = run_many(specs, jobs=1, cache=cache,
                             manifest=manifest, policy=policy,
                             resume=True)
        assert not again.failures
        assert cache.quarantined >= 1
        assert cache.stats()["quarantine_entries"] >= 1
        assert again.cache_hits >= 1    # uncorrupted entries served
        assert again.cache_hits < len(specs)
        assert [r.dump() for r in again.results] == base_dumps
