"""Tests for the system parameter model (Figure 1)."""

import dataclasses

import pytest

from repro.params import (
    DEFAULT_SCALE,
    BranchPredictorParams,
    CacheParams,
    ConsistencyImpl,
    ConsistencyModel,
    MemoryLatencies,
    ProcessorParams,
    SystemParams,
    TlbParams,
    default_system,
    paper_system,
)


class TestCacheParams:
    def test_figure1_l1_geometry(self):
        params = paper_system()
        assert params.l1d.size_bytes == 128 * 1024
        assert params.l1d.assoc == 2
        assert params.l1d.line_size == 64
        assert params.l1d.hit_time == 1
        assert params.l1d.request_ports == 2
        assert params.l1i.size_bytes == 128 * 1024
        assert params.l1i.request_ports == 1

    def test_figure1_l2_geometry(self):
        params = paper_system()
        assert params.l2.size_bytes == 8 * 1024 * 1024
        assert params.l2.assoc == 4
        assert params.l2.hit_time == 20

    def test_figure1_mshrs(self):
        params = paper_system()
        assert params.l1d.mshrs == 8
        assert params.l2.mshrs == 8

    def test_num_sets(self):
        cache = CacheParams("X", 8 * 1024, 2, line_size=64)
        assert cache.num_sets == 64
        assert cache.num_lines == 128

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheParams("X", 3 * 1024, 2, line_size=64)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheParams("X", 1000, 3, line_size=64)

    def test_scaled_divides_capacity_only(self):
        cache = CacheParams("X", 128 * 1024, 2)
        small = cache.scaled(16)
        assert small.size_bytes == 8 * 1024
        assert small.assoc == cache.assoc
        assert small.line_size == cache.line_size


class TestProcessorParams:
    def test_figure1_defaults(self):
        proc = ProcessorParams()
        assert proc.issue_width == 4
        assert proc.window_size == 64
        assert proc.int_alus == 2
        assert proc.fp_alus == 2
        assert proc.addr_gen_units == 2
        assert proc.max_spec_branches == 8
        assert proc.mem_queue_size == 32
        assert proc.out_of_order

    def test_rejects_zero_issue_width(self):
        with pytest.raises(ValueError):
            ProcessorParams(issue_width=0)

    def test_rejects_window_smaller_than_issue(self):
        with pytest.raises(ValueError):
            ProcessorParams(issue_width=8, window_size=4)


class TestBranchPredictorParams:
    def test_figure1_defaults(self):
        bp = BranchPredictorParams()
        assert bp.pa_table_entries == 4096
        assert bp.pa_history_bits == 12
        assert bp.global_history_bits == 12
        assert bp.btb_entries == 512
        assert bp.btb_assoc == 4
        assert bp.ras_entries == 32
        assert not bp.perfect


class TestMemoryLatencies:
    def test_figure1_ranges(self):
        lat = MemoryLatencies()
        assert lat.local_read == 100
        # Remote reads must span the paper's 160-180 cycle range over
        # 1-3 hops on a 2x2 mesh.
        assert lat.remote_read_base + lat.remote_read_per_hop >= 160
        assert lat.remote_read_base + 3 * lat.remote_read_per_hop <= 195
        # Cache-to-cache: 280-310 cycles.
        assert lat.cache_to_cache_base + lat.cache_to_cache_per_hop >= 280
        assert lat.cache_to_cache_base + 3 * lat.cache_to_cache_per_hop <= 315


class TestSystemParams:
    def test_paper_system_has_four_nodes(self):
        assert paper_system().n_nodes == 4

    def test_default_system_scales_caches(self):
        small = default_system()
        big = paper_system()
        assert small.l1d.size_bytes * DEFAULT_SCALE == big.l1d.size_bytes
        assert small.l2.size_bytes * DEFAULT_SCALE == big.l2.size_bytes
        assert small.l1d.assoc == big.l1d.assoc
        assert small.latencies == big.latencies

    def test_replace_overrides(self):
        params = default_system(n_nodes=1, mesh_width=1)
        assert params.n_nodes == 1

    def test_default_consistency_is_rc_straightforward(self):
        params = default_system()
        assert params.consistency is ConsistencyModel.RC
        assert params.consistency_impl is ConsistencyImpl.STRAIGHTFORWARD

    def test_rejects_bad_mesh(self):
        with pytest.raises(ValueError):
            SystemParams(n_nodes=3, mesh_width=2)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            SystemParams(n_nodes=0)

    def test_tlb_defaults(self):
        params = paper_system()
        assert params.itlb.entries == 128
        assert params.dtlb.entries == 128
        assert params.page_size == 8192

    def test_stream_buffer_disabled_by_default(self):
        assert default_system().stream_buffer_entries == 0

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            default_system().n_nodes = 2
