"""Tests for the SMT core (section 5 extension)."""

import dataclasses
import itertools

import pytest

from repro.params import default_system
from repro.system.machine import Machine
from repro.trace.instr import Instruction, OP_INT, OP_LOAD, OP_SYSCALL

CODE = 0x0100_0000
DATA = 0x2000_0000


def smt_params(contexts=4, **kw):
    base = default_system(n_nodes=1, mesh_width=1, **kw)
    return base.replace(processor=dataclasses.replace(
        base.processor, smt_contexts=contexts))


def alu_stream(stride=0):
    return itertools.cycle([Instruction(OP_INT, CODE + stride + 4 * i)
                            for i in range(64)])


def missing_stream(pid):
    """Dependent loads over an L2-resident, L1-overflowing loop: every
    load misses L1 and exposes the 20-cycle L2 latency serially."""
    base = DATA + pid * (1 << 24)
    program = []
    for i in range(512):  # 32KB loop vs the 8KB scaled L1D
        program.append(Instruction(OP_LOAD, CODE + (i % 64) * 8,
                                   addr=base + i * 64,
                                   deps=(2,) if i else ()))
        program.append(Instruction(OP_INT, CODE + (i % 64) * 8 + 4,
                                   deps=(1,)))
    return itertools.cycle(program)


class TestSmtCore:
    def test_all_contexts_host_processes(self):
        m = Machine(smt_params(4), [alu_stream(i * 512) for i in range(4)])
        m.run(2000)
        core = m.cores[0]
        assert core.free_slots() == 0
        assert all(ctx.process is not None for ctx in core.contexts)

    def test_aggregate_retirement(self):
        m = Machine(smt_params(2), [alu_stream(), alu_stream(512)])
        m.run(3000)
        core = m.cores[0]
        assert core.retired >= 3000
        assert all(ctx.retired > 0 for ctx in core.contexts)

    def test_shared_issue_width_bounds_throughput(self):
        m = Machine(smt_params(4), [alu_stream(i * 512) for i in range(4)])
        cycles = m.run(8000)
        assert 8000 / cycles <= 4.0 + 1e-9  # machine width still 4

    def test_smt_hides_memory_stalls(self):
        """Four stall-heavy threads on one SMT core beat the same four
        threads time-sliced on a single-context core."""
        single = Machine(default_system(n_nodes=1, mesh_width=1),
                         [missing_stream(i) for i in range(4)])
        smt = Machine(smt_params(4), [missing_stream(i) for i in range(4)])
        t_single = single.run(12_000)
        t_smt = smt.run(12_000)
        assert t_smt < t_single

    def test_syscall_blocks_only_one_context(self):
        blocking = itertools.cycle(
            [Instruction(OP_INT, CODE + 4 * i) for i in range(20)]
            + [Instruction(OP_SYSCALL, CODE + 200)])
        m = Machine(smt_params(2), [blocking, alu_stream(512)])
        # Long enough to span several 8000-cycle I/O waits.
        m.run(150_000)
        core = m.cores[0]
        # The pure-ALU thread keeps running while the other blocks, and
        # the blocking thread resumes after each wait.
        assert all(ctx.retired > 40 for ctx in core.contexts)
        assert m.processes[0].syscalls >= 2

    def test_more_processes_than_contexts(self):
        blocking = lambda: itertools.cycle(
            [Instruction(OP_INT, CODE + 4 * i) for i in range(40)]
            + [Instruction(OP_SYSCALL, CODE + 400)])
        m = Machine(smt_params(2), [blocking() for _ in range(5)])
        m.run(10_000)
        assert sum(p.syscalls for p in m.processes) > 5
        assert m.total_retired() >= 10_000

    def test_stats_merged(self):
        m = Machine(smt_params(2), [alu_stream(), alu_stream(512)])
        m.run(2000)
        bd = m.breakdown()
        assert bd.instructions >= 2000

    def test_reset_stats(self):
        m = Machine(smt_params(2), [alu_stream(), alu_stream(512)])
        m.run(1000)
        m.reset_stats()
        assert m.breakdown().total == 0
        m.run(500)
        assert m.breakdown().total > 0

    def test_window_partitioned(self):
        params = smt_params(4)
        m = Machine(params, [alu_stream(i * 512) for i in range(4)])
        core = m.cores[0]
        per_context = core.contexts[0].proc.window_size
        assert per_context == params.processor.window_size // 4
