"""Tests for the protocol-traffic profile."""

import pytest

from repro.mem.coherence import CoherenceStats
from repro.stats.traffic import TrafficReport, traffic_report


def make_stats(**kw):
    stats = CoherenceStats()
    for key, value in kw.items():
        setattr(stats, key, value)
    return stats


class TestTrafficReport:
    def test_rates_per_thousand(self):
        stats = make_stats(reads_local=10, reads_remote=20, reads_dirty=10,
                           writes_local=5, writes_remote=5, writes_dirty=0,
                           upgrades=4, invalidations_sent=8,
                           writebacks=2, flushes=1)
        report = traffic_report(stats, instructions=10_000,
                                network_messages=100)
        assert report.reads == pytest.approx(4.0)
        assert report.writes == pytest.approx(1.0)
        assert report.upgrades == pytest.approx(0.4)
        assert report.invalidations == pytest.approx(0.8)
        assert report.network_messages == pytest.approx(10.0)

    def test_communication_fraction(self):
        stats = make_stats(reads_local=30, reads_remote=30, reads_dirty=40)
        report = traffic_report(stats, instructions=1000)
        assert report.communication_fraction == pytest.approx(0.4)

    def test_empty_stats(self):
        report = traffic_report(CoherenceStats(), instructions=1000)
        assert report.reads == 0
        assert report.communication_fraction == 0.0

    def test_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            traffic_report(CoherenceStats(), instructions=0)

    def test_format_contains_all_keys(self):
        report = traffic_report(CoherenceStats(), instructions=1000)
        text = report.format()
        for key in report.as_dict():
            assert key in text

    def test_live_run_profile(self):
        from repro import default_system, oltp_workload, run_simulation
        result = run_simulation(default_system(), oltp_workload(),
                                instructions=8000, warmup=8000)
        report = traffic_report(result.coherence, result.instructions)
        # OLTP communicates: dirty transfers and invalidations occur.
        assert report.dirty_transfers > 0
        assert report.invalidations > 0
        assert 0 < report.communication_fraction < 1
