"""Tests for the whole-program contract passes (R010/R011/R012),
the E001 syntax-error diagnostic, report formats, baselines and the
static teeth test."""

import json
import textwrap

import pytest

from repro.check.lint import (
    RULES,
    RULE_INFO,
    default_lint_root,
    explain_rule,
    lint_paths,
    run_lint,
)
from repro.check.lint.selftest import STATIC_MUTATIONS, run_static_teeth_test


def _lint_sources(tmp_path, files):
    """Write {relpath: source} under tmp_path and lint the tree."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    violations, _ = lint_paths([str(tmp_path)])
    return violations


def _codes(violations):
    return sorted(v.code for v in violations)


class TestR010SnapshotCompleteness:
    def test_missed_tick_attribute_flagged(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self.count = now
                    self.lost = now + 1

                def snapshot(self):
                    return {"count": self.count}

                def restore(self, state):
                    self.count = state["count"]
            """})
        assert _codes(violations) == ["R010"]
        assert "self.lost" in violations[0].message

    def test_restore_recomputed_cache_is_covered(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self.count = now
                    self._cache = now * 2

                def snapshot(self):
                    return {"count": self.count}

                def restore(self, state):
                    self.count = state["count"]
                    self._cache = self.count * 2
            """})
        assert violations == []

    def test_cold_methods_do_not_count(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def __init__(self):
                    self.wiring = object()

                def reset_stats(self):
                    self.scratch = 0

                def tick(self, now):
                    self.count = now

                def snapshot(self):
                    return {"count": self.count}

                def restore(self, state):
                    self.count = state["count"]
            """})
        assert violations == []

    def test_closure_over_helper_calls(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self._helper(now)

                def _helper(self, now):
                    self.deep = now

                def snapshot(self):
                    return {}

                def restore(self, state):
                    pass
            """})
        assert _codes(violations) == ["R010"]
        assert "self.deep" in violations[0].message

    def test_restore_key_snapshot_never_writes(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self.count = now

                def snapshot(self):
                    return {"count": self.count}

                def restore(self, state):
                    self.count = state["count"]
                    self.other = state.get("other", 0)
            """})
        assert _codes(violations) == ["R010"]
        assert "'other'" in violations[0].message

    def test_snapshot_only_key_is_legal(self, tmp_path):
        # e.g. Process stores "pid" for external re-linking; restore
        # ignoring a snapshot key is not a violation.
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self.count = now

                def snapshot(self):
                    return {"count": self.count, "pid": 7}

                def restore(self, state):
                    self.count = state["count"]
            """})
        assert violations == []

    def test_declared_scratch_is_exempt(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class ProcessorCore:
                def tick(self, now):
                    self.count = now
                    self.tick_quiet = False

                def snapshot(self):
                    return {"count": self.count}

                def restore(self, state):
                    self.count = state["count"]
            """})
        assert violations == []

    def test_pragma_suppresses_at_write_site(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self.scratch = now  # repro-lint: disable=R010

                def snapshot(self):
                    return {}

                def restore(self, state):
                    pass
            """})
        assert violations == []

    def test_subscript_store_counts_as_mutation(self, tmp_path):
        violations = _lint_sources(tmp_path, {"widget.py": """
            class Widget:
                def tick(self, now):
                    self.table[now] = 1

                def snapshot(self):
                    return {}

                def restore(self, state):
                    pass
            """})
        assert _codes(violations) == ["R010"]
        assert "self.table" in violations[0].message


class TestR011EphemeralPurity:
    def test_ungated_read_flagged(self, tmp_path):
        violations = _lint_sources(tmp_path, {"cpu/core.py": """
            class Core:
                def tick(self, now):
                    if self.params.check:
                        self.count = now

                def snapshot(self):
                    return {"count": self.count}

                def restore(self, state):
                    self.count = state["count"]
            """})
        assert _codes(violations) == ["R011"]
        assert "'check'" in violations[0].message
        assert "Core.tick" in violations[0].message

    def test_gated_read_is_clean(self, tmp_path):
        violations = _lint_sources(tmp_path, {"system/machine.py": """
            class Machine:
                def run(self, until):
                    backend = self.params.backend
                    return backend
            """})
        assert violations == []

    def test_non_ephemeral_field_read_is_clean(self, tmp_path):
        violations = _lint_sources(tmp_path, {"cpu/core.py": """
            class Core:
                def tick(self, now):
                    width = self.params.n_nodes
                    return width
            """})
        assert violations == []

    def test_bare_params_name_read_flagged(self, tmp_path):
        violations = _lint_sources(tmp_path, {"run/helper.py": """
            def helper(params):
                return params.watchdog_cycles
            """})
        assert _codes(violations) == ["R011"]

    def test_pragma_escape(self, tmp_path):
        violations = _lint_sources(tmp_path, {"run/helper.py": """
            def helper(params):
                return params.backend  # repro-lint: disable=R011
            """})
        assert violations == []

    def test_params_py_must_declare_registry(self, tmp_path):
        violations = _lint_sources(tmp_path, {"params.py": """
            class SystemParams:
                check: bool = False
                watchdog_cycles: int = 0
                watchdog_node_cycles: int = 0
                backend: str = "reference"
            """})
        assert _codes(violations) == ["R011"]
        assert "EPHEMERAL_FIELDS" in violations[0].message

    def test_params_py_registry_must_match(self, tmp_path):
        violations = _lint_sources(tmp_path, {"params.py": """
            EPHEMERAL_FIELDS = frozenset({"check", "backend"})


            class SystemParams:
                check: bool = False
                watchdog_cycles: int = 0
                watchdog_node_cycles: int = 0
                backend: str = "reference"
            """})
        assert _codes(violations) == ["R011"]

    def test_real_params_module_is_consistent(self):
        import repro.params
        import repro.params_io
        from repro.check.lint.contracts import EPHEMERAL_REGISTRY

        assert repro.params.EPHEMERAL_FIELDS == EPHEMERAL_REGISTRY
        assert repro.params_io._EPHEMERAL == EPHEMERAL_REGISTRY


class TestR012BackendSurfaces:
    def test_fast_only_write_flagged(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class ProcessorCore:
                def tick(self, now):
                    self.count = now

                def tick_fast(self, now):
                    self.count = now
                    self.extra = 1

                def settle(self, now):
                    pass
            """})
        assert _codes(violations) == ["R012"]
        assert "'extra'" in violations[0].message

    def test_reference_only_write_flagged(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class ProcessorCore:
                def tick(self, now):
                    self.count = now
                    self.only_ref = 1

                def tick_fast(self, now):
                    self.count = now

                def settle(self, now):
                    pass
            """})
        assert _codes(violations) == ["R012"]
        assert "'only_ref'" in violations[0].message

    def test_settle_completes_the_fast_surface(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class ProcessorCore:
                def tick(self, now):
                    self.count = now
                    self.gap = 0

                def tick_fast(self, now):
                    self.count = now

                def settle(self, now):
                    self.gap = 0
            """})
        assert violations == []

    def test_alias_resolved_dotted_write(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class ProcessorCore:
                def tick(self, now):
                    self.storebuf.flag = True

                def tick_fast(self, now):
                    sb = self.storebuf
                    sb.flag = True

                def settle(self, now):
                    pass
            """})
        assert violations == []

    def test_allowed_certification_scratch(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class ProcessorCore:
                def tick(self, now):
                    self.count = now

                def tick_fast(self, now):
                    self.count = now
                    self.tick_quiet = True
                    self.storebuf.drain_activity = False

                def settle(self, now):
                    pass
            """})
        assert violations == []

    def test_other_class_names_not_audited(self, tmp_path):
        violations = _lint_sources(tmp_path, {"core.py": """
            class SomethingElse:
                def tick(self, now):
                    self.count = now

                def tick_fast(self, now):
                    pass
            """})
        assert violations == []


class TestSyntaxErrorDiagnostic:
    def test_e001_instead_of_traceback(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        violations, checked = lint_paths([str(tmp_path)])
        assert checked == 1
        assert _codes(violations) == ["E001"]
        assert violations[0].line == 1
        assert "syntax error" in violations[0].message

    def test_e001_is_not_suppressible(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("# repro-lint: disable-file=all\ndef broken(:\n")
        violations, _ = lint_paths([str(tmp_path)])
        assert _codes(violations) == ["E001"]

    def test_other_files_still_linted(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "worse.py").write_text("done = a / b\n")
        violations, checked = lint_paths([str(tmp_path)])
        assert checked == 2
        assert _codes(violations) == ["E001", "R004"]

    def test_run_lint_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        count = run_lint([str(bad)])
        out = capsys.readouterr().out
        assert count == 1
        assert "E001" in out and "bad.py:1:" in out


class TestReportFormats:
    def test_multiple_explicit_paths(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("done = x / y\n")
        b.write_text("import random\nv = random.random()\n")
        violations, checked = lint_paths([str(a), str(b)])
        assert checked == 2
        assert _codes(violations) == ["R001", "R004"]

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("done = a / b\n")
        count = run_lint([str(bad)], fmt="json")
        doc = json.loads(capsys.readouterr().out)
        assert count == 1
        assert doc["violation_count"] == 1
        assert doc["checked_files"] == 1
        assert doc["violations_by_code"] == {"R004": 1}
        assert doc["violations"][0]["code"] == "R004"
        assert doc["violations"][0]["line"] == 1

    def test_sarif_format_to_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("done = a / b\n")
        report = tmp_path / "report.sarif"
        count = run_lint([str(bad)], fmt="sarif", output=str(report))
        out = capsys.readouterr().out
        assert count == 1
        # stdout keeps the text diagnostics when writing to a file
        assert "R004" in out
        doc = json.loads(report.read_text())
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "R004"
        rule_ids = {r["id"] for r in
                    doc["runs"][0]["tool"]["driver"]["rules"]}
        assert rule_ids == set(RULES)

    def test_baseline_roundtrip(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("done = a / b\n")
        baseline = tmp_path / "baseline.json"
        assert run_lint([str(bad)],
                        write_baseline=str(baseline)) == 0
        capsys.readouterr()
        # grandfathered finding disappears...
        assert run_lint([str(bad)], baseline=str(baseline)) == 0
        capsys.readouterr()
        # ...but a new finding still fails
        bad.write_text("done = a / b\nimport random\n"
                       "v = random.random()\n")
        count = run_lint([str(bad)], baseline=str(baseline))
        out = capsys.readouterr().out
        assert count == 1
        assert "R001" in out and "R004" not in out

    def test_explain_known_rule(self):
        text = explain_rule("R010")
        assert text.startswith("R010")
        assert "snapshot" in text
        assert "whole-program" in text

    def test_explain_unknown_rule(self):
        assert "unknown rule" in explain_rule("R999")

    def test_rule_metadata_complete(self):
        assert set(RULE_INFO) == set(RULES)
        for rule in RULE_INFO.values():
            assert rule.scope in ("file", "program")
            assert rule.explanation


class TestStaticTeeth:
    def test_all_seeded_violations_detected(self):
        results = run_static_teeth_test()
        assert len(results) == len(STATIC_MUTATIONS)
        missed = [r for r in results if not r.detected]
        assert missed == [], [str(r) for r in missed]

    def test_result_format(self):
        results = run_static_teeth_test(["fast-only-write"])
        assert len(results) == 1
        assert str(results[0]).startswith("[DETECTED] fast-only-write")
        assert "R012" in results[0].detail

    def test_real_tree_is_clean(self):
        violations, checked = lint_paths([default_lint_root()])
        assert violations == []
        assert checked > 40
