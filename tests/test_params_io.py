"""Tests for configuration serialization."""

import io

import pytest

from repro.params import (
    ConsistencyImpl,
    ConsistencyModel,
    default_system,
    paper_system,
)
from repro.params_io import (
    load_params,
    params_from_dict,
    params_to_dict,
    save_params,
)


class TestRoundTrip:
    def test_default_system(self):
        params = default_system()
        assert params_from_dict(params_to_dict(params)) == params

    def test_paper_system(self):
        params = paper_system()
        assert params_from_dict(params_to_dict(params)) == params

    def test_modified_system(self):
        params = default_system(
            n_nodes=1, mesh_width=1,
            consistency=ConsistencyModel.SC,
            consistency_impl=ConsistencyImpl.SPECULATIVE,
            stream_buffer_entries=4, perfect_icache=True)
        restored = params_from_dict(params_to_dict(params))
        assert restored == params
        assert restored.consistency is ConsistencyModel.SC

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "config.json")
        save_params(default_system(), path)
        assert load_params(path) == default_system()

    def test_stream_roundtrip(self):
        buf = io.StringIO()
        save_params(paper_system(), buf)
        buf.seek(0)
        assert load_params(buf) == paper_system()


class TestValidation:
    def test_unknown_top_level_key(self):
        data = params_to_dict(default_system())
        data["typo_key"] = 1
        with pytest.raises(ValueError, match="typo_key"):
            params_from_dict(data)

    def test_unknown_nested_key(self):
        data = params_to_dict(default_system())
        data["processor"]["isue_width"] = 4
        with pytest.raises(ValueError, match="isue_width"):
            params_from_dict(data)

    def test_enums_stored_by_name(self):
        data = params_to_dict(default_system())
        assert data["consistency"] == "RC"
        assert data["consistency_impl"] == "STRAIGHTFORWARD"

    def test_bad_enum_value(self):
        data = params_to_dict(default_system())
        data["consistency"] = "NOT_A_MODEL"
        with pytest.raises(KeyError):
            params_from_dict(data)

    def test_geometry_still_validated(self):
        data = params_to_dict(default_system())
        data["l1d"]["size_bytes"] = 1000  # not a power-of-two set count
        with pytest.raises(ValueError):
            params_from_dict(data)
