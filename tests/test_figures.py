"""Structural tests of the figure builders (small simulations)."""

import pytest

from repro.core.figures import (
    RUN_SIZES,
    FigureResult,
    figure4,
    figure6,
    figure7a,
    figure_ilp_issue_width,
    figure_ilp_mshrs,
    figure_ilp_window,
)

TINY = dict(instructions=4000, warmup=4000)


class TestFigureBuilders:
    def test_run_sizes_defined_for_both_workloads(self):
        assert set(RUN_SIZES) == {"oltp", "dss"}
        for instr, warm in RUN_SIZES.values():
            assert instr > 0 and warm > 0

    def test_issue_width_labels(self):
        fig = figure_ilp_issue_width("dss", widths=(1, 4), **TINY)
        labels = [row.label for row in fig.rows]
        assert labels == ["inorder-1w", "inorder-4w", "ooo-1w", "ooo-4w"]
        assert fig.rows[0].normalized == 1.0

    def test_window_sweep_configures_processor(self):
        fig = figure_ilp_window("dss", windows=(16, 64), **TINY)
        assert fig.row("win-16").result.params.processor.window_size == 16
        assert fig.row("win-64").result.params.processor.window_size == 64

    def test_mshr_sweep_has_occupancy_extras(self):
        fig = figure_ilp_mshrs("dss", counts=(2, 8), **TINY)
        assert "l1d_occupancy_all" in fig.extras
        assert "l2_occupancy_reads" in fig.extras
        dist = fig.extras["l1d_occupancy_all"]
        assert dist[1] == pytest.approx(1.0)

    def test_figure4_bars(self):
        fig = figure4(**TINY)
        labels = {row.label for row in fig.rows}
        assert labels == {"base", "infinite-fu", "perfect-bpred",
                          "perfect-icache", "128win-all-perfect"}
        perfect = fig.row("128win-all-perfect").result.params
        assert perfect.perfect_icache
        assert perfect.bpred.perfect
        assert perfect.processor.infinite_functional_units
        assert perfect.processor.window_size == 128
        assert perfect.itlb.perfect and perfect.dtlb.perfect

    def test_figure6_covers_nine_configurations(self):
        fig = figure6("dss", **TINY)
        assert len(fig.rows) == 9
        assert fig.normalized("SC-straight") == 1.0

    def test_figure7a_configs(self):
        fig = figure7a(**TINY)
        assert fig.row("streambuf-4").result.params \
            .stream_buffer_entries == 4
        assert fig.row("perfect-icache").result.params.perfect_icache

    def test_normalization_relative_to_first(self):
        fig = figure_ilp_window("dss", windows=(16, 128), **TINY)
        base = fig.row("win-16").result.execution_time
        other = fig.row("win-128").result.execution_time
        assert fig.normalized("win-128") == pytest.approx(other / base)
