"""Fast execution backend: byte-identity and scheduling properties.

The ``fast`` backend (``SystemParams.backend``) replaces the uniform
cycle grid of ``Machine.run`` with certified tick skipping; its whole
contract is *instruction-for-instruction equivalence* with the
reference loop.  These tests pin that contract:

* results (``SimulationResult.to_dict``) and full machine snapshots are
  byte-identical across workloads, consistency models, SMT, in-order
  cores and chunked runs;
* the forward-progress watchdog trips at the identical cycle with the
  identical classification on both backends (``now`` never skips past
  a pending watchdog deadline);
* checkpoint-interval boundaries land on the same retired-instruction
  counts with the same ``now`` and byte-identical snapshots (``now``
  never skips past a pending checkpoint boundary);
* sanitized runs (``check=True``) decline the fast path -- the
  invariant checker's wrappers assume every core is polled every grid
  cycle;
* ``backend`` stays out of job fingerprints: identical results must
  share cache entries.
"""

import dataclasses
from collections import OrderedDict, deque

import pytest

from repro.core.experiment import assemble_result
from repro.core.workloads import dss_workload, oltp_workload, \
    tpcc_workload
from repro.cpu.core import WindowEntry
from repro.params import ConsistencyImpl, ConsistencyModel, \
    default_system
from repro.run.jobs import JobSpec, WorkloadSpec
from repro.system.machine import Machine, WedgeError


# --------------------------------------------------------------- helpers

def canon(obj):
    """Order-insensitive deep canonical form for snapshot comparison.

    Dicts and sets are sorted (insertion order of an ``OrderedDict`` is
    semantic -- LRU order -- and preserved); generic objects compare by
    class name plus attributes.
    """
    if isinstance(obj, OrderedDict):
        return ("od", [(canon(k), canon(v)) for k, v in obj.items()])
    if isinstance(obj, dict):
        return ("d", sorted(((canon(k), canon(v))
                             for k, v in obj.items()), key=repr))
    if isinstance(obj, (set, frozenset)):
        return ("s", sorted((canon(x) for x in obj), key=repr))
    if isinstance(obj, (list, tuple, deque)):
        return ("l", [canon(x) for x in obj])
    if isinstance(obj, (int, float, str, bool, bytes, type(None))):
        return obj
    attrs = {}
    if hasattr(obj, "__slots__"):
        names = []
        for klass in type(obj).__mro__:
            names.extend(getattr(klass, "__slots__", ()))
        for name in names:
            if hasattr(obj, name):
                attrs[name] = getattr(obj, name)
    if hasattr(obj, "__dict__"):
        attrs.update(obj.__dict__)
    return (type(obj).__name__,
            sorted(((k, canon(v)) for k, v in attrs.items()), key=repr))


def build_machine(params, workload, seed=0):
    # WindowEntry uids are a process-global counter; reset so snapshots
    # of sequentially built machines compare equal.
    WindowEntry._next_uid = 0
    return Machine(params, workload.generators(params.n_nodes,
                                               seed=seed))


def one_run(params, workload, instr, warmup, seed=0, chunks=None):
    m = build_machine(params, workload, seed)
    if warmup:
        m.run(warmup)
        m.reset_stats()
    if chunks:
        cycles = 0
        base = m.total_retired()
        for stop in chunks:
            cycles += m.run(base + stop - m.total_retired())
    else:
        cycles = m.run(instr)
    res = assemble_result(m, workload.name, cycles, instr)
    return res.to_dict(), canon(m.snapshot())


def assert_identical(params, workload, instr=2500, warmup=1000, seed=0,
                     chunks=None):
    ref = one_run(params.replace(backend="reference"), workload, instr,
                  warmup, seed, chunks)
    fast = one_run(params.replace(backend="fast"), workload, instr,
                   warmup, seed, chunks)
    assert ref[0] == fast[0], "results diverged between backends"
    assert ref[1] == fast[1], "snapshots diverged between backends"


BASE = default_system()
_SMT2 = BASE.replace(processor=dataclasses.replace(
    BASE.processor, smt_contexts=2))
_INORDER = BASE.replace(processor=dataclasses.replace(
    BASE.processor, out_of_order=False))

MATRIX = [
    ("oltp", BASE, oltp_workload, {}),
    ("dss", BASE, dss_workload, {}),
    ("tpcc", BASE, tpcc_workload, {}),
    ("oltp-inorder", _INORDER, oltp_workload, {}),
    ("oltp-smt2", _SMT2, oltp_workload, {}),
    ("oltp-sc", BASE.replace(
        consistency=ConsistencyModel.SC,
        consistency_impl=ConsistencyImpl.STRAIGHTFORWARD),
        oltp_workload, {}),
    ("oltp-pc-prefetch", BASE.replace(
        consistency=ConsistencyModel.PC,
        consistency_impl=ConsistencyImpl.PREFETCH),
        oltp_workload, {}),
    ("oltp-rc-spec", BASE.replace(
        consistency=ConsistencyModel.RC,
        consistency_impl=ConsistencyImpl.SPECULATIVE),
        oltp_workload, {}),
    ("oltp-chunked", BASE, oltp_workload,
     {"chunks": [800, 1700, 2500]}),
    ("oltp-watchdog-armed", BASE.replace(
        watchdog_cycles=200000, watchdog_node_cycles=150000),
        oltp_workload, {}),
]


@pytest.mark.parametrize("name,params,workload,kw",
                         MATRIX, ids=[m[0] for m in MATRIX])
def test_backend_identity(name, params, workload, kw):
    assert_identical(params, workload(), **kw)


# ----------------------------------------------- watchdog equivalence

def test_watchdog_trips_at_identical_cycle():
    """A wedged single-node run trips the watchdog at the same cycle
    with the same classification on both backends: skip-ahead never
    jumps past a pending watchdog deadline."""
    params = BASE.replace(n_nodes=1, mesh_width=1, watchdog_cycles=40)
    trips = {}
    for backend in ("reference", "fast"):
        m = build_machine(params.replace(backend=backend),
                          oltp_workload())
        with pytest.raises(WedgeError) as err:
            m.run(4000)
        trips[backend] = err.value.to_dict()
    assert trips["reference"] == trips["fast"]


# ---------------------------------------------- checkpoint boundaries

def test_checkpoint_boundaries_identical():
    """Interval-chunked runs (the ``--checkpoint-every`` driver loop)
    stop at the same retired counts with the same ``now`` and
    byte-identical snapshots on both backends."""
    every, target = 600, 3000
    states = {}
    for backend in ("reference", "fast"):
        m = build_machine(BASE.replace(backend=backend),
                          oltp_workload())
        boundaries = []
        total = m.total_retired()
        while total < target:
            boundary = (total // every + 1) * every
            m.run(min(boundary, target) - total)
            total = m.total_retired()
            boundaries.append((total, m.now, canon(m.snapshot())))
        states[backend] = boundaries
    ref, fast = states["reference"], states["fast"]
    assert len(ref) == len(fast)
    for (r_total, r_now, r_snap), (f_total, f_now, f_snap) in \
            zip(ref, fast):
        assert r_total == f_total, \
            "checkpoint boundary hit a different retired count"
        assert r_now == f_now, \
            "machine time diverged at a checkpoint boundary"
        assert r_snap == f_snap, \
            "snapshot diverged at a checkpoint boundary"


# ----------------------------------------------------- backend gating

def test_sanitized_runs_decline_fast(monkeypatch):
    """check=True keeps the reference loop: the sanitizer's wrappers
    assume every core is polled every grid cycle."""
    def boom(self, instructions, max_cycles):
        raise AssertionError("fast path used under the sanitizer")
    monkeypatch.setattr(Machine, "_run_fast", boom)
    params = BASE.replace(backend="fast", check=True,
                          n_nodes=1, mesh_width=1)
    m = build_machine(params, oltp_workload())
    m.run(300)  # must not hit the patched fast path


def test_fast_backend_is_dispatched(monkeypatch):
    calls = []
    original = Machine._run_fast

    def spy(self, instructions, max_cycles):
        calls.append(instructions)
        return original(self, instructions, max_cycles)
    monkeypatch.setattr(Machine, "_run_fast", spy)
    m = build_machine(BASE.replace(backend="fast"), oltp_workload())
    m.run(300)
    assert calls, "backend='fast' never reached _run_fast"


def test_backend_validation():
    with pytest.raises(ValueError):
        BASE.replace(backend="warp")


def test_backend_is_ephemeral_for_fingerprints():
    """Byte-identical results must share result-cache entries."""
    ref = JobSpec(BASE.replace(backend="reference"),
                  WorkloadSpec("oltp"), instructions=1000, warmup=0,
                  seed=0)
    fast = JobSpec(BASE.replace(backend="fast"),
                   WorkloadSpec("oltp"), instructions=1000, warmup=0,
                   seed=0)
    assert ref.fingerprint() == fast.fingerprint()
