"""Runtime sanitizer tests: neutrality, teeth (mutation self-test) and
parameter plumbing."""

import pytest

from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.mutations import MUTATIONS, run_mutation_self_test
from repro.core.validation import check_sanitizer_neutrality
from repro.core.workloads import oltp_workload
from repro.params import default_system
from repro.params_io import params_from_dict, params_to_dict
from repro.system.machine import Machine


class TestNeutrality:
    """Acceptance criterion: sanitizer-enabled runs pass every invariant
    and reproduce the plain run's cycle count exactly."""

    def test_oltp(self):
        result = check_sanitizer_neutrality("oltp", instructions=8_000)
        assert result.passed, result.detail

    def test_dss(self):
        result = check_sanitizer_neutrality("dss", instructions=8_000)
        assert result.passed, result.detail


class TestCheckerWiring:
    def test_checker_attached_and_active(self):
        machine = Machine(default_system(check=True),
                          oltp_workload().generators(4))
        machine.run(4_000)
        assert isinstance(machine.checker, InvariantChecker)
        assert machine.checker.checks > 1_000
        assert machine.checker.last_violation is None

    def test_checker_absent_by_default(self):
        machine = Machine(default_system(),
                          oltp_workload().generators(4))
        assert machine.checker is None

    def test_violation_is_assertion_error(self):
        checker = InvariantChecker.__new__(InvariantChecker)
        checker.last_violation = None
        with pytest.raises(InvariantViolation):
            checker._fail("boom")
        assert checker.last_violation == "boom"
        assert issubclass(InvariantViolation, AssertionError)


class TestMutationSelfTest:
    """The ISSUE requires >= 4 seeded bugs, each detected; we ship 6."""

    def test_catalog_size(self):
        assert len(MUTATIONS) >= 4

    def test_all_mutations_detected(self):
        results = run_mutation_self_test()
        missed = [r for r in results if not r.detected]
        assert len(results) == len(MUTATIONS)
        assert not missed, "\n".join(str(r) for r in missed)

    def test_world_restored_after_mutation(self):
        """Mutations must unpatch cleanly: a sanitized run after the
        self-test sees no violations."""
        run_mutation_self_test(names=["time-warp"])
        result = check_sanitizer_neutrality("oltp", instructions=4_000)
        assert result.passed, result.detail


class TestParamsPlumbing:
    def test_check_field_not_serialized(self):
        plain = params_to_dict(default_system())
        checked = params_to_dict(default_system(check=True))
        assert plain == checked
        assert "check" not in checked

    def test_round_trip_drops_check(self):
        params = default_system(check=True)
        restored = params_from_dict(params_to_dict(params))
        assert restored.check is False
        assert params_to_dict(restored) == params_to_dict(params)

    def test_replace_toggles_check(self):
        params = default_system()
        assert params.replace(check=True).check is True
        assert params.check is False
