"""Certification tests for the batch execution backend.

The batch backend (``SystemParams.backend == "batch"``) layers dense
hot-window rounds with bulk stat retirement on top of the fast loop.
Like the fast backend it carries no tolerance: every test here demands
byte-identical results *and* byte-identical full machine snapshots
against the reference grid loop, across workloads, processor shapes,
consistency models, chunked runs, watchdog arming, arena-backed traces
and checkpoint/resume -- including resuming a batch-taken checkpoint on
the reference backend and vice versa.
"""

import dataclasses
import warnings

import pytest

from repro.core.workloads import (dss_workload, oltp_workload,
                                  tpcc_workload)
from repro.params import ConsistencyImpl, ConsistencyModel
from repro.run import checkpoint as ckpt
from repro.run.checkpoint import state_digest
from repro.run.jobs import JobSpec, WorkloadSpec
from repro.system.machine import Machine

from test_fastpath import BASE, build_machine, canon, one_run

# ------------------------------------------------------------- identity


def assert_batch_identical(params, workload_factory, instr=2500,
                           warmup=1000, seed=0, chunks=None):
    ref = one_run(params.replace(backend="reference"),
                  workload_factory(), instr, warmup, seed, chunks)
    batch = one_run(params.replace(backend="batch"),
                    workload_factory(), instr, warmup, seed, chunks)
    assert ref[0] == batch[0], "results diverged between backends"
    assert ref[1] == batch[1], "snapshots diverged between backends"


_SMT2 = BASE.replace(processor=dataclasses.replace(
    BASE.processor, smt_contexts=2))
_INORDER = BASE.replace(processor=dataclasses.replace(
    BASE.processor, out_of_order=False))

# The in-order / SMT / non-RC rows exercise the planner's eligibility
# gate: ineligible machines must degrade to an exact fast-loop clone,
# not to a wrong answer.
MATRIX = [
    ("oltp", BASE, oltp_workload, {}),
    ("dss", BASE, dss_workload, {}),
    ("tpcc", BASE, tpcc_workload, {}),
    ("oltp-inorder", _INORDER, oltp_workload, {}),
    ("oltp-smt2", _SMT2, oltp_workload, {}),
    ("oltp-sc", BASE.replace(
        consistency=ConsistencyModel.SC,
        consistency_impl=ConsistencyImpl.STRAIGHTFORWARD),
        oltp_workload, {}),
    ("oltp-pc-prefetch", BASE.replace(
        consistency=ConsistencyModel.PC,
        consistency_impl=ConsistencyImpl.PREFETCH),
        oltp_workload, {}),
    ("oltp-rc-spec", BASE.replace(
        consistency=ConsistencyModel.RC,
        consistency_impl=ConsistencyImpl.SPECULATIVE),
        oltp_workload, {}),
    ("oltp-chunked", BASE, oltp_workload,
     {"chunks": [800, 1700, 2500]}),
    ("oltp-watchdog-armed", BASE.replace(
        watchdog_cycles=200000, watchdog_node_cycles=150000),
        oltp_workload, {}),
]


@pytest.mark.parametrize("name,params,workload,kw",
                         MATRIX, ids=[m[0] for m in MATRIX])
def test_batch_identity(name, params, workload, kw):
    assert_batch_identical(params, workload, **kw)


def test_batch_identity_on_arena_replay(tmp_path):
    """Replaying a materialized arena (the zero-copy struct-of-arrays
    feed the planner scans with numpy) is byte-identical to reference."""
    from repro.trace import arena as trace_arena

    spec = JobSpec(BASE, WorkloadSpec("oltp"),
                   instructions=2500, warmup=1000, seed=0)
    recorder = trace_arena.ArenaRecorder(
        spec.workload.build(), spec.params.n_nodes, spec.seed,
        spec.workload.to_dict(), spec.instructions + spec.warmup)
    spec.run(workload=recorder.workload())
    path = tmp_path / f"{recorder.key()}.arena"
    assert recorder.write(path), "arena did not materialize"
    handle = trace_arena.load_cached(path)
    assert handle is not None
    try:
        results = {}
        for backend in ("reference", "batch"):
            bspec = dataclasses.replace(
                spec, params=spec.params.replace(backend=backend))
            results[backend] = bspec.run(workload=handle).to_dict()
        assert results["reference"] == results["batch"], \
            "arena-backed batch run diverged from reference"
    finally:
        trace_arena.forget(path)


# ------------------------------------------- cross-backend checkpointing


@pytest.mark.parametrize("take,resume", [("batch", "reference"),
                                         ("reference", "batch")])
def test_cross_backend_checkpoint_resume(take, resume):
    """A checkpoint taken under one backend resumes under the other to a
    byte-identical final state (checkpoints are backend-agnostic)."""
    target = 3600
    baseline = build_machine(BASE.replace(backend="reference"),
                             oltp_workload())
    baseline.run(target)

    first = build_machine(BASE.replace(backend=take), oltp_workload())
    first.run(1500)
    payload = {"machine": first.snapshot(),
               "trace_offsets": first.trace_consumed()}
    resumed = ckpt._rebuild_machine(
        BASE.replace(backend=resume), oltp_workload(), 0, payload)
    assert resumed.total_retired() == first.total_retired()
    resumed.run(target - resumed.total_retired())

    assert state_digest(resumed) == state_digest(baseline)
    assert resumed.now == baseline.now
    assert canon(resumed.snapshot()) == canon(baseline.snapshot())


def test_watchdog_trips_at_identical_cycle_under_batch():
    """Armed watchdogs disable rounds entirely, so a wedged run trips at
    the same cycle with the same classification as the reference loop."""
    from repro.system.machine import WedgeError

    params = BASE.replace(n_nodes=1, mesh_width=1, watchdog_cycles=40)
    trips = {}
    for backend in ("reference", "batch"):
        m = build_machine(params.replace(backend=backend),
                          oltp_workload())
        with pytest.raises(WedgeError) as err:
            m.run(4000)
        trips[backend] = err.value.to_dict()
    assert trips["reference"] == trips["batch"]


# ----------------------------------------------------- backend gating


def test_batch_backend_is_dispatched(monkeypatch):
    calls = []
    original = Machine._run_batch

    def spy(self, instructions, max_cycles):
        calls.append(instructions)
        return original(self, instructions, max_cycles)
    monkeypatch.setattr(Machine, "_run_batch", spy)
    m = build_machine(BASE.replace(backend="batch"), oltp_workload())
    m.run(300)
    assert calls, "backend='batch' never reached _run_batch"
    assert m.effective_backend == "batch"


def test_sanitized_runs_decline_batch(monkeypatch):
    """check=True keeps the reference loop and says so: the fallback is
    warned about once and recorded in ``effective_backend``."""
    import repro.system.machine as machine_mod

    def boom(self, instructions, max_cycles):
        raise AssertionError("batch path used under the sanitizer")
    monkeypatch.setattr(Machine, "_run_batch", boom)
    monkeypatch.setattr(machine_mod, "_warned_checker_fallback", set())
    params = BASE.replace(backend="batch", check=True,
                          n_nodes=1, mesh_width=1)
    m = build_machine(params, oltp_workload())
    with pytest.warns(RuntimeWarning, match="batch"):
        m.run(300)
    assert m.effective_backend == "reference"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second run must stay silent
        m.run(300)


def test_effective_backend_reaches_result_payload():
    from repro.core.experiment import assemble_result

    m = build_machine(BASE.replace(backend="batch"), oltp_workload())
    cycles = m.run(500)
    res = assemble_result(m, "oltp", cycles, 500)
    assert res.effective_backend == "batch"
    # Excluded from the serialized payload on purpose: certified-equal
    # runs must share cache entries and compare equal.
    assert "effective_backend" not in res.to_dict()


def test_batch_backend_is_ephemeral_for_fingerprints():
    ref = JobSpec(BASE.replace(backend="reference"),
                  WorkloadSpec("oltp"), instructions=1000, warmup=0,
                  seed=0)
    batch = JobSpec(BASE.replace(backend="batch"),
                    WorkloadSpec("oltp"), instructions=1000, warmup=0,
                    seed=0)
    assert ref.fingerprint() == batch.fingerprint()


# ------------------------------------------------------ planner pieces


def test_trace_buffer_peek_does_not_consume():
    from repro.cpu.core import TraceBuffer

    buf = TraceBuffer(iter(range(10, 15)))
    assert buf.peek(3) == 13          # reads ahead through the source
    assert buf.consumed == 0          # ...without consuming anything
    assert buf.peek(9) is None        # past the end: deferred stop
    assert [buf.get(i) for i in range(5)] == [10, 11, 12, 13, 14]
    with pytest.raises(StopIteration):
        buf.get(5)                    # the deferred stop re-raises


def test_planner_declines_ineligible_machines():
    from repro.cpu.batch import make_planner

    eligible = build_machine(BASE, oltp_workload())
    assert make_planner(eligible) is not None
    for params in (_INORDER, _SMT2,
                   BASE.replace(
                       consistency=ConsistencyModel.SC,
                       consistency_impl=ConsistencyImpl.STRAIGHTFORWARD)):
        m = build_machine(params, oltp_workload())
        assert make_planner(m) is None, \
            f"planner accepted ineligible machine {params.consistency}"
