"""Tests for the fork-server pool and batched dispatch
(:mod:`repro.run.forkserver`) plus the profiling harness.

The delta codec is exercised on real JobSpec dicts, pool persistence
across calls is checked directly, and the headline guarantee -- a
fork-server sweep under ``REPRO_FAULTS`` produces byte-identical
results to the serial generator path -- is asserted end to end.
"""

import os

import pytest

import repro.run
from repro.params import default_system
from repro.run import DEFAULT_POLICY, JobSpec, RetryPolicy, WorkloadSpec, \
    run_many
from repro.run import forkserver
from repro.run.profile import format_report, profile_run

TINY = dict(instructions=1200, warmup=400)
FAST_POLICY = RetryPolicy(retries=4, backoff_base=0.001,
                          backoff_cap=0.01)


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    monkeypatch.setattr(repro.run, "_jobs", 1)
    monkeypatch.setattr(repro.run, "_cache", None)
    monkeypatch.setattr(repro.run, "_manifest", None)
    monkeypatch.setattr(repro.run, "_policy", DEFAULT_POLICY)
    monkeypatch.setattr(repro.run, "_resume", False)
    monkeypatch.setattr(repro.run, "_arenas", "auto")
    monkeypatch.setattr(repro.run, "_trace_dir", None)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_START_METHOD", raising=False)


def _spec(seed=0, kind="oltp", **sizes):
    sizes = {**TINY, **sizes}
    return JobSpec(default_system(), WorkloadSpec(kind), seed=seed,
                   **sizes)


class TestDeltaCodec:
    def test_flatten_unflatten_roundtrip(self):
        data = _spec().to_dict()
        flat = forkserver.flatten(data)
        assert forkserver.unflatten(flat) == data

    def test_delta_between_real_jobspecs(self):
        import dataclasses
        base = default_system()
        small = JobSpec(base, WorkloadSpec("oltp"), seed=0, **TINY)
        wide = JobSpec(
            base.replace(processor=dataclasses.replace(
                base.processor, window_size=128)),
            WorkloadSpec("oltp"), seed=3, **TINY)
        base_flat = forkserver.flatten(small.to_dict())
        delta = forkserver.encode_delta(base_flat, wide.to_dict())
        assert forkserver.apply_delta(base_flat, delta) == \
            wide.to_dict()
        # The delta only carries what actually differs.
        changed = {path for path, _ in delta["set"]}
        assert any("window_size" in path for path in changed)
        assert len(changed) < len(base_flat) / 2

    def test_identical_jobs_produce_empty_delta(self):
        base_flat = forkserver.flatten(_spec().to_dict())
        delta = forkserver.encode_delta(base_flat, _spec().to_dict())
        assert delta["set"] == [] and delta["drop"] == []

    def test_dropped_keys_round_trip(self):
        base = {"a": 1, "nested": {"x": 1, "y": 2}}
        other = {"a": 1, "nested": {"x": 1}}
        base_flat = forkserver.flatten(base)
        delta = forkserver.encode_delta(base_flat, other)
        assert forkserver.apply_delta(base_flat, delta) == other


class TestBatchPayload:
    def test_payload_ships_faults_string(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:0.5,seed:7")
        spec = _spec()
        payload = forkserver.make_batch_payload(
            spec.to_dict(), [(spec.to_dict(), 1, None)])
        assert payload["faults"] == "crash:0.5,seed:7"

    def test_execute_batch_runs_jobs(self):
        spec_a, spec_b = _spec(seed=0), _spec(seed=1)
        payload = forkserver.make_batch_payload(
            spec_a.to_dict(),
            [(spec_a.to_dict(), 1, None), (spec_b.to_dict(), 1, None)])
        out = forkserver._execute_batch(payload)
        assert [entry["ok"] for entry in out] == [True, True]
        assert out[0]["result"] == spec_a.run().to_dict()
        assert out[1]["result"] == spec_b.run().to_dict()

    def test_execute_batch_isolates_per_job_errors(self):
        good = _spec(seed=0)
        bad = good.to_dict()
        bad["workload"]["kind"] = "no-such-workload"
        payload = forkserver.make_batch_payload(
            good.to_dict(), [(bad, 1, None), (good.to_dict(), 1, None)])
        out = forkserver._execute_batch(payload)
        assert out[0]["ok"] is False and out[0]["error"]
        assert out[1]["ok"] is True


class TestPoolLifecycle:
    def test_pool_persists_across_calls(self):
        pool = forkserver.get_pool(2)
        if pool is None:
            pytest.skip("no usable multiprocessing start method")
        try:
            assert forkserver.get_pool(2) is pool
        finally:
            forkserver.recycle_pool()

    def test_worker_count_change_recycles(self):
        pool = forkserver.get_pool(2)
        if pool is None:
            pytest.skip("no usable multiprocessing start method")
        try:
            other = forkserver.get_pool(3)
            assert other is not pool
        finally:
            forkserver.recycle_pool()

    def test_recycle_gives_fresh_pool(self):
        pool = forkserver.get_pool(2)
        if pool is None:
            pytest.skip("no usable multiprocessing start method")
        forkserver.recycle_pool()
        fresh = forkserver.get_pool(2)
        try:
            assert fresh is not pool
        finally:
            forkserver.recycle_pool()

    def test_start_method_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert forkserver.pick_method() == "spawn"

    def test_bogus_override_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.warns(RuntimeWarning, match="teleport"):
            assert forkserver.pick_method() in ("fork", "forkserver",
                                                "spawn")


class TestPoolVsSerial:
    def test_pool_sweep_matches_serial(self, tmp_path):
        specs = [_spec(seed=s) for s in (0, 1, 2)]
        serial = run_many(specs, jobs=1, arenas="off")
        pooled = run_many(specs, jobs=2, arenas="off")
        assert [r.to_dict() for r in pooled.results] == \
            [r.to_dict() for r in serial.results]

    def test_pool_with_faults_matches_serial(self, monkeypatch,
                                             tmp_path):
        """Fault-injected fork-server run is byte-identical to serial.

        The faults string rides inside the batch payload, so persistent
        workers honour the value set *after* the pool was first forked.
        """
        forkserver.recycle_pool()
        specs = [_spec(seed=s) for s in range(4)]
        baseline = run_many(specs, jobs=1, arenas="off")
        monkeypatch.setenv("REPRO_FAULTS", "crash:0.3,seed:11")
        faulty_serial = run_many(specs, jobs=1, policy=FAST_POLICY,
                                 arenas="off")
        faulty_pool = run_many(specs, jobs=2, policy=FAST_POLICY,
                               arenas="off")
        assert [r.to_dict() for r in faulty_serial.results] == \
            [r.to_dict() for r in baseline.results]
        assert [r.to_dict() for r in faulty_pool.results] == \
            [r.to_dict() for r in baseline.results]

    def test_pool_with_arenas_matches_serial(self, tmp_path):
        import dataclasses
        base = default_system()
        specs = []
        for window in (16, 64):
            params = base.replace(processor=dataclasses.replace(
                base.processor, window_size=window))
            specs.append(JobSpec(params, WorkloadSpec("oltp"), seed=0,
                                 **TINY))
        serial = run_many(specs, jobs=1, arenas="off")
        pooled = run_many(specs, jobs=2, arenas="auto",
                          trace_dir=str(tmp_path))
        assert [r.to_dict() for r in pooled.results] == \
            [r.to_dict() for r in serial.results]


class TestProfileHarness:
    def test_profile_run_smoke(self):
        report = profile_run("oltp", instructions=800, warmup=400,
                             seed=0, top=5)
        assert report["cycles"] > 0
        assert report["instr_per_s"] > 0
        assert report["subsystems"], "no subsystem attribution"
        shares = sum(s["share"] for s in report["subsystems"])
        assert 0.99 <= shares <= 1.01
        assert len(report["top_functions"]) <= 5
        text = format_report(report)
        assert "instr/s" in text

    def test_profile_arena_comparison_is_identical(self, tmp_path):
        report = profile_run("oltp", instructions=800, warmup=400,
                             seed=0, top=3, compare_arena=True,
                             trace_dir=str(tmp_path))
        comparison = report["arena"]
        assert comparison["materialized"] is True
        assert comparison["identical"] is True
        assert comparison["arena_bytes"] > 0
