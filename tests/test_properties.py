"""Property-based tests over the simulator's core invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CacheArray, MshrFile
from repro.mem.coherence import (
    DIR_EXCLUSIVE,
    DIR_INVALID,
    DIR_SHARED,
    CoherentMemory,
)
from repro.mem.interconnect import MeshNetwork
from repro.params import CacheParams, MemoryLatencies, default_system
from repro.system.machine import Machine
from repro.trace.instr import Instruction, OP_INT, OP_LOAD, OP_STORE

CODE = 0x0100_0000
DATA = 0x2000_0000


@st.composite
def coherence_ops(draw):
    """Random sequences of protocol transactions."""
    n = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["read", "write", "flush", "writeback", "evict"]))
        node = draw(st.integers(0, 3))
        line = draw(st.integers(0, 5)) * 128
        ops.append((kind, node, line))
    return ops


class TestCoherenceInvariants:
    @given(coherence_ops())
    @settings(max_examples=120, deadline=None)
    def test_directory_state_always_consistent(self, ops):
        mesh = MeshNetwork(4, 2)
        mem = CoherentMemory(MemoryLatencies(), mesh)
        now = 0
        for kind, node, line in ops:
            now += 50
            if kind == "read":
                mem.read(node, line, now)
            elif kind == "write":
                mem.write(node, line, now)
            elif kind == "flush":
                mem.flush(node, line, now)
            elif kind == "writeback":
                mem.writeback(node, line, now)
            else:
                mem.evict_clean(node, line)
            entry = mem.entry(line)
            if entry.state == DIR_EXCLUSIVE:
                assert 0 <= entry.owner < 4
                assert not entry.sharers
            elif entry.state == DIR_SHARED:
                assert entry.sharers
                assert entry.owner == -1
            else:
                assert entry.state == DIR_INVALID

    @given(coherence_ops())
    @settings(max_examples=60, deadline=None)
    def test_latencies_monotone_nonnegative(self, ops):
        mesh = MeshNetwork(4, 2)
        mem = CoherentMemory(MemoryLatencies(), mesh)
        now = 0
        for kind, node, line in ops:
            now += 10
            if kind == "read":
                done, _, _ = mem.read(node, line, now)
                assert done >= now
            elif kind == "write":
                done, _ = mem.write(node, line, now)
                assert done >= now


class TestCacheInvariants:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "inval", "dirty"]),
                              st.integers(0, 127)), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_dirty_implies_present(self, ops):
        cache = CacheArray(CacheParams("T", 4096, 2))
        for kind, line in ops:
            if kind == "insert":
                cache.insert(line)
            elif kind == "inval":
                cache.invalidate(line)
            else:
                cache.mark_dirty(line)
            if cache.is_dirty(line):
                assert cache.lookup(line, touch=False)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_mshr_outstanding_bounded(self, lines):
        mshrs = MshrFile(4)
        now = 0
        for line in lines:
            now += 1
            mshrs.expire(now)
            if mshrs.get(line) is None and not mshrs.full:
                mshrs.register(line, now, now + 50, True, False)
            assert mshrs.outstanding() <= 4


@st.composite
def small_programs(draw):
    """Random short instruction programs (no control flow surprises)."""
    n = draw(st.integers(min_value=8, max_value=40))
    program = []
    for i in range(n):
        kind = draw(st.sampled_from([OP_INT, OP_LOAD, OP_STORE]))
        dep = draw(st.integers(0, 4))
        deps = (dep,) if dep and dep <= i else ()
        addr = DATA + draw(st.integers(0, 63)) * 64
        program.append(Instruction(kind, CODE + 4 * i, addr=addr,
                                   deps=deps))
    return program


class TestMachineInvariants:
    @given(small_programs())
    @settings(max_examples=25, deadline=None)
    def test_all_programs_run_to_completion(self, program):
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [itertools.cycle(program)])
        cycles = m.run(600, max_cycles=3_000_000)
        assert m.total_retired() >= 600
        assert cycles >= 600 / 4  # bounded by issue width

    @given(small_programs())
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, program):
        def run():
            params = default_system(n_nodes=1, mesh_width=1)
            m = Machine(params, [itertools.cycle(
                [Instruction(i.op, i.pc, addr=i.addr, deps=i.deps)
                 for i in program])])
            return m.run(400, max_cycles=3_000_000)
        assert run() == run()

    @given(small_programs())
    @settings(max_examples=15, deadline=None)
    def test_breakdown_conserves_time(self, program):
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [itertools.cycle(program)])
        cycles = m.run(500, max_cycles=3_000_000)
        accounted = sum(m.breakdown().cycles)
        assert abs(accounted - cycles) <= 2
