"""Unit tests for the SMT shared pipeline and hint ordering details."""

import itertools

import pytest

from repro.cpu.smt import SharedPipeline
from repro.params import default_system
from repro.trace.database import DatabaseLayout, MigratoryHints
from repro.trace.instr import OP_LOCK_ACQ, OP_PREFETCH
from repro.trace.oltp import OltpTraceGenerator


class TestSharedPipeline:
    def test_refresh_replenishes_budgets(self):
        shared = SharedPipeline(default_system())
        shared.refresh(5)
        assert shared.issue_slots == 4
        assert shared.fu == [2, 2, 2]
        shared.issue_slots -= 3
        shared.fu[0] -= 2
        shared.refresh(5)               # same cycle: no replenish
        assert shared.issue_slots == 1
        assert shared.fu[0] == 0
        shared.refresh(6)               # new cycle: fresh budgets
        assert shared.issue_slots == 4
        assert shared.fu[0] == 2

    def test_infinite_fu_mode(self):
        import dataclasses
        params = default_system()
        params = params.replace(processor=dataclasses.replace(
            params.processor, infinite_functional_units=True))
        shared = SharedPipeline(params)
        shared.refresh(0)
        assert shared.fu[0] > 1_000_000


class TestHintOrdering:
    def test_cs_prefetch_depends_on_lock_acquire(self):
        """The migratory prefetch must be ordered after the acquire so it
        cannot steal the line from the current critical-section holder."""
        layout = DatabaseLayout().scaled(16)
        hints = MigratoryHints(prefetch=True, flush=True)
        gen = OltpTraceGenerator(0, layout, seed=1, hints=hints)
        instrs = list(itertools.islice(iter(gen), 40_000))
        found = 0
        for i, instr in enumerate(instrs):
            if instr.op != OP_PREFETCH:
                continue
            found += 1
            assert instr.deps, "prefetch must carry a dependence"
            producer = instrs[i - instr.deps[0]]
            assert producer.op == OP_LOCK_ACQ
        assert found > 0
