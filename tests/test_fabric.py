"""Tests for the multi-host execution fabric and the retention GC.

Covers the framed-JSON wire protocol (including transport fault
injection), worker-spec parsing, the deterministic lease table under a
fake clock, the dispatcher chain resolution behind ``run_many``, live
loopback sweeps (clean, faulted, and with every worker killed), mixed
local-pool / fabric / serial resume of one manifest, worker-health
persistence in the manifest, the ``repro gc`` retention planner, and
lint rule R008 (no unbounded socket blocking inside ``run/fabric/``).
"""

import json
import os
import socket

import pytest

import repro.run
from repro.params import default_system
from repro.run import (
    DEFAULT_POLICY,
    MANIFEST_NAME,
    JobSpec,
    ResultCache,
    SweepManifest,
    WorkloadSpec,
    plan_from_env,
    run_many,
)
from repro.run.dispatch import (
    PoolDispatcher,
    SerialDispatcher,
    resolve_chain,
)
from repro.run.fabric import (
    Channel,
    ConnectionClosed,
    FabricConfig,
    FabricDispatcher,
    LeaseTable,
    parse_address,
    parse_worker_spec,
)
from repro.run import gc as run_gc

TINY = dict(instructions=800, warmup=800)

#: Tight fabric timeouts so failover paths run in test time rather
#: than the production defaults (which assume real networks).
FAST_FABRIC = dict(ack_timeout=1.0, lease_timeout=1.5,
                   connect_timeout=20.0)


def tiny_spec(seed=0, kind="oltp", **params_changes):
    params = default_system(**params_changes)
    return JobSpec(params, WorkloadSpec(kind), seed=seed, **TINY)


def dicts(report):
    return [r.to_dict() for r in report.results]


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    """Isolate each test from process-wide runner state and fault env."""
    monkeypatch.setattr(repro.run, "_jobs", 1)
    monkeypatch.setattr(repro.run, "_cache", None)
    monkeypatch.setattr(repro.run, "_manifest", None)
    monkeypatch.setattr(repro.run, "_policy", DEFAULT_POLICY)
    monkeypatch.setattr(repro.run, "_resume", False)
    monkeypatch.setattr(repro.run, "_checkpoint_every",
                        repro.run.DEFAULT_CHECKPOINT_EVERY)
    monkeypatch.setattr(repro.run, "_dispatch", "local")
    monkeypatch.setattr(repro.run, "_workers", ())
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_DISPATCH", raising=False)


def channel_pair(plan=None):
    """Two connected channels over a socketpair; ``plan`` arms the
    *sender* side only so drop/dup accounting is unambiguous."""
    left, right = socket.socketpair()
    return (Channel(left, name="tx", plan=plan),
            Channel(right, name="rx"))


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_round_trip_preserves_payload(self):
        tx, rx = channel_pair()
        try:
            for n in range(3):
                tx.send_json({"type": "job", "n": n, "blob": "x" * 500})
            got = [rx.recv_json(timeout=2.0) for _ in range(3)]
            assert [m["n"] for m in got] == [0, 1, 2]
            assert got[2]["blob"] == "x" * 500
        finally:
            tx.close(), rx.close()

    def test_recv_timeout_returns_none_and_keeps_buffer(self):
        tx, rx = channel_pair()
        try:
            assert rx.recv_json(timeout=0.05) is None
            tx.send_json({"type": "late"})
            assert rx.recv_json(timeout=2.0)["type"] == "late"
        finally:
            tx.close(), rx.close()

    def test_peer_close_raises_connection_closed(self):
        tx, rx = channel_pair()
        tx.close()
        with pytest.raises(ConnectionClosed):
            rx.recv_json(timeout=1.0)
        rx.close()

    def test_netdrop_loses_frames_but_spares_handshake(self):
        plan = plan_from_env("netdrop:1.0,seed:0")
        tx, rx = channel_pair(plan=plan)
        try:
            tx.send_json({"type": "hello"})    # handshake: exempt
            tx.send_json({"type": "result"})   # dropped
            assert rx.recv_json(timeout=2.0)["type"] == "hello"
            assert rx.recv_json(timeout=0.2) is None
        finally:
            tx.close(), rx.close()

    def test_netdup_duplicates_frames(self):
        plan = plan_from_env("netdup:1.0,seed:0")
        tx, rx = channel_pair(plan=plan)
        try:
            tx.send_json({"type": "result", "job_id": 7})
            first = rx.recv_json(timeout=2.0)
            second = rx.recv_json(timeout=2.0)
            assert first == second and first["job_id"] == 7
        finally:
            tx.close(), rx.close()

    def test_parse_address(self):
        assert parse_address("db1:9000") == ("db1", 9000)
        assert parse_address("[::1]:9000") == ("::1", 9000)
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        for bad in ("db1", "db1:", "db1:x", ""):
            with pytest.raises(ValueError):
                parse_address(bad)


class TestWorkerSpec:
    def test_parse_forms(self):
        assert parse_worker_spec("spawn:3") == ("spawn", 3)
        assert parse_worker_spec("spawn") == ("spawn", 1)
        assert parse_worker_spec("wait:2") == ("wait", 2)
        assert parse_worker_spec("ssh:db-host-1") == ("ssh", "db-host-1")
        assert parse_worker_spec("db-host-1") == ("ssh", "db-host-1")

    def test_parse_rejects_garbage(self):
        for bad in ("spawn:0", "spawn:-1", "ssh:", ""):
            with pytest.raises(ValueError):
                parse_worker_spec(bad)


# ---------------------------------------------------------------------------
# Lease table (fake clock -- fully deterministic)
# ---------------------------------------------------------------------------

class TestLeaseTable:
    def table(self, job_timeout=None):
        return LeaseTable(lease_timeout=3.0, ack_timeout=5.0,
                          job_timeout=job_timeout)

    def test_grant_ack_release_lifecycle(self):
        table = self.table()
        table.join("w1", now=0.0)
        assert table.idle_workers() == ["w1"]
        lease = table.grant("w1", job_id=1, index=0, fingerprint="f" * 64,
                            attempt=1, dispatch_seq=0, now=0.0)
        assert table.idle_workers() == []
        assert not lease.acknowledged
        assert table.acknowledge("w1", job_id=1, now=0.5)
        assert lease.acknowledged
        assert not table.acknowledge("w1", job_id=99, now=0.6)  # stale
        released = table.release("w1", job_id=1)
        assert released is lease and table.idle_workers() == ["w1"]

    def test_unacked_grant_expires_as_ack_timeout(self):
        table = self.table()
        table.join("w1", now=0.0)
        table.grant("w1", 1, 0, "f" * 64, 1, 0, now=0.0)
        table.heartbeat("w1", now=5.2)   # alive, just never acked
        assert table.expired(now=4.9) == []
        [(lease, reason)] = table.expired(now=5.2)
        assert reason == "ack-timeout" and lease.job_id == 1

    def test_stale_heartbeat_expires_as_worker_lost(self):
        table = self.table(job_timeout=0.1)
        table.join("w1", now=0.0)
        table.grant("w1", 1, 0, "f" * 64, 1, 0, now=0.0)
        table.acknowledge("w1", 1, now=0.1)
        # Heartbeat stale AND the acked job overran its budget AND the
        # grant is past the ack window: worker-lost must win so the
        # requeue stays innocent.
        [(_, reason)] = table.expired(now=10.0)
        assert reason == "worker-lost"
        assert table.lost_workers(now=10.0) == ["w1"]
        orphan = table.drop("w1")
        assert orphan is not None and orphan.job_id == 1
        assert table.workers == {}

    def test_acked_job_overrunning_budget_expires_as_job_timeout(self):
        table = self.table(job_timeout=2.0)
        table.join("w1", now=0.0)
        table.grant("w1", 1, 0, "f" * 64, 1, 0, now=0.0)
        table.acknowledge("w1", 1, now=0.5)
        table.heartbeat("w1", now=3.0)   # still alive, still grinding
        [(_, reason)] = table.expired(now=3.0)
        assert reason == "job-timeout"

    def test_heartbeats_keep_a_busy_worker_leased(self):
        table = self.table()
        table.join("w1", now=0.0)
        table.grant("w1", 1, 0, "f" * 64, 1, 0, now=0.0)
        table.acknowledge("w1", 1, now=0.1)
        for tick in range(1, 40):
            table.heartbeat("w1", now=tick * 0.25)
        assert table.expired(now=10.0) == []
        assert table.lease_for_job(1).worker == "w1"


# ---------------------------------------------------------------------------
# Dispatcher chain resolution
# ---------------------------------------------------------------------------

class TestDispatchChain:
    def names(self, chain):
        return [strategy.name for strategy in chain]

    def test_local_is_pool_then_serial_when_worth_it(self):
        assert self.names(resolve_chain("local", jobs=4, n_pending=5)) \
            == ["pool", "serial"]
        assert self.names(resolve_chain(None, jobs=1, n_pending=5)) \
            == ["serial"]
        assert self.names(resolve_chain("local", jobs=4, n_pending=1)) \
            == ["serial"]

    def test_fabric_chain_ends_serial(self):
        chain = resolve_chain("fabric", jobs=4, n_pending=5,
                              workers=("spawn:2",))
        assert self.names(chain) == ["fabric", "pool", "serial"]
        assert self.names(resolve_chain("fabric", jobs=1, n_pending=5)) \
            == ["fabric", "serial"]

    def test_instance_and_list_forms(self):
        instance = PoolDispatcher()
        assert self.names(resolve_chain(instance, 1, 1)) \
            == ["pool", "serial"]
        only = [SerialDispatcher()]
        assert resolve_chain(only, 8, 8) == only
        with pytest.raises(ValueError):
            resolve_chain("teleport", 1, 1)


# ---------------------------------------------------------------------------
# Live loopback fabric sweeps
# ---------------------------------------------------------------------------

class TestFabricSweeps:
    def fabric(self, workers, **overrides):
        knobs = dict(FAST_FABRIC)
        knobs.update(overrides)
        return FabricDispatcher(FabricConfig(workers=workers, **knobs))

    def test_loopback_sweep_is_byte_identical_to_serial(self, tmp_path):
        specs = [tiny_spec(seed=s) for s in range(6)]
        baseline = run_many(specs, jobs=1, cache=None, arenas="off")
        report = run_many(specs, jobs=2, cache=None, arenas="off",
                          dispatch=self.fabric(("spawn:2",)))
        assert not report.failures
        assert report.dispatch == "fabric"
        assert not report.fell_back_to_serial
        assert dicts(report) == dicts(baseline)

    def test_faulted_fabric_sweep_is_byte_identical(self, tmp_path,
                                                    monkeypatch):
        """Acceptance: 20 jobs with workerdie+netdrop+hang injected at
        the transport complete byte-identical to a fault-free serial
        baseline (degrading locally if the faults eat every worker)."""
        specs = [tiny_spec(seed=s) for s in range(20)]
        baseline = run_many(specs, jobs=1, cache=None, arenas="off")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "workerdie:0.08,netdrop:0.05,hang:0.05,hang_s:0.2,seed:11")
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest(cache.path / MANIFEST_NAME)
        report = run_many(specs, jobs=2, cache=cache, manifest=manifest,
                          arenas="off",
                          dispatch=self.fabric(("spawn:3",)))
        assert not report.failures
        assert dicts(report) == dicts(baseline)
        assert manifest.counts() == {"done": 20}
        assert manifest.workers, "no worker health was journalled"

    def test_killing_every_worker_degrades_without_losing_work(
            self, tmp_path, monkeypatch):
        """workerdie:1.0 murders each worker at its first dispatch; the
        fabric must hand the remainder to local execution and the sweep
        still completes byte-identical with zero failed jobs."""
        specs = [tiny_spec(seed=s) for s in range(5)]
        baseline = run_many(specs, jobs=1, cache=None, arenas="off")
        monkeypatch.setenv("REPRO_FAULTS", "workerdie:1.0,seed:0")
        cache = ResultCache(tmp_path / "cache")
        manifest = SweepManifest(cache.path / MANIFEST_NAME)
        report = run_many(specs, jobs=1, cache=cache, manifest=manifest,
                          arenas="off",
                          dispatch=self.fabric(("spawn:2",)))
        assert not report.failures
        assert report.fell_back_to_serial
        assert report.dispatch == "serial"
        assert dicts(report) == dicts(baseline)
        assert manifest.counts() == {"done": 5}

    def test_fabric_without_workers_declines_to_local(self):
        specs = [tiny_spec(seed=s) for s in range(2)]
        report = run_many(specs, jobs=1, cache=None, arenas="off",
                          dispatch="fabric", workers=())
        assert not report.failures
        assert report.dispatch == "serial"

    def test_mixed_dispatch_resume_one_outcome_per_job(self, tmp_path):
        """Satellite: a sweep started on the local pool, resumed through
        the fabric, and finished serially lands exactly one completed
        outcome per job with no duplicate attempts."""
        specs = [tiny_spec(seed=s) for s in range(6)]
        reference = run_many(specs, jobs=1, cache=None, arenas="off")
        cache = ResultCache(tmp_path / "cache")

        first = run_many(specs[:3], jobs=2, cache=cache,
                         manifest=SweepManifest(cache.path / MANIFEST_NAME),
                         arenas="off")
        assert not first.failures

        second = run_many(specs[:5], jobs=2, cache=cache,
                          manifest=SweepManifest(cache.path / MANIFEST_NAME),
                          resume=True, arenas="off",
                          dispatch=self.fabric(("spawn:2",)))
        assert not second.failures
        assert second.cache_hits == 3   # pool-phase results reused

        final = SweepManifest(cache.path / MANIFEST_NAME)
        third = run_many(specs, jobs=1, cache=cache, manifest=final,
                         resume=True, arenas="off", dispatch="local")
        assert not third.failures
        assert third.cache_hits == 5
        assert dicts(third) == dicts(reference)

        assert final.counts() == {"done": 6}
        for spec in specs:
            record = final.get(spec.fingerprint())
            assert record.status == "done"
            assert record.attempts == 1, \
                f"job {spec.fingerprint()[:12]} ran {record.attempts}x"
            logged = [entry["attempt"] for entry in record.attempt_log]
            assert len(logged) == len(set(logged)) == 1, \
                "duplicate attempt entries across dispatchers"


# ---------------------------------------------------------------------------
# Worker health in the manifest
# ---------------------------------------------------------------------------

class TestManifestWorkerHealth:
    def test_mark_worker_persists_and_renders(self, tmp_path):
        manifest = SweepManifest(tmp_path / MANIFEST_NAME)
        manifest.begin(["f" * 64], ["job-a"])
        manifest.mark_worker("w1", status="joined", jobs_done=0,
                             jobs_failed=0, last_heartbeat=1.0)
        manifest.mark_worker("w1", status="released", jobs_done=4,
                             lease="", last_heartbeat=2.0)
        manifest.mark_worker("w2", status="lost", jobs_done=1,
                             jobs_failed=1, lease="c073b5cb1933",
                             lease_since=1.5)
        reloaded = SweepManifest(tmp_path / MANIFEST_NAME)
        assert reloaded.workers["w1"]["status"] == "released"
        assert reloaded.workers["w1"]["jobs_done"] == 4
        status = reloaded.format_status()
        assert "workers:" in status
        assert "w1       released  done=4" in status
        assert "lease c073b5cb1933" in status
        assert "idle" in status

    def test_no_worker_section_for_local_sweeps(self, tmp_path):
        manifest = SweepManifest(tmp_path / MANIFEST_NAME)
        manifest.begin(["f" * 64], ["job-a"])
        assert "workers:" not in manifest.format_status()
        raw = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert "workers" not in raw


# ---------------------------------------------------------------------------
# Retention GC
# ---------------------------------------------------------------------------

NOW = 1_000_000.0


def _touch(path, age_s, payload=b"x"):
    """Create ``path`` (file) with mtime ``NOW - age_s``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    stamp = NOW - age_s
    os.utime(path, (stamp, stamp))
    os.utime(path.parent, (stamp, stamp))


class TestGc:
    def seed_cache(self, root):
        """A cache dir with one artifact per category at known ages."""
        fp_old, fp_new = "a" * 64, "b" * 64
        _touch(root / "checkpoints" / fp_old / "ck-1.ckpt", age_s=10 * 86400)
        _touch(root / "checkpoints" / fp_new / "ck-1.ckpt", age_s=1 * 86400)
        _touch(root / "triage" / (fp_old[:12] + "-a1") / "job.json",
               age_s=9 * 86400)
        _touch(root / "traces" / "t1.arena", age_s=8 * 86400,
               payload=b"y" * 100)
        _touch(root / "quarantine" / "bad.json", age_s=2 * 86400)
        return fp_old, fp_new

    def test_age_rule_evicts_only_the_old(self, tmp_path):
        fp_old, fp_new = self.seed_cache(tmp_path)
        plan = run_gc.plan_gc(tmp_path, now=NOW)
        gone = {item.path.name for item in plan.evictions}
        assert gone == {fp_old, fp_old[:12] + "-a1", "t1.arena"}
        kept = {item.path.name for item in plan.items if not item.evict}
        assert kept == {fp_new, "bad.json"}
        assert plan.freed_bytes() > 0

    def test_manifest_pins_in_flight_jobs(self, tmp_path):
        fp_old, _ = self.seed_cache(tmp_path)
        manifest = SweepManifest(tmp_path / MANIFEST_NAME)
        manifest.begin([fp_old], ["job-a"])
        manifest.mark_running(fp_old)
        plan = run_gc.plan_gc(tmp_path, manifest=manifest, now=NOW)
        pinned = {item.path.name for item in plan.pinned}
        # Both the checkpoint dir (full fingerprint) and the triage
        # bundle (fp12 prefix) of the running job survive.
        assert pinned == {fp_old, fp_old[:12] + "-a1"}
        gone = {item.path.name for item in plan.evictions}
        assert gone == {"t1.arena"}

    def test_count_cap_keeps_newest_and_pins_hold_slots(self, tmp_path):
        root = tmp_path
        for n, age in enumerate((300.0, 200.0, 100.0)):
            _touch(root / "triage" / (f"{n:012d}" + "-a1") / "job.json",
                   age_s=age)
        manifest = SweepManifest(root / MANIFEST_NAME)
        oldest = "0" * 11 + "0"
        manifest.begin([oldest + "f" * 52], ["job-a"])
        manifest.mark_running(oldest + "f" * 52)
        rules = {"triage": run_gc.RetentionRule(max_count=2)}
        plan = run_gc.plan_gc(root, rules=rules, manifest=manifest,
                              now=NOW)
        # Three bundles, cap two, oldest pinned: the pin occupies a
        # slot, so the middle bundle goes and the newest survives.
        gone = {item.path.name for item in plan.evictions}
        assert gone == {f"{1:012d}" + "-a1"}

    def test_bytes_cap_evicts_oldest_first(self, tmp_path):
        for n, age in enumerate((300.0, 200.0, 100.0)):
            _touch(tmp_path / "traces" / f"t{n}.arena", age_s=age,
                   payload=b"z" * 400)
        rules = {"arenas": run_gc.RetentionRule(max_bytes=900)}
        plan = run_gc.plan_gc(tmp_path, rules=rules, now=NOW)
        gone = {item.path.name for item in plan.evictions}
        assert gone == {"t0.arena"}   # 1200 -> 800 bytes

    def test_apply_deletes_plan_and_spares_the_rest(self, tmp_path):
        fp_old, fp_new = self.seed_cache(tmp_path)
        plan = run_gc.plan_gc(tmp_path, now=NOW)
        removed, freed = plan.apply()
        assert removed == 3 and freed == plan.freed_bytes()
        assert not (tmp_path / "checkpoints" / fp_old).exists()
        assert not (tmp_path / "traces" / "t1.arena").exists()
        assert (tmp_path / "checkpoints" / fp_new).exists()
        assert (tmp_path / "quarantine" / "bad.json").exists()

    def test_format_plan_mentions_categories_and_reasons(self, tmp_path):
        self.seed_cache(tmp_path)
        plan = run_gc.plan_gc(tmp_path, now=NOW)
        text = plan.format_plan(verbose=True)
        assert "gc plan: 3 evictions" in text
        assert "checkpoints" in text and "arenas" in text
        assert "older than 7.0d" in text

    def test_empty_cache_dir_plans_nothing(self, tmp_path):
        plan = run_gc.plan_gc(tmp_path / "missing", now=NOW)
        assert plan.items == [] and plan.evictions == []
        assert "0 evictions" in plan.format_plan()


# ---------------------------------------------------------------------------
# Lint rule R008
# ---------------------------------------------------------------------------

class TestLintR008:
    def lint(self, tmp_path, body):
        from repro.check.lint import lint_file
        target = tmp_path / "run" / "fabric" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text(body)
        return [v for v in lint_file(str(target)) if v.code == "R008"]

    def test_unbounded_recv_in_fabric_is_flagged(self, tmp_path):
        hits = self.lint(tmp_path, (
            "def wait(sock):\n"
            "    return sock.recv(4)\n"))
        assert len(hits) == 1 and "settimeout" in hits[0].message

    def test_armed_timeout_suppresses_the_rule(self, tmp_path):
        assert self.lint(tmp_path, (
            "def wait(sock):\n"
            "    sock.settimeout(5.0)\n"
            "    return sock.recv(4)\n")) == []

    def test_rule_only_applies_under_run_fabric(self, tmp_path):
        from repro.check.lint import lint_file
        target = tmp_path / "elsewhere.py"
        target.write_text("def wait(sock):\n    return sock.recv(4)\n")
        assert [v for v in lint_file(str(target))
                if v.code == "R008"] == []

    def test_rule_is_registered_and_explained(self):
        from repro.check.lint import RULES, explain_rule
        assert "R008" in RULES
        assert "settimeout" in explain_rule("R008")

    def test_seeded_violation_is_detected(self):
        from repro.check.lint.selftest import run_static_mutation
        detail = run_static_mutation("fabric-socket-no-timeout")
        assert detail.startswith("R008 fired")
