"""Tests for semantic-op assembly: PC assignment, branch insertion, and
dependence-tag resolution."""

import random

from repro.trace.codewalk import CodeWalker
from repro.trace.emitter import (
    MAX_DEP_DISTANCE,
    SemanticHelpers,
    SemanticOp,
    assemble,
)
from repro.trace.instr import OP_BRANCH, OP_INT, OP_LOAD, OP_STORE


class Helper(SemanticHelpers):
    def __init__(self, seed=0):
        super().__init__(random.Random(seed))


def assemble_ops(sops, seed=0):
    rng = random.Random(seed)
    w = CodeWalker(0x100000, 32 * 1024, rng)
    return list(assemble(iter(sops), w, rng))


class TestAssembly:
    def test_branches_inserted(self):
        h = Helper()
        sops = [h.alu()[0] for _ in range(100)]
        out = assemble_ops(sops)
        branches = [i for i in out if i.op == OP_BRANCH]
        assert branches
        # Semantic ops preserved in order.
        assert sum(1 for i in out if i.op == OP_INT) == 100

    def test_non_branch_pcs_advance_sequentially(self):
        h = Helper()
        out = assemble_ops([h.alu()[0] for _ in range(50)])
        for a, b in zip(out, out[1:]):
            if a.op != OP_BRANCH and b.op != OP_BRANCH:
                assert b.pc == a.pc + 4

    def test_fixed_pc_respected(self):
        h = Helper()
        sops = [h.alu()[0] for _ in range(10)]
        fixed = h.store(0x5000, fixed_pc=0x77777770)
        sops.append(fixed)
        out = assemble_ops(sops)
        stores = [i for i in out if i.op == OP_STORE]
        assert stores[0].pc == 0x77777770

    def test_fixed_pc_does_not_trigger_branch_insertion(self):
        h = Helper()
        sops = [h.simple(OP_INT, fixed_pc=0x1000 + 4 * i)
                for i in range(64)]
        out = assemble_ops(sops)
        assert all(i.op != OP_BRANCH for i in out)


class TestDependences:
    def test_dependence_distance_resolved(self):
        h = Helper()
        producer, tag = h.load(0x9000)
        consumer, _ = h.alu(dep_tags=(tag,))
        out = assemble_ops([producer, consumer])
        loads = [(idx, i) for idx, i in enumerate(out) if i.op == OP_LOAD]
        ints = [(idx, i) for idx, i in enumerate(out) if i.op == OP_INT]
        (load_idx, _), (int_idx, instr) = loads[0], ints[0]
        assert instr.deps == (int_idx - load_idx,)

    def test_inserted_branches_shift_distances(self):
        """Distances account for assembler-inserted branch instructions."""
        h = Helper()
        sops = []
        producer, tag = h.load(0x9000)
        sops.append(producer)
        sops.extend(h.alu()[0] for _ in range(20))
        consumer, _ = h.alu(dep_tags=(tag,))
        sops.append(consumer)
        out = assemble_ops(sops)
        load_idx = next(i for i, x in enumerate(out) if x.op == OP_LOAD)
        consumer_idx = len(out) - 1
        while out[consumer_idx].op == OP_BRANCH:
            consumer_idx -= 1
        assert out[consumer_idx].deps == (consumer_idx - load_idx,)
        # More dynamic instructions than semantic ops -> branches counted.
        assert len(out) > len(sops)

    def test_faraway_dependences_dropped(self):
        h = Helper()
        producer, tag = h.load(0x9000)
        sops = [producer]
        sops.extend(h.alu()[0] for _ in range(MAX_DEP_DISTANCE + 50))
        consumer, _ = h.alu(dep_tags=(tag,))
        sops.append(consumer)
        out = assemble_ops(sops)
        assert out[-1].deps == () or max(out[-1].deps) <= MAX_DEP_DISTANCE

    def test_unknown_tag_ignored(self):
        h = Helper()
        op = SemanticOp(OP_INT, dep_tags=(99999,))
        out = assemble_ops([op])
        assert all(i.deps == () for i in out)

    def test_deps_always_positive_and_bounded(self):
        h = Helper()
        tags = []
        sops = []
        rng = random.Random(5)
        for _ in range(500):
            dep = (rng.choice(tags),) if tags and rng.random() < 0.5 else ()
            op, tag = h.alu(dep_tags=dep)
            sops.append(op)
            tags.append(tag)
            tags = tags[-8:]
        out = assemble_ops(sops)
        for instr in out:
            for d in instr.deps:
                assert 0 < d <= MAX_DEP_DISTANCE


class TestHelpers:
    def test_alu_latencies(self):
        h = Helper()
        int_op, _ = h.alu()
        fp_op, _ = h.alu(fp=True)
        assert int_op.latency == 1
        assert fp_op.latency == 3

    def test_tags_unique(self):
        h = Helper()
        _, t1 = h.alu()
        _, t2 = h.load(0x100)
        assert t1 != t2

    def test_store_has_no_tag(self):
        h = Helper()
        assert h.store(0x100).tag is None
