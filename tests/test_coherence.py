"""Tests for the MESI directory protocol, including migratory detection
and the flush (sharing-writeback) primitive of paper section 4.2."""

import pytest

from repro.mem.coherence import (
    DIR_EXCLUSIVE,
    DIR_INVALID,
    DIR_SHARED,
    SVC_DIRTY,
    SVC_LOCAL,
    SVC_REMOTE,
    CoherentMemory,
)
from repro.mem.interconnect import MeshNetwork
from repro.params import MemoryLatencies


def make_memory(n_nodes=4, speedup=0.0):
    mesh = MeshNetwork(n_nodes, mesh_width=2 if n_nodes > 1 else 1)
    mem = CoherentMemory(MemoryLatencies(), mesh,
                         migratory_read_speedup=speedup)
    invalidated = [[] for _ in range(n_nodes)]
    for i in range(n_nodes):
        mem.invalidate_hooks[i] = invalidated[i].append
    return mem, invalidated


LINE_LOCAL_0 = 0        # page 0 -> home node 0
LINE_LOCAL_1 = 128      # page 1 -> home node 1


class TestReadProtocol:
    def test_first_read_granted_exclusive_clean(self):
        mem, _ = make_memory()
        done, svc, excl = mem.read(0, LINE_LOCAL_0, now=0)
        assert excl
        assert svc == SVC_LOCAL
        entry = mem.entry(LINE_LOCAL_0)
        assert entry.state == DIR_EXCLUSIVE
        assert entry.owner == 0

    def test_local_vs_remote_latency(self):
        mem, _ = make_memory()
        done_local, svc_local, _ = mem.read(0, LINE_LOCAL_0, now=0)
        done_remote, svc_remote, _ = mem.read(1, LINE_LOCAL_1 + 256 * 128,
                                              now=0)
        # node 1 reading a line whose home is node 0 (frame 256 % 4 == 0).
        assert svc_local == SVC_LOCAL
        assert done_local - 0 >= 100

    def test_remote_read_in_paper_range(self):
        mem, _ = make_memory()
        # line in page 1 -> home node 1, read from node 0 (1 hop).
        done, svc, _ = mem.read(0, LINE_LOCAL_1, now=0)
        assert svc == SVC_REMOTE
        assert 160 <= done <= 195

    def test_second_reader_shares_clean_line(self):
        mem, _ = make_memory()
        mem.read(0, LINE_LOCAL_0, 0)           # E at node 0 (clean)
        mem.dirty_hooks[0] = lambda line: False
        done, svc, excl = mem.read(1, LINE_LOCAL_0, 0)
        assert not excl
        assert svc in (SVC_LOCAL, SVC_REMOTE)  # memory supplies clean data
        entry = mem.entry(LINE_LOCAL_0)
        assert entry.state == DIR_SHARED
        assert entry.sharers == {0, 1}

    def test_dirty_read_is_cache_to_cache(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)          # M at node 0
        mem.dirty_hooks[0] = lambda line: True
        done, svc, _ = mem.read(1, LINE_LOCAL_0, now=1000)
        assert svc == SVC_DIRTY
        assert 280 <= done - 1000 <= 320       # paper: 280-310 + queueing
        assert mem.entry(LINE_LOCAL_0).state == DIR_SHARED

    def test_dirty_read_counts(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.read(1, LINE_LOCAL_0, 0)
        assert mem.stats.reads_dirty == 1


class TestWriteProtocol:
    def test_write_to_uncached_line(self):
        mem, _ = make_memory()
        done, svc = mem.write(0, LINE_LOCAL_0, 0)
        entry = mem.entry(LINE_LOCAL_0)
        assert entry.state == DIR_EXCLUSIVE
        assert entry.owner == 0
        assert entry.last_writer == 0

    def test_write_invalidates_sharers(self):
        mem, invalidated = make_memory()
        mem.read(0, LINE_LOCAL_0, 0)
        mem.dirty_hooks[0] = lambda line: False
        mem.read(1, LINE_LOCAL_0, 0)
        mem.read(2, LINE_LOCAL_0, 0)
        mem.write(3, LINE_LOCAL_0, 0)
        assert LINE_LOCAL_0 in invalidated[0]
        assert LINE_LOCAL_0 in invalidated[1]
        assert LINE_LOCAL_0 in invalidated[2]
        assert mem.entry(LINE_LOCAL_0).owner == 3

    def test_upgrade_from_sharer(self):
        mem, invalidated = make_memory()
        mem.read(0, LINE_LOCAL_0, 0)
        mem.dirty_hooks[0] = lambda line: False
        mem.read(1, LINE_LOCAL_0, 0)
        mem.write(1, LINE_LOCAL_0, 0)
        assert mem.stats.upgrades == 1
        assert LINE_LOCAL_0 in invalidated[0]
        assert LINE_LOCAL_0 not in invalidated[1]

    def test_write_to_dirty_remote_line(self):
        mem, invalidated = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.dirty_hooks[0] = lambda line: True
        done, svc = mem.write(1, LINE_LOCAL_0, 0)
        assert svc == SVC_DIRTY
        assert LINE_LOCAL_0 in invalidated[0]


class TestMigratoryDetection:
    """Paper footnote 2: mark migratory when a GETX arrives while exactly
    two nodes hold copies and the last writer is not the requester."""

    def _migrate_once(self, mem, frm, to, line):
        mem.dirty_hooks[frm] = lambda l: True
        mem.read(to, line, 0)      # dirty read: SHARED {frm, to}
        mem.write(to, line, 0)     # GETX with 2 copies, last_writer=frm

    def test_migratory_pattern_detected(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        self._migrate_once(mem, 0, 1, LINE_LOCAL_0)
        assert mem.entry(LINE_LOCAL_0).migratory
        assert LINE_LOCAL_0 in mem.stats.migratory_lines

    def test_migratory_dirty_reads_counted(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        self._migrate_once(mem, 0, 1, LINE_LOCAL_0)
        self._migrate_once(mem, 1, 2, LINE_LOCAL_0)
        assert mem.stats.migratory_dirty_reads >= 1

    def test_widely_shared_line_not_migratory(self):
        mem, _ = make_memory()
        mem.read(0, LINE_LOCAL_0, 0)
        for node in range(4):
            mem.dirty_hooks[node] = lambda l: False
        mem.read(1, LINE_LOCAL_0, 0)
        mem.read(2, LINE_LOCAL_0, 0)
        mem.read(3, LINE_LOCAL_0, 0)
        mem.write(3, LINE_LOCAL_0, 0)   # 4 copies: not migratory
        assert not mem.entry(LINE_LOCAL_0).migratory

    def test_same_writer_not_migratory(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.dirty_hooks[0] = lambda l: True
        mem.read(1, LINE_LOCAL_0, 0)    # SHARED {0, 1}
        mem.write(0, LINE_LOCAL_0, 0)   # last writer == requester
        assert not mem.entry(LINE_LOCAL_0).migratory

    def test_migratory_read_speedup_bound(self):
        """Figure 7(b) bound: migratory dirty reads ~40% faster."""
        slow, _ = make_memory()
        fast, _ = make_memory(speedup=0.4)
        for mem in (slow, fast):
            mem.write(0, LINE_LOCAL_0, 0)
            mem.dirty_hooks[0] = lambda l: True
            mem.read(1, LINE_LOCAL_0, 0)
            mem.write(1, LINE_LOCAL_0, 0)   # now migratory
            mem.dirty_hooks[1] = lambda l: True
        t_slow, svc, _ = slow.read(2, LINE_LOCAL_0, 10_000)
        t_fast, svc2, _ = fast.read(2, LINE_LOCAL_0, 10_000)
        assert svc == svc2 == SVC_DIRTY
        assert (t_fast - 10_000) == pytest.approx(
            0.6 * (t_slow - 10_000), rel=0.05)


class TestFlushPrimitive:
    """Section 4.2's flush / WriteThrough: sharing writeback that keeps a
    clean copy cached so later readers are serviced by memory."""

    def test_flush_demotes_owner_to_shared(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.flush(0, LINE_LOCAL_0, 0)
        entry = mem.entry(LINE_LOCAL_0)
        assert entry.state == DIR_SHARED
        assert entry.sharers == {0}
        assert mem.stats.flushes == 1

    def test_read_after_flush_serviced_by_memory(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.flush(0, LINE_LOCAL_0, 0)
        done, svc, _ = mem.read(1, LINE_LOCAL_0, 1000)
        assert svc in (SVC_LOCAL, SVC_REMOTE)  # not a cache-to-cache miss

    def test_flush_by_non_owner_ignored(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.flush(1, LINE_LOCAL_0, 0)
        assert mem.entry(LINE_LOCAL_0).state == DIR_EXCLUSIVE
        assert mem.stats.flushes == 0

    def test_flush_of_unowned_line_ignored(self):
        mem, _ = make_memory()
        mem.flush(0, LINE_LOCAL_0, 0)
        assert mem.stats.flushes == 0


class TestWritebackAndEviction:
    def test_writeback_uncaches_line(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.writeback(0, LINE_LOCAL_0, 0)
        assert mem.entry(LINE_LOCAL_0).state == DIR_INVALID
        assert mem.stats.writebacks == 1

    def test_writeback_by_non_owner_ignored(self):
        mem, _ = make_memory()
        mem.write(0, LINE_LOCAL_0, 0)
        mem.writeback(1, LINE_LOCAL_0, 0)
        assert mem.entry(LINE_LOCAL_0).state == DIR_EXCLUSIVE

    def test_evict_clean_removes_sharer(self):
        mem, _ = make_memory()
        mem.read(0, LINE_LOCAL_0, 0)
        mem.dirty_hooks[0] = lambda l: False
        mem.read(1, LINE_LOCAL_0, 0)
        mem.evict_clean(0, LINE_LOCAL_0)
        assert mem.entry(LINE_LOCAL_0).sharers == {1}
        mem.evict_clean(1, LINE_LOCAL_0)
        assert mem.entry(LINE_LOCAL_0).state == DIR_INVALID


class TestContention:
    def test_directory_occupancy_queues_requests(self):
        mem, _ = make_memory()
        # Two same-cycle requests from one node to two lines with the same
        # home queue behind each other at the home directory and memory.
        other_line_home_0 = 4 * 128  # page 4 -> home node 0
        t1, svc1, _ = mem.read(1, LINE_LOCAL_0, 0)
        t2, svc2, _ = mem.read(1, other_line_home_0, 0)
        assert svc1 == svc2 == SVC_REMOTE
        assert t2 > t1
