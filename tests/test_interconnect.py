"""Tests for the 2D mesh interconnect model."""

import pytest

from repro.mem.interconnect import MeshNetwork


class TestMeshNetwork:
    def test_hop_distances_2x2(self):
        mesh = MeshNetwork(4, mesh_width=2)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 1) == 1
        assert mesh.hops(0, 2) == 1
        assert mesh.hops(0, 3) == 2
        assert mesh.hops(1, 2) == 2

    def test_hops_symmetric(self):
        mesh = MeshNetwork(4, mesh_width=2)
        for a in range(4):
            for b in range(4):
                assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_uniprocessor(self):
        mesh = MeshNetwork(1, mesh_width=1)
        assert mesh.hops(0, 0) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MeshNetwork(3, mesh_width=2)

    def test_inject_queues_at_interface(self):
        mesh = MeshNetwork(4, ni_occupancy=4)
        t0 = mesh.inject(0, now=100)
        t1 = mesh.inject(0, now=100)
        t2 = mesh.inject(0, now=100)
        assert t0 == 100
        assert t1 == 104
        assert t2 == 108

    def test_inject_independent_per_node(self):
        mesh = MeshNetwork(4, ni_occupancy=4)
        mesh.inject(0, 100)
        assert mesh.inject(1, 100) == 100

    def test_inject_after_idle_is_immediate(self):
        mesh = MeshNetwork(4, ni_occupancy=4)
        mesh.inject(0, 0)
        assert mesh.inject(0, 1000) == 1000

    def test_message_count(self):
        mesh = MeshNetwork(4)
        mesh.inject(0, 0)
        mesh.inject(1, 0)
        assert mesh.messages == 2

    def test_reset_contention(self):
        mesh = MeshNetwork(4, ni_occupancy=10)
        mesh.inject(0, 0)
        mesh.reset_contention()
        assert mesh.inject(0, 0) == 0
