"""Tests for the AST determinism linter (``repro lint``)."""

import os

import pytest

from repro.check.lint import (
    RULES,
    _FileLinter,
    default_lint_root,
    iter_python_files,
    lint_paths,
    run_lint,
)


def lint_source(source: str):
    return _FileLinter("<test>", source).run()


def codes(source: str):
    return [v.code for v in lint_source(source)]


class TestR001Random:
    def test_module_level_call(self):
        assert codes("import random\nx = random.randint(0, 5)\n") == ["R001"]

    def test_unseeded_random_instance(self):
        assert codes("import random\nrng = random.Random()\n") == ["R001"]

    def test_seeded_instance_is_clean(self):
        assert codes("import random\n"
                     "rng = random.Random(42)\n"
                     "value = rng.random()\n") == []

    def test_from_import(self):
        assert codes("from random import shuffle\nshuffle([1])\n") == ["R001"]

    def test_import_alias(self):
        assert codes("import random as rnd\nx = rnd.random()\n") == ["R001"]


class TestR002WallClock:
    def test_perf_counter(self):
        assert codes("import time\nt = time.perf_counter()\n") == ["R002"]

    def test_from_import_monotonic(self):
        assert codes("from time import monotonic\nt = monotonic()\n") == \
            ["R002"]

    def test_datetime_now(self):
        assert codes("from datetime import datetime\n"
                     "d = datetime.now()\n") == ["R002"]

    def test_time_sleep_is_clean(self):
        assert codes("import time\ntime.sleep(0)\n") == []


class TestR003SetIteration:
    def test_for_loop_over_set(self):
        assert codes("s = {1, 2}\nfor x in s:\n    pass\n") == ["R003"]

    def test_comprehension_over_set(self):
        assert codes("s = set()\nout = [x for x in s]\n") == ["R003"]

    def test_list_of_set(self):
        assert codes("s = {1}\nout = list(s)\n") == ["R003"]

    def test_set_difference_via_attribute(self):
        source = (
            "class A:\n"
            "    def __init__(self):\n"
            "        self.sharers: set = set()\n"
            "    def go(self, entry, node):\n"
            "        for s in entry.sharers - {node}:\n"
            "            pass\n")
        assert codes(source) == ["R003"]

    def test_sorted_wrapping_is_clean(self):
        assert codes("s = {1}\nfor x in sorted(s):\n    pass\n") == []

    def test_membership_and_len_are_clean(self):
        assert codes("s = {1}\nok = 1 in s\nn = len(s)\n") == []


class TestR004CycleDivision:
    def test_division_into_cycle_name(self):
        assert codes("done_at = x / y\n") == ["R004"]

    def test_division_into_now(self):
        assert codes("now = 0\nnow = now + total / 3\n") == ["R004"]

    def test_augmented_division(self):
        assert codes("latency = 4\nlatency /= 2\n") == ["R004"]

    def test_int_wrap_is_clean(self):
        assert codes("done_at = int(x / y)\n") == []

    def test_floor_division_is_clean(self):
        assert codes("cycles = a // b\n") == []

    def test_non_cycle_name_is_clean(self):
        assert codes("fraction = hits / total\n") == []


class TestR005SpecFields:
    def test_foreign_type_flagged(self):
        source = ("class JobSpec:\n"
                  "    instructions: int\n"
                  "    machine: Machine\n")
        violations = lint_source(source)
        assert [v.code for v in violations] == ["R005"]
        assert "Machine" in violations[0].message

    def test_allowed_types_clean(self):
        source = ("class WorkloadSpec:\n"
                  "    kind: str\n"
                  "    hints: MigratoryHints\n"
                  "    extra: Optional[Dict[str, float]]\n")
        assert codes(source) == []

    def test_other_classes_ignored(self):
        assert codes("class Anything:\n    machine: Machine\n") == []


class TestPragmaEdgeCases:
    """Lock in the pragma grammar the package refactor must preserve."""

    def test_multi_code_pragma_suppresses_both(self, tmp_path):
        # A hot-module tick body where one line trips R004 (division
        # into a cycle name) and R006 (list literal on the tick path).
        path = tmp_path / "cpu" / "core.py"
        path.parent.mkdir(parents=True)
        path.write_text("def tick(self):\n"
                        "    done_at = [a / b]  "
                        "# repro-lint: disable=R004,R006\n")
        violations, _ = lint_paths([str(path)])
        assert violations == []

    def test_multi_code_pragma_leaves_unlisted_codes(self, tmp_path):
        path = tmp_path / "cpu" / "core.py"
        path.parent.mkdir(parents=True)
        path.write_text("def tick(self):\n"
                        "    done_at = [a / b]  "
                        "# repro-lint: disable=R006\n")
        violations, _ = lint_paths([str(path)])
        assert [v.code for v in violations] == ["R004"]

    def test_multi_code_pragma_tolerates_spaces(self):
        assert codes("import time\n"
                     "t = time.perf_counter()  "
                     "# repro-lint: disable=R001, R002\n") == []

    def test_disable_file_before_the_violation(self):
        assert codes("# repro-lint: disable-file=R003\n"
                     "s = {1}\nfor x in s:\n    pass\n") == []

    def test_disable_file_after_the_violation(self):
        assert codes("s = {1}\nfor x in s:\n    pass\n"
                     "# repro-lint: disable-file=R003\n") == []

    def test_disable_file_multi_code(self):
        assert codes("import time\n"
                     "s = {1}\n"
                     "for x in s:\n"
                     "    t = time.perf_counter()\n"
                     "# repro-lint: disable-file=R002,R003\n") == []

    def test_pragma_on_parenthesized_continuation_line(self):
        # The Assign node spans all three lines; a pragma on any line in
        # the node's range suppresses it.
        assert codes("import time\n"
                     "t = (\n"
                     "    time.perf_counter()  "
                     "# repro-lint: disable=R002\n"
                     ")\n") == []

    def test_pragma_on_backslash_continuation_line(self):
        assert codes("done = a / \\\n"
                     "    b  # repro-lint: disable=R004\n") == []

    def test_pragma_anchors_to_the_violating_node_not_the_statement(self):
        # Suppression ranges over the *reported* node (here the Call on
        # line 3), not the whole enclosing statement: a pragma on the
        # statement's opening line does not reach it.  Put the pragma on
        # the line of the flagged expression.
        assert codes("import time\n"
                     "t = (  # repro-lint: disable=R002\n"
                     "    time.perf_counter()\n"
                     ")\n") == ["R002"]

    def test_pragma_outside_node_range_does_not_hide(self):
        assert codes("import time\n"
                     "# repro-lint: disable=R002\n"
                     "t = time.perf_counter()\n") == ["R002"]


class TestSuppressions:
    def test_line_pragma(self):
        assert codes("import time\n"
                     "t = time.perf_counter()  "
                     "# repro-lint: disable=R002\n") == []

    def test_line_pragma_wrong_code_does_not_hide(self):
        assert codes("import time\n"
                     "t = time.perf_counter()  "
                     "# repro-lint: disable=R001\n") == ["R002"]

    def test_file_pragma(self):
        assert codes("# repro-lint: disable-file=R003\n"
                     "s = {1}\nfor x in s:\n    pass\n") == []

    def test_disable_all(self):
        assert codes("import time\n"
                     "t = time.perf_counter()  "
                     "# repro-lint: disable=all\n") == []


class TestDriver:
    def test_repro_package_is_clean(self):
        violations, checked = lint_paths([default_lint_root()])
        assert checked > 40
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_file_order_is_deterministic(self):
        root = default_lint_root()
        first = list(iter_python_files([root]))
        second = list(iter_python_files([root]))
        assert first == second
        # within each directory the filenames come out sorted
        assert first.index(root + os.sep + "cli.py") < \
            first.index(root + os.sep + "params.py")

    def test_run_lint_counts(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert run_lint([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "bad.py" in out

    def test_violation_format(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("done = a / b\n")
        violations, _ = lint_paths([str(bad)])
        text = str(violations[0])
        assert text.startswith(str(bad) + ":1: R004")

    def test_rule_catalog(self):
        assert set(RULES) == {"R001", "R002", "R003", "R004", "R005",
                              "R006", "R007", "R008", "R009",
                              "R010", "R011", "R012", "R013"}


class TestR006HotPathAllocation:
    HOT = "cpu/core.py"

    def _codes(self, source, name="cpu/core.py", tmp_path=None):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        violations, _ = lint_paths([str(path)])
        return [v.code for v in violations]

    def test_list_in_tick_flagged(self, tmp_path):
        src = "def tick(self):\n    return [1, 2]\n"
        assert self._codes(src, tmp_path=tmp_path) == ["R006"]

    def test_dict_in_loop_flagged(self, tmp_path):
        src = ("def refill(self):\n"
               "    for i in range(4):\n"
               "        d = {'k': i}\n")
        assert self._codes(src, "mem/cache.py", tmp_path) == ["R006"]

    def test_comprehension_in_while_flagged(self, tmp_path):
        src = ("def drain(self):\n"
               "    while self.busy:\n"
               "        xs = [x for x in self.q]\n")
        assert self._codes(src, tmp_path=tmp_path) == ["R006"]

    def test_pragma_escape(self, tmp_path):
        src = ("def tick(self):\n"
               "    return [1]  # repro-lint: disable=R006\n")
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_cold_functions_exempt(self, tmp_path):
        src = ("def reset_stats(self):\n"
               "    for i in range(4):\n"
               "        y = [i]\n"
               "def __init__(self):\n"
               "    for i in range(4):\n"
               "        z = {i: 1}\n")
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_allocation_outside_loop_quiet(self, tmp_path):
        src = "def lookup(self):\n    return [1, 2]\n"
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_non_hot_module_quiet(self, tmp_path):
        src = "def tick(self):\n    return [1, 2]\n"
        assert self._codes(src, "stats/other.py", tmp_path) == []


class TestR007FastLoopLookups:
    """Membership tests and attribute chains in _run_fast loops."""

    def _codes(self, source, name="system/machine.py", tmp_path=None):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        violations, _ = lint_paths([str(path)])
        return [v.code for v in violations]

    def test_membership_in_fast_loop_flagged(self, tmp_path):
        src = ("def _run_fast(self):\n"
               "    while True:\n"
               "        if now in self.pending:\n"
               "            break\n")
        assert self._codes(src, tmp_path=tmp_path) == ["R007"]

    def test_attribute_chain_in_fast_loop_flagged(self, tmp_path):
        src = ("def _run_fast(self):\n"
               "    for cpu in cpus:\n"
               "        w = self.params.backend\n")
        assert self._codes(src, tmp_path=tmp_path) == ["R007"]

    def test_single_attribute_quiet(self, tmp_path):
        src = ("def _run_fast(self):\n"
               "    while True:\n"
               "        w = core.retired\n")
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_outside_loop_quiet(self, tmp_path):
        src = ("def _run_fast(self):\n"
               "    ping = self.memory._ping\n"
               "    ok = 0 in seen\n")
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_reference_loop_exempt(self, tmp_path):
        src = ("def run(self):\n"
               "    while True:\n"
               "        if now in self.pending:\n"
               "            w = self.params.backend\n")
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_other_module_exempt(self, tmp_path):
        src = ("def _run_fast(self):\n"
               "    while True:\n"
               "        w = self.params.backend\n")
        # R007 only applies to system/machine.py; the ephemeral read
        # still (correctly) trips the R011 contract pass.
        assert self._codes(src, "cpu/smt.py", tmp_path) == ["R011"]

    def test_pragma_escape(self, tmp_path):
        src = ("def _run_fast(self):\n"
               "    while True:\n"
               "        ok = now in seen  "
               "# repro-lint: disable=R007\n"
               "        break\n")
        assert self._codes(src, tmp_path=tmp_path) == []

    def test_batch_loop_covered(self, tmp_path):
        src = ("def _run_batch(self):\n"
               "    while True:\n"
               "        if now in self.pending:\n"
               "            break\n")
        assert self._codes(src, tmp_path=tmp_path) == ["R007"]


class TestR009NumpyConfinement:
    """numpy imports stay inside the batch backend's scan kernels."""

    def _codes(self, source, name, tmp_path):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        violations, _ = lint_paths([str(path)])
        return [v.code for v in violations]

    def test_import_outside_batch_flagged(self, tmp_path):
        assert self._codes("import numpy as np\n",
                           "cpu/core.py", tmp_path) == ["R009"]

    def test_from_import_flagged(self, tmp_path):
        assert self._codes("from numpy import frombuffer\n",
                           "mem/cache.py", tmp_path) == ["R009"]

    def test_submodule_import_flagged(self, tmp_path):
        assert self._codes("import numpy.linalg\n",
                           "stats/breakdown.py", tmp_path) == ["R009"]

    def test_batch_module_exempt(self, tmp_path):
        assert self._codes("import numpy as np\n",
                           "cpu/batch.py", tmp_path) == []

    def test_lookalike_module_quiet(self, tmp_path):
        assert self._codes("import numpyish\n",
                           "cpu/core.py", tmp_path) == []
