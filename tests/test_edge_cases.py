"""Edge-case tests across modules."""

import random

import pytest

from repro.mem.coherence import CoherentMemory
from repro.mem.interconnect import MeshNetwork
from repro.mem.memsys import NodeMemorySystem
from repro.mem.tlb import PageTable
from repro.params import MemoryLatencies, default_system
from repro.stats.mshr import MshrOccupancy, MshrOccupancyGroup
from repro.trace.codewalk import CodeWalker


class TestMshrOccupancyGroup:
    def test_busy_weighted_average(self):
        group = MshrOccupancyGroup(2, max_n=4)
        # Cache 0: 100 cycles at occupancy 1.
        group[0].add_interval(0, 100, True)
        # Cache 1: 300 cycles at occupancy 2.
        group[1].add_interval(0, 300, True)
        group[1].add_interval(0, 300, True)
        dist = group.distribution()
        assert dist[1] == pytest.approx(1.0)
        # >=2 holds on cache 1's 300 of 400 busy cycles.
        assert dist[2] == pytest.approx(300 / 400)

    def test_empty_group(self):
        group = MshrOccupancyGroup(3)
        assert all(v == 0.0 for v in group.distribution().values())

    def test_reset(self):
        group = MshrOccupancyGroup(1)
        group[0].add_interval(0, 10, True)
        group.reset()
        assert group.distribution()[1] == 0.0


class TestCodeWalkerEdges:
    def test_enter_phase_wraps(self):
        w = CodeWalker(0x100000, 16 * 1024, random.Random(0))
        w.enter_phase(0, 8)
        first = w.pc
        w.enter_phase(8, 8)  # same slot modulo n_phases
        assert w.pc == first
        w.enter_phase(123456, 8)  # any index is safe
        assert 0x100000 <= w.pc < 0x100000 + 16 * 1024 + 4096

    def test_block_len_bounds_inclusive(self):
        w = CodeWalker(0x100000, 4096, random.Random(0))
        lengths = {w.block_len_at(0x100000 + 4 * i, 3, 6)
                   for i in range(2000)}
        assert lengths <= {3, 4, 5, 6}
        assert len(lengths) > 1


class TestNodeMemorySystemEdges:
    def _node(self):
        params = default_system()
        pt = PageTable(params.page_size, 4)
        mem = CoherentMemory(params.latencies, MeshNetwork(4, 2), 128)
        return NodeMemorySystem(0, params, pt, mem), mem

    def test_flush_line_dirty_only_in_l1(self):
        """A line dirty in L1 (not yet written back to L2) still flushes
        correctly: node-level dirtiness is the union of both levels."""
        node, mem = self._node()
        vaddr = 0x1000_0000
        w = node.access_data(0, vaddr, is_write=True)
        line = node.page_table.translate_line(vaddr)
        assert node.l1d.is_dirty(line)
        assert node.line_dirty(line)
        node.flush_line(w.done_at + 1, vaddr)
        assert mem.stats.flushes == 1
        assert not node.line_dirty(line)

    def test_prefetch_dropped_when_mshrs_full(self):
        import dataclasses
        params = default_system()
        params = params.replace(
            l1d=dataclasses.replace(params.l1d, mshrs=1))
        pt = PageTable(params.page_size, 4)
        mem = CoherentMemory(params.latencies, MeshNetwork(4, 2), 128)
        node = NodeMemorySystem(0, params, pt, mem)
        node.access_data(0, 0x1000_0000, False)   # occupies the MSHR
        before = node.l1d_mshrs.outstanding()
        node.prefetch_data(1, 0x2000_0000)
        assert node.l1d_mshrs.outstanding() == before  # dropped

    def test_prefetch_of_resident_writable_line_noop(self):
        node, mem = self._node()
        vaddr = 0x1000_0000
        w = node.access_data(0, vaddr, is_write=True)
        reads_before = mem.stats.reads_local + mem.stats.reads_remote
        writes_before = (mem.stats.writes_local + mem.stats.writes_remote
                         + mem.stats.writes_dirty + mem.stats.upgrades)
        node.prefetch_data(w.done_at + 1, vaddr, exclusive=True)
        after = (mem.stats.writes_local + mem.stats.writes_remote
                 + mem.stats.writes_dirty + mem.stats.upgrades)
        assert after == writes_before  # no new directory traffic

    def test_itlb_miss_penalty_applies(self):
        node, _ = self._node()
        pc = 0x0100_0000
        ready_cold, _ = node.access_instr(0, pc)
        assert node.itlb.misses >= 1
        assert ready_cold >= node.params.itlb.miss_latency


class TestMeshEdges:
    def test_single_node_mesh_width_forced(self):
        mesh = MeshNetwork(1, mesh_width=2)
        assert mesh.hops(0, 0) == 0

    def test_latencies_frozen(self):
        lat = MemoryLatencies()
        with pytest.raises(Exception):
            lat.local_read = 5
