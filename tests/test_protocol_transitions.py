"""Systematic MESI directory transition table tests.

Enumerates (initial directory state, requester relationship, operation)
combinations and checks the resulting state, service class, invalidation
behaviour, and statistics -- the protocol's contract in one place.
"""

import pytest

from repro.mem.coherence import (
    DIR_EXCLUSIVE,
    DIR_INVALID,
    DIR_SHARED,
    SVC_DIRTY,
    SVC_LOCAL,
    SVC_REMOTE,
    CoherentMemory,
)
from repro.mem.interconnect import MeshNetwork
from repro.params import MemoryLatencies

LINE = 0  # home node 0


class Harness:
    def __init__(self, owner_dirty=True):
        self.mem = CoherentMemory(MemoryLatencies(), MeshNetwork(4, 2))
        self.invalidated = [[] for _ in range(4)]
        for i in range(4):
            self.mem.invalidate_hooks[i] = self.invalidated[i].append
            self.mem.dirty_hooks[i] = (lambda line, d=owner_dirty: d)

    # state builders -------------------------------------------------------
    def make_invalid(self):
        pass

    def make_exclusive(self, owner=0):
        self.mem.write(owner, LINE, 0)

    def make_shared(self, sharers=(0, 1)):
        self.mem.write(sharers[0], LINE, 0)
        entry = self.mem.entry(LINE)
        entry.state = DIR_SHARED
        entry.owner = -1
        entry.sharers = set(sharers)


class TestReadTransitions:
    def test_invalid_read_grants_e(self):
        h = Harness()
        done, svc, excl = h.mem.read(2, LINE, 10)
        assert excl
        entry = h.mem.entry(LINE)
        assert (entry.state, entry.owner) == (DIR_EXCLUSIVE, 2)
        assert svc in (SVC_LOCAL, SVC_REMOTE)

    def test_shared_read_adds_sharer(self):
        h = Harness()
        h.make_shared((0, 1))
        done, svc, excl = h.mem.read(2, LINE, 10)
        assert not excl
        assert h.mem.entry(LINE).sharers == {0, 1, 2}
        assert h.mem.entry(LINE).state == DIR_SHARED

    def test_exclusive_dirty_read_c2c_demotes(self):
        h = Harness(owner_dirty=True)
        h.make_exclusive(owner=1)
        done, svc, excl = h.mem.read(2, LINE, 10)
        assert svc == SVC_DIRTY
        entry = h.mem.entry(LINE)
        assert entry.state == DIR_SHARED
        assert entry.sharers == {1, 2}
        assert not h.invalidated[1]  # owner keeps a (now shared) copy

    def test_exclusive_clean_read_memory_serviced(self):
        h = Harness(owner_dirty=False)
        h.make_exclusive(owner=1)
        done, svc, excl = h.mem.read(2, LINE, 10)
        assert svc in (SVC_LOCAL, SVC_REMOTE)
        assert h.mem.entry(LINE).state == DIR_SHARED

    def test_owner_rereads_own_line_after_drop(self):
        h = Harness()
        h.make_exclusive(owner=1)
        done, svc, excl = h.mem.read(1, LINE, 10)
        # Protocol treats it as a fresh memory read; no self-c2c.
        assert svc in (SVC_LOCAL, SVC_REMOTE)


class TestWriteTransitions:
    def test_invalid_write_takes_ownership(self):
        h = Harness()
        done, svc = h.mem.write(3, LINE, 10)
        entry = h.mem.entry(LINE)
        assert (entry.state, entry.owner, entry.last_writer) == \
            (DIR_EXCLUSIVE, 3, 3)
        assert not any(h.invalidated)

    def test_shared_write_by_sharer_is_upgrade(self):
        h = Harness()
        h.make_shared((0, 1))
        before = h.mem.stats.upgrades
        h.mem.write(1, LINE, 10)
        assert h.mem.stats.upgrades == before + 1
        assert LINE in h.invalidated[0]
        assert LINE not in h.invalidated[1]
        assert h.mem.entry(LINE).owner == 1

    def test_shared_write_by_outsider_invalidates_all(self):
        h = Harness()
        h.make_shared((0, 1))
        h.mem.write(3, LINE, 10)
        assert LINE in h.invalidated[0] and LINE in h.invalidated[1]
        assert h.mem.entry(LINE).owner == 3

    def test_exclusive_dirty_write_transfers(self):
        h = Harness(owner_dirty=True)
        h.make_exclusive(owner=0)
        done, svc = h.mem.write(2, LINE, 10)
        assert svc == SVC_DIRTY
        assert LINE in h.invalidated[0]
        assert h.mem.entry(LINE).owner == 2

    def test_exclusive_clean_write_memory_serviced(self):
        h = Harness(owner_dirty=False)
        h.make_exclusive(owner=0)
        done, svc = h.mem.write(2, LINE, 10)
        assert svc in (SVC_LOCAL, SVC_REMOTE)
        assert LINE in h.invalidated[0]


class TestLifecycle:
    def test_full_migration_cycle(self):
        """Write -> read -> write by another node -> detection -> read."""
        h = Harness()
        h.mem.write(0, LINE, 0)
        h.mem.read(1, LINE, 100)
        h.mem.write(1, LINE, 200)
        assert h.mem.entry(LINE).migratory
        done, svc, _ = h.mem.read(2, LINE, 300)
        assert svc == SVC_DIRTY
        assert h.mem.stats.migratory_dirty_reads == 1

    def test_writeback_then_read_is_cold(self):
        h = Harness()
        h.make_exclusive(owner=0)
        h.mem.writeback(0, LINE, 10)
        assert h.mem.entry(LINE).state == DIR_INVALID
        done, svc, excl = h.mem.read(1, LINE, 20)
        assert excl  # fresh E grant

    def test_flush_then_write_by_other(self):
        h = Harness()
        h.make_exclusive(owner=0)
        h.mem.flush(0, LINE, 10)
        done, svc = h.mem.write(1, LINE, 100)
        assert svc in (SVC_LOCAL, SVC_REMOTE)  # memory is up to date
        assert LINE in h.invalidated[0]

    def test_stats_reads_partition(self):
        """Every read lands in exactly one service counter."""
        h = Harness()
        operations = 0
        for node in (0, 1, 2, 3, 0, 2):
            h.mem.read(node, LINE, operations * 100)
            operations += 1
        stats = h.mem.stats
        assert (stats.reads_local + stats.reads_remote
                + stats.reads_dirty) == operations
