"""Tests for the seed-sweep utilities."""

import pytest

from repro.core.sweep import Comparison, SweepResult, compare, seed_sweep
from repro.core.workloads import oltp_workload
from repro.params import default_system


class TestSweepResult:
    def test_mean_and_spread(self):
        r = SweepResult("x", [90, 100, 110])
        assert r.mean == 100
        assert r.spread == pytest.approx(0.1)

    def test_formatting(self):
        assert "x" in str(SweepResult("x", [100]))


class TestComparison:
    def test_consistent_win(self):
        c = Comparison(SweepResult("a", [100, 102, 98]),
                       SweepResult("b", [80, 85, 79]))
        assert c.consistent
        assert c.mean_ratio < 1

    def test_seed_dependent(self):
        c = Comparison(SweepResult("a", [100, 100]),
                       SweepResult("b", [90, 110]))
        assert not c.consistent


class TestLiveSweep:
    def test_seed_sweep_runs(self):
        result = seed_sweep(default_system(), oltp_workload,
                            instructions=4000, warmup=4000,
                            seeds=(0, 1), label="base")
        assert len(result.cycles) == 2
        assert all(c > 0 for c in result.cycles)

    def test_compare_window_sizes(self):
        import dataclasses
        base = default_system()
        small = base.replace(processor=dataclasses.replace(
            base.processor, window_size=16))
        comparison = compare(small, base, oltp_workload,
                             instructions=6000, warmup=8000,
                             seeds=(0, 1), labels=("win16", "win64"))
        # The 64-entry window beats 16 on every seed.
        assert comparison.mean_ratio < 1.0
