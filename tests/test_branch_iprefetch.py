"""Tests for the path-predicting instruction prefetcher (section 4.1)."""

from repro.mem.coherence import CoherentMemory
from repro.mem.interconnect import MeshNetwork
from repro.mem.memsys import NodeMemorySystem
from repro.mem.tlb import PageTable
from repro.params import default_system


def make_node(**overrides):
    params = default_system(branch_iprefetch=True, **overrides)
    page_table = PageTable(params.page_size, 4)
    mesh = MeshNetwork(4, 2)
    memory = CoherentMemory(params.latencies, mesh, 128)
    return NodeMemorySystem(0, params, page_table, memory)


PC_A = 0x0100_0000
PC_B = 0x0100_4000  # different line, non-sequential


class TestBranchIPrefetch:
    def test_successor_learned_and_prefetched(self):
        node = make_node()
        # Teach the pattern A -> B, then evict B: the next fetch of A
        # prefetches B (an L1I-resident prediction is never prefetched).
        ready, _ = node.access_instr(0, PC_A)
        t = max(0, ready) + 10
        ready, _ = node.access_instr(t, PC_B)
        t = max(t, ready) + 10
        node.l1i.invalidate(node.page_table.translate_line(PC_B))
        node.access_instr(t, PC_A)
        assert node.nlp_prefetches >= 1

    def test_prefetched_line_served_from_buffer(self):
        node = make_node()
        t = 0
        for _ in range(3):
            ready, _ = node.access_instr(t, PC_A)
            t = max(t, ready) + 500
            ready, _ = node.access_instr(t, PC_B)
            t = max(t, ready) + 500
            # Evict B from L1I so the next round misses again.
            line_b = node.page_table.translate_line(PC_B)
            node.l1i.invalidate(line_b)
        assert node.nlp_hits >= 1

    def test_disabled_by_default(self):
        params = default_system()
        assert not params.branch_iprefetch
        page_table = PageTable(params.page_size, 4)
        mesh = MeshNetwork(4, 2)
        memory = CoherentMemory(params.latencies, mesh, 128)
        node = NodeMemorySystem(0, params, page_table, memory)
        node.access_instr(0, PC_A)
        node.access_instr(500, PC_B)
        node.access_instr(1000, PC_A)
        assert node.nlp_prefetches == 0

    def test_buffer_bounded(self):
        node = make_node()
        t = 0
        for i in range(40):
            pc = 0x0100_0000 + (i % 20) * 4096
            ready, _ = node.access_instr(t, pc)
            t = max(t, ready) + 50
        assert len(node._nlp_buffer) <= 8
