"""Compact qualitative checks of the paper's core claims.

These are scaled-down versions of the benchmark assertions (small runs,
generous slack) so `pytest tests/` alone already guards the headline
shapes; `benchmarks/` runs the full-size versions.
"""

import dataclasses

import pytest

from repro import (
    ConsistencyImpl,
    ConsistencyModel,
    default_system,
    dss_workload,
    oltp_workload,
    run_simulation,
)

SMALL = dict(instructions=20_000, warmup=60_000)


@pytest.fixture(scope="module")
def oltp_base():
    return run_simulation(default_system(), oltp_workload(), **SMALL)


@pytest.fixture(scope="module")
def dss_base():
    return run_simulation(default_system(), dss_workload(), **SMALL)


class TestWorkloadContrast:
    def test_dss_much_higher_ipc(self, oltp_base, dss_base):
        assert dss_base.ipc > 2 * oltp_base.ipc

    def test_oltp_large_instruction_footprint(self, oltp_base, dss_base):
        assert oltp_base.miss_rates["l1i"] > 0.01
        assert dss_base.miss_rates["l1i"] < 0.002

    def test_oltp_has_communication_misses(self, oltp_base, dss_base):
        assert oltp_base.coherence.reads_dirty > 0
        oltp_rate = oltp_base.coherence.reads_dirty / \
            oltp_base.instructions
        dss_rate = dss_base.coherence.reads_dirty / dss_base.instructions
        assert oltp_rate > 5 * max(dss_rate, 1e-9)

    def test_idle_factored_out_is_small(self, oltp_base, dss_base):
        assert oltp_base.idle_fraction < 0.10
        assert dss_base.idle_fraction < 0.10


class TestIlpClaims:
    def test_ooo_beats_inorder_oltp(self, oltp_base):
        inorder = default_system().replace(
            processor=dataclasses.replace(
                default_system().processor, out_of_order=False,
                issue_width=1))
        slow = run_simulation(inorder, oltp_workload(), **SMALL)
        assert slow.cycles > 1.1 * oltp_base.cycles

    def test_two_mshrs_capture_most_oltp_benefit(self):
        def run(n):
            params = default_system()
            params = params.replace(
                l1d=dataclasses.replace(params.l1d, mshrs=n),
                l2=dataclasses.replace(params.l2, mshrs=n))
            return run_simulation(params, oltp_workload(), **SMALL).cycles
        one, two, eight = run(1), run(2), run(8)
        assert two < one
        assert (two - eight) < (one - two) + 0.01 * one


class TestConsistencyClaims:
    def test_rc_beats_straightforward_sc(self, oltp_base):
        sc = run_simulation(
            default_system(consistency=ConsistencyModel.SC),
            oltp_workload(), **SMALL)
        assert oltp_base.cycles < sc.cycles

    def test_optimizations_help_sc(self):
        plain = run_simulation(
            default_system(consistency=ConsistencyModel.SC),
            oltp_workload(), **SMALL)
        optimized = run_simulation(
            default_system(consistency=ConsistencyModel.SC,
                           consistency_impl=ConsistencyImpl.SPECULATIVE),
            oltp_workload(), **SMALL)
        assert optimized.cycles < plain.cycles


class TestOptimizationClaims:
    def test_stream_buffer_helps_oltp(self, oltp_base):
        sb = run_simulation(default_system(stream_buffer_entries=2),
                            oltp_workload(), **SMALL)
        assert sb.cycles < oltp_base.cycles
        assert sb.stream_buffer_hit_rate > 0.25

    def test_migratory_sharing_dominates_oltp(self, oltp_base):
        sharing = oltp_base.sharing()
        assert sharing.migratory_dirty_read_fraction > 0.4
        assert sharing.migratory_shared_write_fraction > 0.5
