"""Tests for the cache tag arrays and MSHR files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CacheArray, MshrFile
from repro.params import CacheParams
from repro.stats.mshr import MshrOccupancy


def small_cache(assoc=2, sets=4):
    return CacheArray(CacheParams("T", sets * assoc * 64, assoc))


class TestCacheArray:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(5)
        cache.insert(5)
        assert cache.lookup(5)

    def test_eviction_is_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(0)
        cache.insert(1)
        cache.lookup(0)          # 0 becomes MRU
        victim = cache.insert(2)
        assert victim == (1, False)
        assert cache.lookup(0)
        assert not cache.lookup(1)

    def test_insert_returns_dirty_victim(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(0, dirty=True)
        victim = cache.insert(1)
        assert victim == (0, True)

    def test_insert_present_line_updates_dirty(self):
        cache = small_cache()
        cache.insert(3)
        assert not cache.is_dirty(3)
        assert cache.insert(3, dirty=True) is None
        assert cache.is_dirty(3)
        # Cannot clean a line by re-inserting clean.
        cache.insert(3, dirty=False)
        assert cache.is_dirty(3)

    def test_mark_dirty(self):
        cache = small_cache()
        assert not cache.mark_dirty(9)  # absent
        cache.insert(9)
        assert cache.mark_dirty(9)
        assert cache.is_dirty(9)

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(7, dirty=True)
        present, dirty = cache.invalidate(7)
        assert present and dirty
        present, dirty = cache.invalidate(7)
        assert not present and not dirty
        assert not cache.lookup(7)

    def test_set_isolation(self):
        cache = small_cache(assoc=1, sets=4)
        # Lines 0 and 4 share a set (4 sets); lines 0 and 1 do not.
        cache.insert(0)
        cache.insert(1)
        assert cache.lookup(0) and cache.lookup(1)
        cache.insert(4)  # evicts 0
        assert not cache.lookup(0)
        assert cache.lookup(1)

    def test_lookup_without_touch_keeps_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(0)
        cache.insert(1)
        cache.lookup(0, touch=False)   # does NOT refresh 0
        victim = cache.insert(2)
        assert victim[0] == 0

    def test_occupancy(self):
        cache = small_cache()
        assert cache.occupancy() == 0
        cache.insert(1)
        cache.insert(2)
        assert cache.occupancy() == 2

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = small_cache(assoc=2, sets=4)
        for line in lines:
            cache.insert(line)
        assert cache.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_inclusion_of_recent_insert(self, lines):
        cache = small_cache(assoc=2, sets=4)
        for line in lines:
            cache.insert(line)
            assert cache.lookup(line, touch=False)


class TestMshrFile:
    def test_register_and_expire(self):
        mshrs = MshrFile(2)
        mshrs.register(10, now=0, done_at=100, is_read=True, exclusive=False)
        assert mshrs.get(10) is not None
        assert mshrs.outstanding() == 1
        mshrs.expire(50)
        assert mshrs.get(10) is not None
        mshrs.expire(100)
        assert mshrs.get(10) is None

    def test_full(self):
        mshrs = MshrFile(2)
        mshrs.register(1, 0, 100, True, False)
        assert not mshrs.full
        mshrs.register(2, 0, 100, True, False)
        assert mshrs.full

    def test_earliest_done(self):
        mshrs = MshrFile(4)
        mshrs.register(1, 0, 300, True, False)
        mshrs.register(2, 0, 100, True, False)
        assert mshrs.earliest_done() == 100

    def test_extend_upgrades(self):
        mshrs = MshrFile(4)
        entry = mshrs.register(1, 0, 100, True, False)
        mshrs.extend(entry, 150, exclusive=True)
        assert entry.done_at == 150
        assert entry.exclusive

    def test_extend_never_shortens(self):
        mshrs = MshrFile(4)
        entry = mshrs.register(1, 0, 100, True, False)
        mshrs.extend(entry, 50, exclusive=False)
        assert entry.done_at == 100

    def test_stats_intervals_reported(self):
        stats = MshrOccupancy(max_n=4)
        mshrs = MshrFile(4, stats)
        mshrs.register(1, 0, 100, True, False)
        mshrs.register(2, 50, 150, False, True)
        dist = stats.distribution()
        assert dist[1] == pytest.approx(1.0)
        # 50 cycles of overlap out of 150 busy cycles.
        assert dist[2] == pytest.approx(50 / 150)
        reads = stats.distribution(reads_only=True)
        assert reads[2] == 0.0
