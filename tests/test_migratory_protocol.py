"""Tests for the adaptive migratory coherence protocol (footnote 2)."""

from repro.mem.coherence import (
    DIR_EXCLUSIVE,
    SVC_DIRTY,
    CoherentMemory,
)
from repro.mem.interconnect import MeshNetwork
from repro.params import MemoryLatencies

LINE = 0


def make_memory(protocol=True):
    mesh = MeshNetwork(4, 2)
    mem = CoherentMemory(MemoryLatencies(), mesh,
                         migratory_protocol=protocol)
    invalidated = [[] for _ in range(4)]
    for i in range(4):
        mem.invalidate_hooks[i] = invalidated[i].append
        mem.dirty_hooks[i] = lambda l: True
    return mem, invalidated


def mark_migratory(mem):
    """Drive the detection pattern: 0 writes, 1 reads+writes."""
    mem.write(0, LINE, 0)
    mem.read(1, LINE, 0)
    mem.write(1, LINE, 0)
    assert mem.entry(LINE).migratory


class TestMigratoryProtocol:
    def test_read_grants_exclusive_on_migratory_line(self):
        mem, invalidated = make_memory(protocol=True)
        mark_migratory(mem)
        done, svc, excl = mem.read(2, LINE, 1000)
        assert svc == SVC_DIRTY
        assert excl
        entry = mem.entry(LINE)
        assert entry.state == DIR_EXCLUSIVE
        assert entry.owner == 2
        assert LINE in invalidated[1]
        assert mem.migratory_exclusive_grants == 1

    def test_no_upgrade_needed_after_grant(self):
        mem, _ = make_memory(protocol=True)
        mark_migratory(mem)
        upgrades_before = mem.stats.upgrades
        mem.read(2, LINE, 1000)
        mem.write(2, LINE, 1001)   # would be an upgrade without the grant
        # Owner already exclusive: the write is silent at the directory
        # (the caller checks _writable), so no new upgrade happened.
        assert mem.stats.upgrades == upgrades_before

    def test_disabled_protocol_demotes_to_shared(self):
        mem, _ = make_memory(protocol=False)
        mark_migratory(mem)
        done, svc, excl = mem.read(2, LINE, 1000)
        assert svc == SVC_DIRTY
        assert not excl
        assert mem.entry(LINE).state != DIR_EXCLUSIVE
        assert mem.migratory_exclusive_grants == 0

    def test_non_migratory_line_unaffected(self):
        mem, _ = make_memory(protocol=True)
        mem.write(0, LINE, 0)
        done, svc, excl = mem.read(1, LINE, 100)
        assert svc == SVC_DIRTY
        assert not excl  # plain dirty read: demote to shared
