"""Tests for the consistency-model ordering unit (paper section 3.4)."""

import pytest

from repro.cpu.consistency import ConsistencyUnit
from repro.params import ConsistencyImpl, ConsistencyModel

SC = ConsistencyModel.SC
PC = ConsistencyModel.PC
RC = ConsistencyModel.RC
STRAIGHT = ConsistencyImpl.STRAIGHTFORWARD
PREFETCH = ConsistencyImpl.PREFETCH
SPEC = ConsistencyImpl.SPECULATIVE


def unit(model, impl=STRAIGHT):
    return ConsistencyUnit(model, impl)


class TestRc:
    def test_loads_unordered(self):
        u = unit(RC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        assert u.may_perform_load(2)

    def test_store_does_not_block_retire(self):
        assert not unit(RC).store_blocks_retire

    def test_store_overlap(self):
        assert unit(RC).store_buffer_overlap > 1

    def test_no_speculation_tracking(self):
        u = unit(RC, SPEC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        assert not u.load_is_speculative(2)


class TestScStraightforward:
    def test_memory_ops_serialize(self):
        u = unit(SC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        assert u.may_perform_load(1)
        assert not u.may_perform_load(2)
        u.note_complete(1)
        assert u.may_perform_load(2)

    def test_store_waits_for_older_load(self):
        u = unit(SC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=False)
        assert not u.may_perform_store(2)
        u.note_complete(1)
        assert u.may_perform_store(2)

    def test_load_waits_for_older_store(self):
        u = unit(SC)
        u.note_dispatch(1, is_load=False)
        u.note_dispatch(2, is_load=True)
        assert not u.may_perform_load(2)

    def test_stores_block_retire(self):
        assert unit(SC).store_blocks_retire

    def test_removed_ops_unblock(self):
        u = unit(SC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        u.note_removed(1)
        assert u.may_perform_load(2)


class TestPcStraightforward:
    def test_loads_ordered_among_loads(self):
        u = unit(PC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        assert not u.may_perform_load(2)
        u.note_complete(1)
        assert u.may_perform_load(2)

    def test_load_bypasses_store(self):
        u = unit(PC)
        u.note_dispatch(1, is_load=False)
        u.note_dispatch(2, is_load=True)
        assert u.may_perform_load(2)

    def test_stores_do_not_block_retire(self):
        assert not unit(PC).store_blocks_retire

    def test_store_drain_serialized(self):
        assert unit(PC).store_buffer_overlap == 1


class TestPrefetchImpl:
    def test_straightforward_does_not_prefetch(self):
        assert not unit(SC, STRAIGHT).wants_prefetch

    def test_prefetch_and_speculative_do(self):
        assert unit(SC, PREFETCH).wants_prefetch
        assert unit(SC, SPEC).wants_prefetch

    def test_prefetch_does_not_reorder(self):
        u = unit(SC, PREFETCH)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        assert not u.may_perform_load(2)


class TestSpeculativeLoads:
    def test_loads_perform_immediately(self):
        u = unit(SC, SPEC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        assert u.may_perform_load(2)
        assert u.load_is_speculative(2)
        assert not u.load_is_speculative(1)  # oldest: not speculative

    def test_violation_detected_on_tracked_line(self):
        u = unit(SC, SPEC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        u.note_speculative_load(2, line=77)
        assert u.check_violation(77) == 2
        assert u.rollbacks == 1

    def test_violation_returns_oldest_speculative(self):
        u = unit(SC, SPEC)
        for seq in (1, 2, 3):
            u.note_dispatch(seq, is_load=True)
        u.note_speculative_load(3, line=77)
        u.note_speculative_load(2, line=77)
        assert u.check_violation(77) == 2

    def test_untracked_line_no_violation(self):
        u = unit(SC, SPEC)
        u.note_dispatch(1, is_load=True)
        u.note_speculative_load(1, line=5)
        assert u.check_violation(6) is None

    def test_retired_load_is_safe(self):
        u = unit(SC, SPEC)
        u.note_dispatch(1, is_load=True)
        u.note_dispatch(2, is_load=True)
        u.note_speculative_load(2, line=77)
        u.note_removed(2)
        assert u.check_violation(77) is None

    def test_pc_speculation_tracks_loads_only(self):
        u = unit(PC, SPEC)
        u.note_dispatch(1, is_load=False)   # store
        u.note_dispatch(2, is_load=True)
        # PC loads only order against loads; a load after only a store is
        # not speculative.
        assert not u.load_is_speculative(2)

    def test_reset_clears_state(self):
        u = unit(SC, SPEC)
        u.note_dispatch(1, is_load=True)
        u.note_speculative_load(1, line=9)
        u.reset()
        assert u.check_violation(9) is None
        assert u.may_perform_load(5)
