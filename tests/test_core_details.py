"""Detailed core-pipeline tests: trace buffer, squash, structural limits."""

import dataclasses
import itertools

import pytest

from repro.cpu.core import TraceBuffer
from repro.params import default_system
from repro.system.machine import Machine
from repro.trace.instr import (
    BR_COND,
    OP_BRANCH,
    OP_INT,
    OP_LOAD,
    OP_MB,
    OP_STORE,
    OP_WMB,
    Instruction,
)

CODE = 0x0100_0000
DATA = 0x2000_0000


def alu(pc, deps=()):
    return Instruction(OP_INT, pc, deps=tuple(deps))


class TestTraceBuffer:
    def _buffer(self, n=100):
        return TraceBuffer(iter([alu(CODE + 4 * i) for i in range(n)]))

    def test_sequential_get(self):
        buf = self._buffer()
        assert buf.get(0).pc == CODE
        assert buf.get(5).pc == CODE + 20

    def test_rewind_before_release(self):
        buf = self._buffer()
        first = buf.get(10)
        buf.get(20)
        assert buf.get(10) is first  # same object: rewind works

    def test_release_frees_prefix(self):
        buf = self._buffer()
        buf.get(10)
        buf.release_through(5)
        assert buf.get(6).pc == CODE + 24
        assert len(buf._buf) == 5

    def test_get_after_release_of_same_seq_raises_nothing_beyond(self):
        buf = self._buffer()
        buf.get(3)
        buf.release_through(3)
        # Seq 4 onward still reachable.
        assert buf.get(4).pc == CODE + 16


class TestStructuralLimits:
    def test_window_size_bounds_inflight(self):
        params = default_system(n_nodes=1, mesh_width=1)
        params = params.replace(processor=dataclasses.replace(
            params.processor, window_size=8))
        # A long-latency head load keeps the window full behind it.
        program = [Instruction(OP_LOAD, CODE, addr=DATA, deps=())] + \
            [alu(CODE + 4 + 4 * i) for i in range(63)]
        m = Machine(params, [itertools.cycle(program)])
        m.run(500)
        assert max(len(core._window) for core in m.cores) <= 8

    def test_max_spec_branches_limits_fetch(self):
        params = default_system(n_nodes=1, mesh_width=1)
        params = params.replace(processor=dataclasses.replace(
            params.processor, max_spec_branches=2))
        # Branches that depend on a slow load cannot resolve quickly.
        program = [Instruction(OP_LOAD, CODE, addr=DATA)]
        for i in range(20):
            program.append(Instruction(
                OP_BRANCH, CODE + 4 + 8 * i, deps=(i + 1,),
                taken=False, target=CODE + 8 + 8 * i,
                branch_kind=BR_COND))
            program.append(alu(CODE + 8 + 8 * i))
        m = Machine(params, [itertools.cycle(program)])
        m.run(200, max_cycles=1_000_000)
        core = m.cores[0]
        assert core._unresolved_branches <= 2

    def test_memory_queue_limits_outstanding(self):
        params = default_system(n_nodes=1, mesh_width=1)
        params = params.replace(processor=dataclasses.replace(
            params.processor, mem_queue_size=4))
        program = [Instruction(OP_LOAD, CODE + 4 * i,
                               addr=DATA + 4096 * i) for i in range(64)]
        m = Machine(params, [itertools.cycle(program)])
        m.run(300)
        core = m.cores[0]
        from repro.cpu.core import ST_MEMACC
        outstanding = len(core._memq) + sum(
            1 for e in core._window if e.state == ST_MEMACC)
        assert outstanding <= 4 + 2  # small slack for same-cycle issue


class TestFences:
    def test_mb_waits_for_store_buffer(self):
        """An MB after stores costs sync time (buffer drain)."""
        params = default_system(n_nodes=1, mesh_width=1)
        stores_mb = []
        for i in range(8):
            stores_mb.append(Instruction(OP_STORE, CODE + 8 * i,
                                         addr=DATA + 4096 * i))
        stores_mb.append(Instruction(OP_MB, CODE + 100))
        stores_mb.extend(alu(CODE + 104 + 4 * i) for i in range(16))
        m = Machine(params, [itertools.cycle(stores_mb)])
        m.run(2000)
        assert m.breakdown().sync > 0

    def _fence_program(self, fence_op):
        program = []
        for i in range(8):
            program.append(Instruction(OP_STORE, CODE + 8 * i,
                                       addr=DATA + 4096 * i))
            program.append(Instruction(fence_op, CODE + 8 * i + 4))
        program.extend(alu(CODE + 200 + 4 * i) for i in range(16))
        return program

    def test_wmb_cheaper_than_mb(self):
        """WMB only orders the write buffer (retirement continues);
        MB stalls retirement until the buffer drains."""
        params = default_system(n_nodes=1, mesh_width=1)
        t_wmb = Machine(params, [itertools.cycle(
            self._fence_program(OP_WMB))]).run(2000)
        t_mb = Machine(params, [itertools.cycle(
            self._fence_program(OP_MB))]).run(2000)
        assert t_wmb <= t_mb

    def test_wmb_orders_buffered_writes(self):
        """Stores separated by WMBs drain serially: slower end-to-end
        than unordered stores -- the fence really orders the buffer."""
        params = default_system(n_nodes=1, mesh_width=1)
        ordered = Machine(params, [itertools.cycle(
            self._fence_program(OP_WMB))])
        t_ordered = ordered.run(2000)
        plain = [i for i in self._fence_program(OP_WMB)
                 if i.op != OP_WMB]
        t_plain = Machine(params, [itertools.cycle(plain)]).run(2000)
        assert t_ordered > t_plain


class TestRollbackMechanics:
    def test_squash_resets_fetch(self):
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [itertools.cycle(
            [alu(CODE + 4 * i) for i in range(64)])])
        m.run(500)
        core = m.cores[0]
        head = core._window[0].seq if core._window else core._next_seq
        target = head + 2 if core._window and len(core._window) > 4 \
            else head
        core._squash_from(target, m.now, penalty=5)
        assert core._next_seq == target
        assert all(e.seq < target for e in core._window)
        # Simulation continues cleanly after the squash.
        m.run(500)
        assert m.total_retired() >= 1000
