"""Tests for the processor core pipeline using hand-built traces."""

import itertools

import pytest

from repro.params import (
    ConsistencyImpl,
    ConsistencyModel,
    default_system,
)
from repro.system.machine import Machine
from repro.trace.instr import (
    BR_COND,
    OP_BRANCH,
    OP_INT,
    OP_LOAD,
    OP_LOCK_ACQ,
    OP_LOCK_REL,
    OP_MB,
    OP_STORE,
    OP_SYSCALL,
    OP_WMB,
    Instruction,
)

CODE = 0x0100_0000
DATA = 0x2000_0000


def alu(pc, deps=()):
    return Instruction(OP_INT, pc, deps=tuple(deps))


def load(pc, addr, deps=()):
    return Instruction(OP_LOAD, pc, addr=addr, deps=tuple(deps))


def store(pc, addr, deps=()):
    return Instruction(OP_STORE, pc, addr=addr, deps=tuple(deps))


def branch(pc, taken=False, target=0):
    return Instruction(OP_BRANCH, pc, taken=taken,
                       target=target or pc + 4, branch_kind=BR_COND)


def looped(program):
    """Endless trace cycling over ``program`` (instruction objects are
    reused; the simulator treats them read-only apart from the cached
    branch-predictor outcome)."""
    return itertools.cycle(program)


def machine_for(program, params=None, n_procs=1):
    params = params or default_system(n_nodes=1, mesh_width=1)
    gens = [looped(program) for _ in range(n_procs)]
    return Machine(params, gens)


def straightline(n, start_pc=CODE):
    return [alu(start_pc + 4 * i) for i in range(n)]


class TestBasicPipeline:
    def test_retires_requested_instructions(self):
        m = machine_for(straightline(64))
        cycles = m.run(1000)
        assert m.total_retired() >= 1000
        assert cycles > 0

    def test_wide_issue_faster_than_single(self):
        import dataclasses
        base = default_system(n_nodes=1, mesh_width=1)
        narrow = base.replace(processor=dataclasses.replace(
            base.processor, issue_width=1))
        t_wide = machine_for(straightline(64), base).run(4000)
        t_narrow = machine_for(straightline(64), narrow).run(4000)
        assert t_wide < t_narrow

    def test_ipc_bounded_by_issue_width(self):
        m = machine_for(straightline(64))
        cycles = m.run(8000)
        ipc = 8000 / cycles
        assert ipc <= 4.0 + 1e-9

    def test_dependence_chain_serializes(self):
        # Every element depends on its predecessor, across loop
        # iterations too (the cycled trace keeps distance-1 deps valid).
        chain = [alu(CODE + 4 * i, deps=(1,)) for i in range(64)]
        t_chain = machine_for(chain).run(4000)
        t_parallel = machine_for(straightline(64)).run(4000)
        assert t_chain > 1.5 * t_parallel

    def test_fp_uses_separate_units(self):
        ints = straightline(64)
        mix = []
        for i in range(64):
            op = OP_INT if i % 2 == 0 else 5  # placeholder
        # Mixed INT/FP streams issue in parallel across unit classes.
        fp = [Instruction(1, CODE + 4 * i, latency=3) for i in range(64)]
        both = [x for pair in zip(ints, fp) for x in pair]
        t_both = machine_for(both).run(4000)
        t_int = machine_for(ints).run(4000)
        # FP adds work but uses its own units: less than 2x slowdown
        # would fail if FP contended for integer ALUs.
        assert t_both < 2.2 * t_int


class TestMemoryBehaviour:
    def test_load_chain_exposes_latency(self):
        # Pointer chase over distinct lines: dependent loads serialize.
        chase = []
        for i in range(32):
            chase.append(load(CODE + 8 * i, DATA + 4096 * i,
                              deps=(1,) if i else ()))
            chase.append(alu(CODE + 8 * i + 4, deps=(1,)))
        independent = []
        for i in range(32):
            independent.append(load(CODE + 8 * i, DATA + 4096 * i))
            independent.append(alu(CODE + 8 * i + 4))
        t_chase = machine_for(chase).run(2000)
        t_indep = machine_for(independent).run(2000)
        assert t_chase > 1.5 * t_indep

    def test_read_stall_attributed(self):
        program = [load(CODE + 8 * i, DATA + 1 << 20) for i in range(8)]
        program = [load(CODE + 8 * i, DATA + 65536 * i, deps=(1,) if i else ())
                   for i in range(16)]
        m = machine_for(program)
        m.run(2000)
        bd = m.breakdown()
        assert bd.read > 0

    def test_stores_hidden_under_rc(self):
        stores = [store(CODE + 4 * i, DATA + 64 * i) for i in range(32)]
        m = machine_for(stores)
        m.run(3000)
        bd = m.breakdown()
        # Write stall should be a small share under RC.
        assert bd.write / bd.total < 0.5


class TestBranches:
    def test_predictable_branches_cheap(self):
        program = []
        for i in range(32):
            program.extend(straightline(4, CODE + 32 * i))
            program.append(branch(CODE + 32 * i + 16, taken=False))
        m = machine_for(program)
        m.run(6000)
        # After warmup the predictor nails the never-taken branches.
        assert m.misprediction_rate() < 0.2

    def test_mispredictions_counted(self):
        # Outcome alternates between two *different* instruction objects
        # at the same PC, defeating the cached-outcome optimization.
        a = branch(CODE + 16, taken=True, target=CODE + 64)
        b = branch(CODE + 16, taken=False)

        def gen():
            i = 0
            while True:
                yield from straightline(4, CODE + (i % 7) * 64)
                yield Instruction(OP_BRANCH, CODE + 16,
                                  taken=bool(i & 1), target=CODE + 64,
                                  branch_kind=BR_COND)
                i += 1

        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [gen()])
        m.run(4000)
        assert m.cores[0].bpred.predictions > 0


class TestSynchronization:
    def _cs_program(self, lock_id=0):
        lock_addr = 0x1400_0000 + lock_id * 64
        shared = 0x1000_0000
        return [
            Instruction(OP_LOCK_ACQ, CODE, addr=lock_addr),
            Instruction(OP_MB, CODE + 4),
            load(CODE + 8, shared),
            alu(CODE + 12, deps=(1,)),
            store(CODE + 16, shared, deps=(1,)),
            Instruction(OP_WMB, CODE + 20),
            Instruction(OP_LOCK_REL, CODE + 24, addr=lock_addr),
        ] + straightline(24, CODE + 28)

    def test_lock_protected_updates_complete(self):
        params = default_system(n_nodes=4)
        m = Machine(params, [looped(self._cs_program())
                             for _ in range(4)])
        m.run(4000)
        assert m.total_retired() >= 4000
        # Lock table is empty or holds a current owner; never corrupt.
        assert all(isinstance(v, int) for v in m.lock_table.values())

    def test_contended_lock_creates_sync_stall(self):
        params = default_system(n_nodes=4)
        m = Machine(params, [looped(self._cs_program())
                             for _ in range(4)])
        m.run(6000)
        assert m.breakdown().sync > 0

    def test_uncontended_locks_cheap(self):
        params = default_system(n_nodes=4)
        # Each process uses a different lock: no contention.
        m = Machine(params, [looped(self._cs_program(lock_id=i))
                             for i in range(4)])
        m.run(6000)
        contended = Machine(params, [looped(self._cs_program())
                                     for _ in range(4)])
        contended.run(6000)
        assert m.breakdown().sync <= contended.breakdown().sync + 1e-9


class TestContextSwitch:
    def test_syscall_switches_process(self):
        program = straightline(50) + [Instruction(OP_SYSCALL, CODE + 400)]
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [looped(program) for _ in range(3)])
        m.run(2000)
        assert m.schedulers[0].context_switches >= 2
        assert all(p.syscalls > 0 for p in m.processes[:2])

    def test_single_blocking_process_idles(self):
        program = straightline(10) + [Instruction(OP_SYSCALL, CODE + 80)]
        params = default_system(n_nodes=1, mesh_width=1)
        m = Machine(params, [looped(program)])
        m.run(200)
        bd = m.breakdown()
        assert bd.cycles[-1] > 0  # IDLE accumulated while blocked


class TestConsistencyModels:
    def _store_heavy(self):
        return [store(CODE + 4 * i, DATA + 64 * i) for i in range(48)] + \
            straightline(16, CODE + 256)

    def _run(self, model, impl=ConsistencyImpl.STRAIGHTFORWARD):
        params = default_system(n_nodes=1, mesh_width=1,
                                consistency=model, consistency_impl=impl)
        m = machine_for(self._store_heavy(), params)
        return m.run(3000)

    def test_rc_faster_than_sc(self):
        t_sc = self._run(ConsistencyModel.SC)
        t_rc = self._run(ConsistencyModel.RC)
        assert t_rc < t_sc

    def test_pc_between_sc_and_rc(self):
        t_sc = self._run(ConsistencyModel.SC)
        t_pc = self._run(ConsistencyModel.PC)
        t_rc = self._run(ConsistencyModel.RC)
        assert t_rc <= t_pc <= t_sc * 1.05

    def test_prefetch_helps_sc(self):
        t_plain = self._run(ConsistencyModel.SC)
        t_pf = self._run(ConsistencyModel.SC, ConsistencyImpl.PREFETCH)
        assert t_pf <= t_plain

    def test_speculation_helps_sc_loads(self):
        loads = [load(CODE + 4 * i, DATA + 64 * i) for i in range(48)]
        def run(impl):
            params = default_system(
                n_nodes=1, mesh_width=1, consistency=ConsistencyModel.SC,
                consistency_impl=impl)
            return machine_for(loads, params).run(3000)
        t_plain = run(ConsistencyImpl.STRAIGHTFORWARD)
        t_spec = run(ConsistencyImpl.SPECULATIVE)
        assert t_spec < t_plain

    def test_speculative_rollback_on_remote_write(self):
        """A remote write to a speculatively-loaded line forces rollback;
        execution still completes."""
        params = default_system(consistency=ConsistencyModel.SC,
                                consistency_impl=ConsistencyImpl.SPECULATIVE)
        shared = 0x1000_0000
        reader = [load(CODE, DATA + 1 << 16, deps=()),
                  load(CODE + 4, shared)] + straightline(20, CODE + 8)
        writer = [store(CODE + 1024, shared)] + \
            straightline(20, CODE + 1028)
        m = Machine(params, [looped(reader), looped(writer),
                             looped(straightline(16)),
                             looped(straightline(16))])
        m.run(20000)
        assert m.total_retired() >= 20000
