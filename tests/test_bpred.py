"""Tests for the hybrid PA/g branch predictor, BTB, and RAS."""

import random

from repro.cpu.bpred import BranchPredictor
from repro.params import BranchPredictorParams
from repro.trace.instr import BR_CALL, BR_COND, BR_JUMP, BR_RETURN


def predictor(**kw):
    return BranchPredictor(BranchPredictorParams(**kw))


class TestConditional:
    def test_learns_always_taken(self):
        bp = predictor()
        for _ in range(10):
            bp.observe(0x1000, BR_COND, True, 0x2000)
        bp.mispredictions = 0
        bp.observe(0x1000, BR_COND, True, 0x2000)
        assert bp.mispredictions == 0

    def test_learns_alternating_pattern(self):
        """Local history catches period-2 patterns a bimodal misses."""
        bp = predictor()
        outcome = True
        for _ in range(100):
            bp.observe(0x1000, BR_COND, outcome, 0x2000)
            outcome = not outcome
        bp.predictions = bp.mispredictions = 0
        for _ in range(20):
            bp.observe(0x1000, BR_COND, outcome, 0x2000)
            outcome = not outcome
        assert bp.mispredictions <= 2

    def test_biased_branch_accuracy(self):
        bp = predictor()
        rng = random.Random(7)
        for _ in range(500):
            bp.observe(0x1000, BR_COND, rng.random() < 0.9, 0)
        bp.predictions = bp.mispredictions = 0
        for _ in range(500):
            bp.observe(0x1000, BR_COND, rng.random() < 0.9, 0)
        assert bp.misprediction_rate < 0.25

    def test_random_branch_near_half(self):
        bp = predictor()
        rng = random.Random(3)
        wrong = sum(bp.observe(0x1000, BR_COND, rng.random() < 0.5, 0)
                    for _ in range(2000))
        assert 0.35 < wrong / 2000 < 0.65


class TestBtb:
    def test_jump_learns_stable_target(self):
        bp = predictor()
        assert bp.observe(0x1000, BR_JUMP, True, 0x5000)   # cold: miss
        assert not bp.observe(0x1000, BR_JUMP, True, 0x5000)

    def test_jump_target_change_mispredicts(self):
        bp = predictor()
        bp.observe(0x1000, BR_JUMP, True, 0x5000)
        assert bp.observe(0x1000, BR_JUMP, True, 0x6000)
        assert not bp.observe(0x1000, BR_JUMP, True, 0x6000)

    def test_btb_capacity_eviction(self):
        bp = predictor(btb_entries=2)
        bp.observe(0x1000, BR_JUMP, True, 0xA)
        bp.observe(0x2000, BR_JUMP, True, 0xB)
        bp.observe(0x3000, BR_JUMP, True, 0xC)  # evicts 0x1000
        assert bp.observe(0x1000, BR_JUMP, True, 0xA)


class TestRas:
    def test_call_return_pairs(self):
        bp = predictor()
        bp.observe(0x1000, BR_CALL, True, 0x5000)
        # Return to the instruction after the call.
        assert not bp.observe(0x5100, BR_RETURN, True, 0x1004)

    def test_nested_calls(self):
        bp = predictor()
        bp.observe(0x1000, BR_CALL, True, 0x5000)
        bp.observe(0x5000, BR_CALL, True, 0x6000)
        assert not bp.observe(0x6010, BR_RETURN, True, 0x5004)
        assert not bp.observe(0x5100, BR_RETURN, True, 0x1004)

    def test_empty_ras_mispredicts(self):
        bp = predictor()
        assert bp.observe(0x5100, BR_RETURN, True, 0x1004)

    def test_ras_overflow_drops_oldest(self):
        bp = predictor(ras_entries=2)
        bp.observe(0x1000, BR_CALL, True, 0xA000)
        bp.observe(0xA000, BR_CALL, True, 0xB000)
        bp.observe(0xB000, BR_CALL, True, 0xC000)  # drops 0x1004
        assert not bp.observe(0xC000, BR_RETURN, True, 0xB004)
        assert not bp.observe(0xB010, BR_RETURN, True, 0xA004)
        assert bp.observe(0xA010, BR_RETURN, True, 0x1004)


class TestPerfect:
    def test_perfect_never_mispredicts(self):
        bp = predictor(perfect=True)
        rng = random.Random(1)
        wrong = sum(
            bp.observe(rng.randrange(1 << 20) * 4, BR_COND,
                       rng.random() < 0.5, rng.randrange(1 << 20))
            for _ in range(200))
        assert wrong == 0
        assert bp.misprediction_rate == 0.0

    def test_counts(self):
        bp = predictor()
        bp.observe(0x1000, BR_COND, True, 0)
        assert bp.predictions == 1
