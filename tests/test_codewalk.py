"""Tests for the code walker: streams, branch structure, determinism."""

import random
from collections import Counter

from repro.trace.codewalk import CodeWalker
from repro.trace.instr import BR_CALL, BR_COND, BR_JUMP, BR_RETURN


def walker(seed=1, code_bytes=64 * 1024, **kw):
    return CodeWalker(base=0x100000, code_bytes=code_bytes,
                      rng=random.Random(seed), **kw)


class TestBlocks:
    def test_block_pcs_sequential(self):
        w = walker()
        pcs = w.block(5)
        assert len(pcs) == 5
        assert all(b - a == 4 for a, b in zip(pcs, pcs[1:]))

    def test_block_len_deterministic_per_pc(self):
        w1, w2 = walker(seed=1), walker(seed=2)
        for pc in (0x100000, 0x100040, 0x105554):
            assert w1.block_len_at(pc, 4, 7) == w2.block_len_at(pc, 4, 7)
            assert 4 <= w1.block_len_at(pc, 4, 7) <= 7

    def test_pcs_stay_in_code_region(self):
        w = walker(code_bytes=8 * 1024)
        for _ in range(2000):
            pcs = w.block(4)
            assert all(0x100000 <= pc < 0x100000 + 8 * 1024 + 64 * 16
                       for pc in pcs)
            w.end_block()


class TestBranches:
    def test_branch_kind_mostly_stable_per_site(self):
        """A static branch PC keeps one dominant kind (routine-end and
        call-depth boundary cases may occasionally force another)."""
        w = walker()
        per_site = {}
        for _ in range(6000):
            w.block(4)
            desc = w.end_block()
            per_site.setdefault(desc.pc, Counter())[desc.kind] += 1
        revisited = {pc: c for pc, c in per_site.items()
                     if sum(c.values()) >= 5}
        assert revisited
        stable = sum(1 for c in revisited.values()
                     if max(c.values()) / sum(c.values()) >= 0.8)
        assert stable / len(revisited) > 0.8

    def test_all_kinds_occur(self):
        w = walker()
        kinds = Counter()
        for _ in range(3000):
            w.block(4)
            kinds[w.end_block().kind] += 1
        assert set(kinds) == {BR_COND, BR_CALL, BR_RETURN, BR_JUMP}
        assert kinds[BR_COND] > kinds[BR_CALL]

    def test_calls_and_returns_balance(self):
        w = walker()
        kinds = Counter()
        for _ in range(5000):
            w.block(4)
            kinds[w.end_block().kind] += 1
        # Returns can only follow calls; counts track each other.
        assert abs(kinds[BR_CALL] - kinds[BR_RETURN]) <= 10

    def test_not_taken_falls_through(self):
        w = walker()
        for _ in range(2000):
            w.block(4)
            desc = w.end_block()
            next_pc = w.block(1)[0]
            if desc.taken:
                assert next_pc == desc.target
            else:
                assert next_pc == desc.pc + 4

    def test_call_target_stable_per_site(self):
        w = walker(call_target_variability=0.0,
                   jump_target_variability=0.0)
        targets = {}
        for _ in range(5000):
            w.block(4)
            desc = w.end_block()
            if desc.kind in (BR_CALL, BR_JUMP):
                if desc.pc in targets:
                    assert targets[desc.pc] == desc.target
                targets[desc.pc] = desc.target


class TestStreams:
    def test_streaming_reference_pattern(self):
        """Successive I-references access successive lines in short
        streams (paper section 4.1)."""
        w = walker(avg_routine_lines=2)
        lines = []
        for _ in range(4000):
            for pc in w.block(4):
                lines.append(pc >> 6)
            w.end_block()
        transitions = [b - a for a, b in zip(lines, lines[1:]) if b != a]
        sequential = sum(1 for d in transitions if d == 1)
        # A large fraction of line transitions are to the next line.
        assert sequential / len(transitions) > 0.4

    def test_phase_entries_spread_over_region(self):
        w = walker(code_bytes=64 * 1024)
        entry_pcs = set()
        for phase in range(8):
            w.enter_phase(phase, 8)
            entry_pcs.add(w.pc)
        assert len(entry_pcs) == 8
        span = max(entry_pcs) - min(entry_pcs)
        assert span > 32 * 1024  # spread across the region

    def test_enter_phase_clears_stack(self):
        w = walker()
        for _ in range(50):
            w.block(4)
            w.end_block()
        w.enter_phase(0, 4)
        w.block(4)
        desc = w.end_block()
        assert desc.kind != BR_RETURN or desc.target  # no stale stack pop


class TestLocality:
    def test_call_locality_keeps_targets_near(self):
        w = walker(code_bytes=256 * 1024, call_locality=4,
                   call_target_variability=0.0, hot_fraction=0.0)
        spans = []
        for _ in range(4000):
            w.block(4)
            desc = w.end_block()
            if desc.kind == BR_CALL:
                spans.append(abs(desc.target - desc.pc))
        assert spans
        near = sum(1 for s in spans if s < 16 * 1024)
        assert near / len(spans) > 0.9

    def test_n_routines(self):
        assert walker(code_bytes=16 * 1024).n_routines > 10
