"""Tests for mid-simulation checkpoint/restore, the forward-progress
watchdog, and replayable crash-triage bundles.

The core property: a run resumed from a checkpoint -- at any boundary,
on either trace path -- is byte-identical to an uninterrupted run.  The
round-trip tests draw checkpoint offsets from a seeded RNG so each CI
run exercises the same offsets deterministically, across both OLTP and
DSS, comparing cycles, full breakdowns, and the architectural state
digest (cache tags in LRU order, directory, lock table).
"""

import random

import pytest

import repro.run
from repro.check.mutations import mutate_lost_lock_release
from repro.core.experiment import run_simulation
from repro.core.workloads import dss_workload, oltp_workload
from repro.params import default_system
from repro.run import checkpoint as ckpt
from repro.run import triage
from repro.run.checkpoint import (
    CheckpointStore,
    CorruptCheckpoint,
    checkpoint_every_from_env,
    state_digest,
)
from repro.run.faults import InjectedCrash
from repro.run.jobs import MODEL_VERSION, JobSpec, WorkloadSpec
from repro.run.manifest import JobRecord, SweepManifest
from repro.system.machine import LIVELOCK_TRANSFERS, Machine, WedgeError

WORKLOADS = {"oltp": oltp_workload, "dss": dss_workload}

#: Small but real: crosses the warmup boundary and touches every
#: subsystem.  One run takes well under a second.
SMALL = dict(instructions=2400, warmup=1200)


def small_params(**changes):
    return default_system(n_nodes=2, **changes)


def small_spec(seed=0, kind="oltp", **params_changes):
    return JobSpec(small_params(**params_changes), WorkloadSpec(kind),
                   seed=seed, **SMALL)


class CrashAfterCheckpoints:
    """Fault hook that dies after the Nth checkpoint write (then never
    again), standing in for a host kill at a reproducible spot."""

    def __init__(self, after=1):
        self.after = after
        self.writes = 0

    def maybe_midcrash(self, fingerprint, attempt, boundary):
        self.writes += 1
        if self.writes == self.after:
            raise InjectedCrash(f"test crash after checkpoint "
                                f"at {boundary}")


@pytest.fixture(autouse=True)
def clean_runner(monkeypatch):
    monkeypatch.setattr(repro.run, "_cache", None)
    monkeypatch.setattr(repro.run, "_manifest", None)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv(ckpt.CHECKPOINT_EVERY_ENV, raising=False)


# ---------------------------------------------------------------------------
# Store mechanics: format, checksums, quarantine, fallback
# ---------------------------------------------------------------------------

def _payload(retired, **extra):
    base = {"format": ckpt.CHECKPOINT_FORMAT,
            "model_version": MODEL_VERSION, "retired": retired,
            "warmed": False, "measure_target": None, "seed": 0,
            "machine": {"x": retired}, "trace_offsets": [0, 0]}
    base.update(extra)
    return base


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        path = store.save(_payload(1000))
        assert path is not None and path.name == "ck-000000001000.ckpt"
        assert CheckpointStore.load_file(path) == _payload(1000)

    def test_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload(1000))
        store.save(_payload(2000))
        assert store.latest()["retired"] == 2000
        assert [p.name for p in store.checkpoint_files()] == \
            ["ck-000000001000.ckpt", "ck-000000002000.ckpt"]

    def test_corrupt_newest_quarantined_with_fallback(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload(1000))
        newest = store.save(_payload(2000))
        blob = newest.read_bytes()
        newest.write_bytes(blob[:len(blob) // 2])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            payload = store.latest()
        assert payload["retired"] == 1000
        assert store.quarantined == 1
        quarantine = store.directory / ckpt.QUARANTINE_DIR
        assert (quarantine / newest.name).exists()
        assert not newest.exists()

    def test_all_corrupt_falls_back_to_cold(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        path = store.save(_payload(1000))
        path.write_bytes(b"not a checkpoint at all")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert store.latest() is None

    def test_load_rejects_stale_model_version(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        path = store.save(_payload(500))
        stale = store.save(_payload(600, model_version=MODEL_VERSION + 1))
        with pytest.raises(CorruptCheckpoint, match="model version"):
            CheckpointStore.load_file(stale)
        assert CheckpointStore.load_file(path)["retired"] == 500

    def test_clear_removes_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        store.save(_payload(1000))
        store.save(_payload(2000))
        assert store.clear() == 2
        assert store.checkpoint_files() == []

    def test_missing_magic_raises_corrupt(self, tmp_path):
        bad = tmp_path / "ck-000000000001.ckpt"
        bad.write_bytes(b"JUNKJUNK" + b"0" * 64)
        with pytest.raises(CorruptCheckpoint, match="magic"):
            CheckpointStore.load_file(bad)


class TestEveryFromEnv:
    def test_default_when_unset(self):
        assert checkpoint_every_from_env() == \
            ckpt.DEFAULT_CHECKPOINT_EVERY

    def test_parses_and_clamps(self, monkeypatch):
        monkeypatch.setenv(ckpt.CHECKPOINT_EVERY_ENV, "1234")
        assert checkpoint_every_from_env() == 1234
        monkeypatch.setenv(ckpt.CHECKPOINT_EVERY_ENV, "-5")
        assert checkpoint_every_from_env() == 0

    def test_unparseable_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv(ckpt.CHECKPOINT_EVERY_ENV, "zebra")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            assert checkpoint_every_from_env() == \
                ckpt.DEFAULT_CHECKPOINT_EVERY


# ---------------------------------------------------------------------------
# The round-trip property (seeded random offsets, both workloads)
# ---------------------------------------------------------------------------

class TestRoundTripProperty:
    @pytest.mark.parametrize("kind", ["oltp", "dss"])
    def test_crash_resume_byte_identical_at_random_offsets(
            self, kind, tmp_path):
        """Kill at several seeded offsets; every resume reproduces the
        uninterrupted result byte-for-byte."""
        params = small_params()
        factory = WORKLOADS[kind]
        baseline = run_simulation(params, factory(), seed=1,
                                  **SMALL).to_dict()
        total = SMALL["instructions"] + SMALL["warmup"]
        rng = random.Random(20260806 + len(kind))
        offsets = rng.sample(range(200, total - 200), 3)
        for offset in offsets:
            store = CheckpointStore(tmp_path / kind / str(offset))
            with pytest.raises(InjectedCrash):
                ckpt.run_job(params, factory(), seed=1, store=store,
                             every=offset,
                             faults=CrashAfterCheckpoints(1), **SMALL)
            assert store.checkpoint_files(), \
                f"no checkpoint written at offset {offset}"
            result, info = ckpt.run_job(params, factory(), seed=1,
                                        store=store, every=offset,
                                        **SMALL)
            assert info["resumed_from"] >= offset
            assert result.to_dict() == baseline, \
                f"resume at offset {offset} diverged"
            # Completion clears the checkpoints; the cache takes over.
            assert store.checkpoint_files() == []

    @pytest.mark.parametrize("kind", ["oltp", "dss"])
    def test_restored_machine_state_digest_matches(self, kind):
        """snapshot/restore preserves the architectural state exactly,
        and the restored machine stays in lockstep afterwards."""
        params = small_params()
        factory = WORKLOADS[kind]
        machine = Machine(params, factory().generators(2, seed=3))
        machine.run(1500)
        payload = {"machine": machine.snapshot(),
                   "trace_offsets": machine.trace_consumed()}
        digest = state_digest(machine)
        restored = ckpt._rebuild_machine(params, factory(), 3, payload)
        assert state_digest(restored) == digest
        assert restored.now == machine.now
        assert restored.total_retired() == machine.total_retired()
        machine.run(800)
        restored.run(800)
        assert state_digest(restored) == state_digest(machine)
        assert restored.now == machine.now
        assert restored.total_retired() == machine.total_retired()

    def test_corrupt_newest_checkpoint_resumes_from_older(self, tmp_path):
        """A torn newest checkpoint falls back to the previous one and
        the result is still byte-identical."""
        params = small_params()
        baseline = run_simulation(params, oltp_workload(), seed=2,
                                  **SMALL).to_dict()
        store = CheckpointStore(tmp_path / "ck")
        with pytest.raises(InjectedCrash):
            ckpt.run_job(params, oltp_workload(), seed=2, store=store,
                         every=900, faults=CrashAfterCheckpoints(2),
                         **SMALL)
        files = store.checkpoint_files()
        assert len(files) == 2
        blob = files[-1].read_bytes()
        files[-1].write_bytes(blob[:-10])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            result, info = ckpt.run_job(params, oltp_workload(), seed=2,
                                        store=store, every=900, **SMALL)
        assert store.quarantined == 1
        assert 0 < info["resumed_from"] < 1800
        assert result.to_dict() == baseline

    def test_seed_mismatch_forces_cold_start(self, tmp_path):
        store = CheckpointStore(tmp_path / "ck")
        params = small_params()
        with pytest.raises(InjectedCrash):
            ckpt.run_job(params, oltp_workload(), seed=5, store=store,
                         every=1000, faults=CrashAfterCheckpoints(1),
                         **SMALL)
        result, info = ckpt.run_job(params, oltp_workload(), seed=6,
                                    store=store, **SMALL)
        assert info["resumed_from"] == 0
        baseline = run_simulation(params, oltp_workload(), seed=6,
                                  **SMALL)
        assert result.to_dict() == baseline.to_dict()


class TestSupportsCheckpointing:
    def test_declines_invariant_checker(self):
        assert not ckpt.supports_checkpointing(
            small_params(check=True), oltp_workload())

    def test_declines_recording_workload(self):
        from repro.trace.arena import ArenaRecorder
        wl = oltp_workload()
        recorder = ArenaRecorder(wl, 2, 0, {"kind": "oltp"}, 100)
        assert not ckpt.supports_checkpointing(small_params(),
                                               recorder.workload())

    def test_accepts_plain_run(self):
        assert ckpt.supports_checkpointing(small_params(),
                                           oltp_workload())


# ---------------------------------------------------------------------------
# Forward-progress watchdog
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_clean_run_never_trips(self):
        params = small_params(watchdog_cycles=50_000,
                              watchdog_node_cycles=10_000)
        result = run_simulation(params, oltp_workload(), seed=0, **SMALL)
        assert result.cycles > 0

    def test_lost_lock_release_classified_as_memory_stall(self):
        params = default_system(watchdog_node_cycles=8_000)
        with mutate_lost_lock_release():
            with pytest.raises(WedgeError) as info:
                run_simulation(params, oltp_workload(),
                               instructions=12_000, warmup=0)
        wedge = info.value
        assert wedge.kind == "memory-stall"
        assert wedge.node is not None
        assert "lock held by pid" in wedge.detail
        assert wedge.to_dict()["kind"] == "memory-stall"

    def test_livelock_outranks_memory_stall(self):
        """Ownership ping-pong on one line classifies as livelock even
        when a core is also memory-stalled."""
        params = small_params()
        machine = Machine(params, oltp_workload().generators(2, seed=0))
        machine.run(500)
        machine.memory._ping = {7: LIVELOCK_TRANSFERS, 3: 2}
        wedge = machine._classify_wedge(machine.now, node=None)
        assert wedge.kind == "coherence-livelock"
        assert wedge.line == 7
        assert wedge.retired == machine.total_retired()

    def test_wedge_error_to_dict(self):
        wedge = WedgeError("fetch-stall", 123, node=1, retired=42,
                           detail="empty window")
        data = wedge.to_dict()
        assert data == {"kind": "fetch-stall", "cycle": 123, "node": 1,
                        "line": None, "retired": 42,
                        "detail": "empty window"}
        assert "node 1" in str(wedge)


# ---------------------------------------------------------------------------
# Triage bundles and replay
# ---------------------------------------------------------------------------

class TestTriageBundles:
    def test_failed_run_spec_writes_replayable_bundle(self, tmp_path):
        spec = small_spec(seed=4)
        store = CheckpointStore.for_job(tmp_path, spec.fingerprint())
        with pytest.raises(InjectedCrash) as info:
            ckpt.run_spec(spec, store=store, every=1000,
                          faults=CrashAfterCheckpoints(1),
                          triage_dir=tmp_path)
        bundle_path = getattr(info.value, "__triage_bundle__", "")
        assert bundle_path
        data = triage.load_bundle(bundle_path)
        assert data["fingerprint"] == spec.fingerprint()
        assert data["error"]["type"] == "InjectedCrash"
        assert data["wedge"] is None
        assert data["checkpoint"]  # the newest checkpoint rode along
        assert JobSpec.from_dict(data["job"]).fingerprint() == \
            spec.fingerprint()
        tails = (tmp_path / triage.TRIAGE_DIR).rglob("stream-tail.json")
        assert list(tails)
        summary = triage.format_bundle(data)
        assert "InjectedCrash" in summary

    def test_wedge_bundle_replays_to_same_wedge(self, tmp_path):
        """A genuine (simulated) wedge reproduces under ``repro
        replay`` -- exit 1 and the same classification."""
        from repro.cli import main
        spec = small_spec(seed=0, watchdog_node_cycles=40)
        with pytest.raises(WedgeError) as info:
            ckpt.run_spec(spec, triage_dir=tmp_path)
        bundle_path = getattr(info.value, "__triage_bundle__", "")
        assert bundle_path
        data = triage.load_bundle(bundle_path)
        assert data["wedge"]["kind"] == info.value.kind
        assert main(["replay", bundle_path, "--no-cache"]) == 1

    def test_host_side_crash_replays_clean(self, tmp_path, capsys):
        """An injected (host-side) crash does not reproduce: replay
        completes cleanly, from cold and from the checkpoint."""
        from repro.cli import main
        spec = small_spec(seed=7)
        store = CheckpointStore.for_job(tmp_path, spec.fingerprint())
        with pytest.raises(InjectedCrash) as info:
            ckpt.run_spec(spec, store=store, every=1000,
                          faults=CrashAfterCheckpoints(1),
                          triage_dir=tmp_path)
        bundle_path = info.value.__triage_bundle__
        assert main(["replay", bundle_path, "--no-cache"]) == 0
        assert main(["replay", bundle_path, "--from-checkpoint",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        assert "completed cleanly" in out

    def test_replay_rejects_garbage(self, tmp_path):
        from repro.cli import main
        bogus = tmp_path / "job.json"
        bogus.write_text("{}")
        assert main(["replay", str(bogus), "--no-cache"]) == 2


# ---------------------------------------------------------------------------
# Attempt-log dedup (host timeout vs. watchdog race)
# ---------------------------------------------------------------------------

class TestAttemptDedup:
    def test_first_writer_wins_per_attempt(self, tmp_path):
        manifest = SweepManifest(tmp_path / "m.json")
        assert manifest.mark_attempt("fp", 0, "timeout",
                                     "host deadline", start_offset=500)
        # The late worker failure for the same attempt must not land.
        assert not manifest.mark_attempt("fp", 0, "failed",
                                         "WedgeError: ...")
        assert manifest.mark_attempt("fp", 1, "ok", start_offset=500)
        log = manifest.get("fp").attempt_log
        assert [(e["attempt"], e["outcome"]) for e in log] == \
            [(0, "timeout"), (1, "ok")]

    def test_attempt_log_survives_reload(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path)
        manifest.mark_attempt("fp", 0, "failed", "boom", start_offset=42)
        reloaded = SweepManifest(path)
        assert reloaded.get("fp").attempt_log == \
            [{"attempt": 0, "outcome": "failed", "error": "boom",
              "start_offset": 42}]

    def test_record_from_dict_tolerates_junk_entries(self):
        record = JobRecord.from_dict({
            "fingerprint": "fp",
            "attempt_log": [{"attempt": 1, "outcome": "ok"},
                            "garbage", {"no_attempt": True}],
        })
        assert len(record.attempt_log) == 1
        assert record.attempt_log[0]["attempt"] == 1
