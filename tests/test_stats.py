"""Tests for the statistics modules: breakdown, MSHR occupancy, sharing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.coherence import CoherenceStats
from repro.stats.breakdown import (
    BUSY,
    CPU_STALL,
    IDLE,
    INSTR,
    READ_DIRTY,
    READ_L2,
    SYNC,
    WRITE,
    ExecutionBreakdown,
)
from repro.stats.mshr import MshrOccupancy
from repro.stats.sharing import sharing_characterization


class TestExecutionBreakdown:
    def test_busy_and_stall_accumulate(self):
        bd = ExecutionBreakdown()
        bd.busy(0.75)
        bd.stall(READ_DIRTY, 0.25)
        assert bd.cycles[BUSY] == 0.75
        assert bd.total == pytest.approx(1.0)

    def test_cpu_combines_busy_and_fu(self):
        bd = ExecutionBreakdown()
        bd.busy(0.5)
        bd.stall(CPU_STALL, 0.5)
        assert bd.cpu == 1.0

    def test_idle_excluded_from_total(self):
        bd = ExecutionBreakdown()
        bd.busy(1.0)
        bd.stall(IDLE, 5.0)
        assert bd.total == 1.0

    def test_read_sums_subcategories(self):
        bd = ExecutionBreakdown()
        bd.stall(READ_L2, 2.0)
        bd.stall(READ_DIRTY, 3.0)
        assert bd.read == 5.0

    def test_merge(self):
        a, b = ExecutionBreakdown(), ExecutionBreakdown()
        a.busy(1.0)
        a.instructions = 10
        b.stall(SYNC, 2.0)
        b.instructions = 5
        merged = ExecutionBreakdown.merged([a, b])
        assert merged.cycles[BUSY] == 1.0
        assert merged.sync == 2.0
        assert merged.instructions == 15

    def test_shares_sum_to_one(self):
        bd = ExecutionBreakdown()
        bd.busy(2.0)
        bd.stall(WRITE, 1.0)
        bd.stall(INSTR, 1.0)
        assert sum(bd.shares().values()) == pytest.approx(1.0)

    def test_summary_row_keys(self):
        bd = ExecutionBreakdown()
        bd.busy(1.0)
        row = bd.summary_row()
        assert set(row) == {"cpu", "read", "write", "sync", "instr"}
        assert sum(row.values()) == pytest.approx(1.0)

    def test_ipc(self):
        bd = ExecutionBreakdown()
        bd.busy(100.0)
        bd.instructions = 150
        assert bd.ipc == 1.5

    def test_reset(self):
        bd = ExecutionBreakdown()
        bd.busy(1.0)
        bd.instructions = 7
        bd.reset()
        assert bd.total == 0
        assert bd.instructions == 0

    def test_format_bar_contains_label(self):
        bd = ExecutionBreakdown()
        bd.busy(1.0)
        assert "mylabel" in bd.format_bar("mylabel")


class TestMshrOccupancy:
    def test_single_interval(self):
        occ = MshrOccupancy(max_n=4)
        occ.add_interval(0, 100, is_read=True)
        d = occ.distribution()
        assert d[1] == 1.0
        assert d[2] == 0.0

    def test_full_overlap(self):
        occ = MshrOccupancy(max_n=4)
        occ.add_interval(0, 100, True)
        occ.add_interval(0, 100, True)
        d = occ.distribution()
        assert d[2] == 1.0

    def test_partial_overlap(self):
        occ = MshrOccupancy(max_n=4)
        occ.add_interval(0, 100, True)
        occ.add_interval(50, 150, True)
        d = occ.distribution()
        assert d[1] == 1.0
        assert d[2] == pytest.approx(50 / 150)

    def test_reads_only_view(self):
        occ = MshrOccupancy(max_n=4)
        occ.add_interval(0, 100, is_read=False)
        occ.add_interval(0, 100, is_read=True)
        assert occ.distribution()[2] == 1.0
        assert occ.distribution(reads_only=True)[2] == 0.0

    def test_empty(self):
        occ = MshrOccupancy()
        assert all(v == 0.0 for v in occ.distribution().values())
        assert occ.mean_occupancy() == 0.0

    def test_zero_length_interval_ignored(self):
        occ = MshrOccupancy()
        occ.add_interval(5, 5, True)
        assert occ.distribution()[1] == 0.0

    def test_mean_occupancy(self):
        occ = MshrOccupancy(max_n=4)
        occ.add_interval(0, 100, True)
        occ.add_interval(0, 100, True)
        assert occ.mean_occupancy() == pytest.approx(2.0)

    def test_reset(self):
        occ = MshrOccupancy()
        occ.add_interval(0, 10, True)
        occ.reset()
        assert occ.distribution()[1] == 0.0

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(1, 200)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_distribution_monotone_nonincreasing(self, intervals):
        occ = MshrOccupancy(max_n=8)
        for start, length in intervals:
            occ.add_interval(start, start + length, True)
        d = occ.distribution()
        values = [d[n] for n in sorted(d)]
        assert values[0] == 1.0
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestSharingReport:
    def _stats(self):
        stats = CoherenceStats()
        stats.reads_dirty = 100
        stats.migratory_dirty_reads = 79
        stats.shared_writes = 100
        stats.migratory_writes = 88
        stats.migratory_lines = set(range(100))
        # 70% of migratory write misses on 3 hot lines.
        for line in range(3):
            stats.migratory_write_by_line[line] = 233
        for line in range(3, 100):
            stats.migratory_write_by_line[line] = 3
        # 75% of refs from 2 of 20 PCs.
        for pc in range(2):
            stats.migratory_refs_by_pc[pc] = 375
        for pc in range(2, 20):
            stats.migratory_refs_by_pc[pc] = 14
        return stats

    def test_fractions(self):
        report = sharing_characterization(self._stats())
        assert report.migratory_dirty_read_fraction == pytest.approx(0.79)
        assert report.migratory_shared_write_fraction == pytest.approx(0.88)

    def test_line_concentration(self):
        report = sharing_characterization(self._stats())
        assert report.top_line_fraction(0.70) <= 0.04

    def test_pc_concentration(self):
        report = sharing_characterization(self._stats())
        assert report.top_pc_fraction(0.75) <= 0.15

    def test_hot_pcs_cover_target_share(self):
        stats = self._stats()
        report = sharing_characterization(stats)
        covered = sum(stats.migratory_refs_by_pc[pc]
                      for pc in report.hot_pcs)
        assert covered / sum(stats.migratory_refs_by_pc.values()) >= 0.75

    def test_empty_stats(self):
        report = sharing_characterization(CoherenceStats())
        assert report.migratory_dirty_read_fraction == 0.0
        assert report.hot_pcs == []
        assert report.top_line_fraction() == 1.0
