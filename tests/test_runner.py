"""Tests for the parallel experiment runner and persistent result cache.

Covers the determinism guarantees the runner depends on (serial reruns
and parallel fan-out must be bit-identical), the JobSpec fingerprint,
SimulationResult round-trip serialization, and the on-disk cache.
"""

import dataclasses
import json

import pytest

import repro.run
from repro.core.experiment import SimulationResult, run_simulation
from repro.core.sweep import seed_sweep
from repro.core.workloads import dss_workload, oltp_workload
from repro.params import default_system
from repro.run import JobSpec, WorkloadSpec, ResultCache, run_many
from repro.run import jobs as jobs_mod

TINY = dict(instructions=2500, warmup=2500)


def tiny_spec(seed=0, kind="oltp", **params_changes):
    params = default_system(**params_changes)
    return JobSpec(params, WorkloadSpec(kind), seed=seed, **TINY)


class TestWorkloadSpec:
    def test_build_matches_direct_factory(self):
        wl = WorkloadSpec("oltp").build()
        direct = oltp_workload()
        assert wl.name == direct.name
        assert wl.processes_per_cpu == direct.processes_per_cpu

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("tpc-z")

    def test_from_factory(self):
        assert WorkloadSpec.from_factory(oltp_workload).kind == "oltp"
        assert WorkloadSpec.from_factory(dss_workload).kind == "dss"
        assert WorkloadSpec.from_factory(lambda: None) is None

    def test_hints_round_trip(self):
        from repro.core.optimizations import migratory_hints
        hints = migratory_hints(prefetch=True, flush=True,
                                pc_filter={7, 3})
        spec = WorkloadSpec.from_hints("oltp", hints=hints)
        rebuilt = WorkloadSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.hints.prefetch and rebuilt.hints.flush
        assert rebuilt.hints.pc_filter == {3, 7}

    def test_dss_rejects_hints(self):
        spec = WorkloadSpec("dss", hints_flush=True)
        with pytest.raises(ValueError):
            spec.build()


class TestJobSpec:
    def test_fingerprint_stable_and_distinct(self):
        a, b = tiny_spec(seed=0), tiny_spec(seed=0)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != tiny_spec(seed=1).fingerprint()
        assert a.fingerprint() != tiny_spec(kind="dss").fingerprint()
        wider = tiny_spec()
        wider = dataclasses.replace(wider, instructions=3000)
        assert a.fingerprint() != wider.fingerprint()

    def test_fingerprint_depends_on_model_version(self, monkeypatch):
        before = tiny_spec().fingerprint()
        monkeypatch.setattr(jobs_mod, "MODEL_VERSION",
                            jobs_mod.MODEL_VERSION + 1)
        assert tiny_spec().fingerprint() != before

    def test_dict_round_trip(self):
        spec = tiny_spec(seed=3)
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_run_equals_run_simulation(self):
        spec = tiny_spec()
        direct = run_simulation(spec.params, oltp_workload(),
                                seed=0, **TINY)
        assert spec.run().cycles == direct.cycles


class TestResultRoundTrip:
    def test_byte_identical_through_json(self):
        result = tiny_spec().run()
        encoded = json.dumps(result.to_dict(), sort_keys=True)
        again = SimulationResult.from_dict(json.loads(encoded))
        assert again.dump() == result.dump()
        assert again.breakdown.cycles == result.breakdown.cycles
        assert again.breakdown.instructions == \
            result.breakdown.instructions
        assert again.coherence == result.coherence
        for reads_only in (False, True):
            assert again.l1d_mshr.distribution(reads_only) == \
                result.l1d_mshr.distribution(reads_only)
            assert again.l2_mshr.distribution(reads_only) == \
                result.l2_mshr.distribution(reads_only)
        assert again.params == result.params
        assert again.miss_rates == result.miss_rates


class TestDeterminism:
    """Two serial runs and one parallel run with the same seed produce
    identical cycles and breakdowns -- guards cache and executor
    correctness (results computed anywhere must be interchangeable)."""

    def test_serial_twice_and_parallel_once_identical(self):
        specs = [tiny_spec(seed=7), tiny_spec(seed=7, n_nodes=2),
                 tiny_spec(seed=7, kind="dss")]
        first = run_many(specs, jobs=1, cache=None)
        second = run_many(specs, jobs=1, cache=None)
        parallel = run_many(specs, jobs=2, cache=None)
        runs = [first.results, second.results, parallel.results]
        for results in runs[1:]:
            for got, want in zip(results, runs[0]):
                assert got.cycles == want.cycles
                assert got.breakdown.cycles == want.breakdown.cycles
                assert got.miss_rates == want.miss_rates
                assert got.dump() == want.dump()
        # The pool may legitimately fall back to serial in restricted
        # sandboxes; determinism must hold either way.
        assert len(parallel.results) == len(specs)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = tiny_spec()
        assert cache.get(spec) is None
        result = spec.run()
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit is not None and hit.dump() == result.dump()
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec, spec.run())
        entry = next(cache.path.glob("*.json"))
        entry.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(spec) is None
        assert not entry.exists()
        assert (cache.quarantine_path / entry.name).exists()
        assert cache.stats()["quarantined"] == 1

    def test_purge(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec, spec.run())
        assert cache.purge() == 1
        assert len(cache) == 0
        assert "0 entries" in cache.format_stats()

    def test_run_many_integration(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [tiny_spec(seed=s) for s in (0, 1)]
        cold = run_many(specs, jobs=1, cache=cache)
        warm = run_many(specs, jobs=1, cache=cache)
        assert cold.cache_hits == 0 and warm.cache_hits == 2
        assert warm.simulated_instructions == 0
        assert [r.dump() for r in warm.results] == \
            [r.dump() for r in cold.results]

    def test_model_version_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        cache.put(spec, spec.run())
        monkeypatch.setattr(jobs_mod, "MODEL_VERSION",
                            jobs_mod.MODEL_VERSION + 1)
        assert cache.get(tiny_spec()) is None


class TestRunnerDefaults:
    def test_configure_round_trip(self, monkeypatch, tmp_path):
        monkeypatch.setattr(repro.run, "_jobs", 1)
        monkeypatch.setattr(repro.run, "_cache", None)
        monkeypatch.setattr(repro.run, "_manifest", None)
        monkeypatch.setattr(repro.run, "_policy", repro.run.DEFAULT_POLICY)
        monkeypatch.setattr(repro.run, "_resume", False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        repro.run.configure(jobs=3, use_cache=False)
        jobs, cache = repro.run.runner_defaults()
        assert jobs == 3 and cache is None
        assert repro.run.shared_manifest() is None
        repro.run.configure(use_cache=True, retries=5, job_timeout=90,
                            resume=True)
        assert repro.run.shared_cache() is not None
        assert repro.run.shared_manifest() is not None
        state = repro.run.runner_state()
        assert state.policy.retries == 5
        assert state.policy.job_timeout == 90.0
        assert state.resume is True

    def test_seed_sweep_uses_runner_cache(self, monkeypatch, tmp_path):
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(repro.run, "_jobs", 1)
        monkeypatch.setattr(repro.run, "_cache", cache)
        monkeypatch.setattr(repro.run, "_manifest", None)
        sweep_a = seed_sweep(default_system(), oltp_workload,
                             seeds=(0, 1), label="a", **TINY)
        sweep_b = seed_sweep(default_system(), oltp_workload,
                             seeds=(0, 1), label="b", **TINY)
        assert sweep_a.cycles == sweep_b.cycles
        assert cache.hits == 2  # second sweep fully cached

    def test_seed_sweep_arbitrary_factory_falls_back(self):
        calls = []

        def custom():
            calls.append(1)
            return oltp_workload()

        sweep = seed_sweep(default_system(), custom, seeds=(0,),
                           label="custom", **TINY)
        assert len(sweep.cycles) == 1 and calls
