"""Tests for the command-line interface."""

import pytest

import repro.cli as cli
import repro.run


@pytest.fixture(autouse=True)
def tiny_sizes(monkeypatch, tmp_path):
    monkeypatch.setattr(cli, "_QUICK_SIZES",
                        {"oltp": (3000, 3000), "dss": (3000, 3000)})
    # The CLI enables the persistent cache by default; keep test runs
    # isolated in a throwaway directory and restore the previous state.
    previous = (repro.run._jobs, repro.run._cache, repro.run._manifest,
                repro.run._policy, repro.run._resume)
    repro.run.configure(cache_dir=str(tmp_path / "cache"))
    yield
    (repro.run._jobs, repro.run._cache, repro.run._manifest,
     repro.run._policy, repro.run._resume) = previous


class TestCli:
    def test_characterize(self, capsys):
        assert cli.main(["--quick", "characterize"]) == 0
        out = capsys.readouterr().out
        assert "OLTP" in out and "DSS" in out
        assert "l1d_miss_rate" in out

    def test_figure_5(self, capsys):
        assert cli.main(["--quick", "figure", "5", "oltp"]) == 0
        out = capsys.readouterr().out
        assert "uniprocessor" in out and "multiprocessor" in out

    def test_figure_7b(self, capsys):
        assert cli.main(["--quick", "figure", "7b"]) == 0
        out = capsys.readouterr().out
        assert "flush" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            cli.main(["--quick", "figure", "99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main(["--quick"])

    def test_cache_dir_flag(self, tmp_path):
        target = tmp_path / "elsewhere"
        assert cli.main(["--cache-dir", str(target), "--quick",
                         "characterize"]) == 0
        assert target.is_dir() and any(target.iterdir())

    def test_sweep_status_without_cache_fails(self, capsys):
        assert cli.main(["--no-cache", "sweep-status"]) == 1
        assert "no manifest" in capsys.readouterr().out

    def test_sweep_status_reports_manifest_progress(self, tmp_path,
                                                    capsys):
        target = tmp_path / "sweep-cache"
        assert cli.main(["--cache-dir", str(target), "--quick",
                         "figure", "5", "oltp"]) == 0
        capsys.readouterr()
        assert cli.main(["--cache-dir", str(target),
                         "sweep-status"]) == 0
        out = capsys.readouterr().out
        assert "manifest:" in out
        assert "done" in out and "attempts" in out
        assert "cache:" in out

    def test_resilience_flags_configure_runner(self):
        assert cli.main(["--retries", "7", "--job-timeout", "120",
                         "--resume", "sweep-status"]) == 0
        state = repro.run.runner_state()
        assert state.policy.retries == 7
        assert state.policy.job_timeout == 120.0
        assert state.resume is True


class TestCheckCommands:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert cli.main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violations_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert cli.main(["lint", str(bad)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert cli.main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005"):
            assert code in out

    def test_check_exit_codes(self, monkeypatch):
        # The real suite runs in CI and tests/test_check_*; here we only
        # assert the CLI turns the suite verdict into the exit status.
        import repro.check
        monkeypatch.setattr(repro.check, "run_check_suite",
                            lambda verbose, self_test, durability: True)
        assert cli.main(["check"]) == 0
        monkeypatch.setattr(repro.check, "run_check_suite",
                            lambda verbose, self_test, durability: False)
        assert cli.main(["check", "--skip-mutations"]) == 1

    def test_validate_exit_codes(self, monkeypatch):
        import repro.core.validation as validation
        from repro.core.validation import ValidationResult
        monkeypatch.setattr(
            validation, "run_all",
            lambda verbose: [ValidationResult("x", True, "ok")])
        assert cli.main(["validate"]) == 0
        monkeypatch.setattr(
            validation, "run_all",
            lambda verbose: [ValidationResult("x", False, "bad")])
        assert cli.main(["validate"]) == 1
