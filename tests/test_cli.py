"""Tests for the command-line interface."""

import pytest

import repro.cli as cli
import repro.run


@pytest.fixture(autouse=True)
def tiny_sizes(monkeypatch, tmp_path):
    monkeypatch.setattr(cli, "_QUICK_SIZES",
                        {"oltp": (3000, 3000), "dss": (3000, 3000)})
    # The CLI enables the persistent cache by default; keep test runs
    # isolated in a throwaway directory and restore the previous state.
    previous = repro.run.runner_defaults()
    repro.run.configure(cache_dir=str(tmp_path / "cache"))
    yield
    repro.run._jobs, repro.run._cache = previous


class TestCli:
    def test_characterize(self, capsys):
        assert cli.main(["--quick", "characterize"]) == 0
        out = capsys.readouterr().out
        assert "OLTP" in out and "DSS" in out
        assert "l1d_miss_rate" in out

    def test_figure_5(self, capsys):
        assert cli.main(["--quick", "figure", "5", "oltp"]) == 0
        out = capsys.readouterr().out
        assert "uniprocessor" in out and "multiprocessor" in out

    def test_figure_7b(self, capsys):
        assert cli.main(["--quick", "figure", "7b"]) == 0
        out = capsys.readouterr().out
        assert "flush" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            cli.main(["--quick", "figure", "99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.main(["--quick"])
