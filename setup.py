"""Shim for environments without the `wheel` package (offline installs).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` with legacy setuptools.
"""

from setuptools import setup

setup()
