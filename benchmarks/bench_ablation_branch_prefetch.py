"""Section 4.1 ablation: path-predicting instruction prefetch.

The paper considered "a predictor that interfaces with a branch target
buffer to issue prefetches for the right path of the branch" for the
OLTP instruction misses that remain after a stream buffer, and concluded
the benefits "are likely to be limited by the accuracy of the path
prediction logic and may not justify the associated hardware costs,
especially when a stream buffer is already used".

This ablation measures the line-successor prefetcher alone and on top of
a 4-entry stream buffer, and checks the paper's conclusion: the
incremental gain over the stream buffer is small.
"""

from conftest import run_once

from repro import default_system, oltp_workload, run_simulation


def test_branch_directed_prefetch(benchmark, oltp_sizes):
    instr, warm = oltp_sizes

    def run():
        out = {}
        for label, params in (
                ("base", default_system()),
                ("nlp", default_system(branch_iprefetch=True)),
                ("sb4", default_system(stream_buffer_entries=4)),
                ("sb4+nlp", default_system(stream_buffer_entries=4,
                                           branch_iprefetch=True))):
            out[label] = run_simulation(params, oltp_workload(),
                                        instructions=instr, warmup=warm)
        return out

    results = run_once(benchmark, run)
    base = results["base"].cycles
    print("\n== Ablation: path-predicting I-prefetch (OLTP) ==")
    for label, result in results.items():
        node = None
        print(f"  {label:<8s} time {result.cycles / base:5.3f}  "
              f"l1i miss {result.miss_rates['l1i']:.3f}")

    nlp_gain = 1 - results["nlp"].cycles / base
    sb_gain = 1 - results["sb4"].cycles / base
    incremental = 1 - results["sb4+nlp"].cycles / results["sb4"].cycles
    print(f"  prefetcher alone: {nlp_gain:+.1%}; stream buffer: "
          f"{sb_gain:+.1%}; incremental over stream buffer: "
          f"{incremental:+.1%} (paper: limited)")

    # The predictor alone helps some of the instruction misses...
    assert results["nlp"].cycles <= base * 1.01
    # ...but the stream buffer captures the streaming majority, and the
    # predictor adds little on top (the paper's conclusion).
    assert sb_gain >= nlp_gain - 0.03
    assert incremental < 0.08
