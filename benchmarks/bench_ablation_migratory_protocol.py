"""Footnote 2 ablation: adaptive migratory coherence protocol.

The paper (footnote 2) argues that migratory-data protocol optimizations
like Stenstrom et al. [25] -- reads to migratory lines transfer exclusive
ownership, eliminating the later upgrade -- "will not provide any gains"
on the base system "since the write latency is already hidden" by the
relaxed consistency model.

This ablation implements the protocol and verifies the claim: under RC
the gain is negligible, while under straightforward SC (where writes are
on the critical path) the protocol shows a real benefit.
"""

from conftest import run_once

from repro import default_system, oltp_workload, run_simulation
from repro.params import ConsistencyModel


def _run(model, migratory_protocol, instr, warm):
    params = default_system(consistency=model,
                            migratory_protocol=migratory_protocol)
    return run_simulation(params, oltp_workload(),
                          instructions=instr, warmup=warm)


def test_migratory_protocol_footnote2(benchmark, oltp_sizes):
    instr, warm = oltp_sizes

    def run():
        return {
            ("RC", False): _run(ConsistencyModel.RC, False, instr, warm),
            ("RC", True): _run(ConsistencyModel.RC, True, instr, warm),
            ("SC", False): _run(ConsistencyModel.SC, False, instr, warm),
            ("SC", True): _run(ConsistencyModel.SC, True, instr, warm),
        }

    results = run_once(benchmark, run)
    print("\n== Footnote 2 ablation: adaptive migratory protocol ==")
    for (model, enabled), result in results.items():
        print(f"  {model} protocol={'on ' if enabled else 'off'} "
              f"{result.cycles:>10,} cycles "
              f"(upgrades: {result.coherence.upgrades})")

    rc_gain = 1 - results[("RC", True)].cycles / \
        results[("RC", False)].cycles
    sc_gain = 1 - results[("SC", True)].cycles / \
        results[("SC", False)].cycles
    print(f"  RC gain: {rc_gain:+.1%} (paper footnote 2: ~none for "
          f"hidden plain writes)")
    print(f"  SC gain: {sc_gain:+.1%}")
    print("  note: our residual gain comes from lock RMWs (test-and-set "
          "on migratory lock lines is a *blocking* write the exclusive "
          "grant turns into a hit), a path footnote 2 does not consider")

    # The protocol eliminates most upgrades on migratory lines.
    assert results[("RC", True)].coherence.upgrades < \
        results[("RC", False)].coherence.upgrades
    # Consistent with footnote 2, the gain for *hidden* writes is gone:
    # what remains is modest and attributable to blocking lock RMWs.
    assert abs(rc_gain) < 0.15
    assert abs(sc_gain) < 0.15
