"""Section 4.2 sharing-pattern characterization of OLTP.

Paper values: 88% of shared write accesses and 79% of dirty read misses
target migratory data; 70% of migratory write misses hit 3% of the
migratory lines; 75% of migratory references come from <10% of the static
instructions that ever issue one; dirty misses are ~50% of L2 misses.
"""

from conftest import BENCH_SIZES, run_once

from repro import default_system, oltp_workload, run_simulation


def test_sharing_characterization(benchmark):
    instr, warm = BENCH_SIZES["oltp"]
    result = run_once(benchmark, lambda: run_simulation(
        default_system(), oltp_workload(),
        instructions=instr, warmup=warm))
    report = result.sharing()

    print("\n== Section 4.2: OLTP sharing characterization ==")
    print(f"  dirty reads migratory:      "
          f"{report.migratory_dirty_read_fraction:.2f} (paper: 0.79)")
    print(f"  shared writes migratory:    "
          f"{report.migratory_shared_write_fraction:.2f} (paper: 0.88)")
    print(f"  line fraction for 70% of migratory write misses: "
          f"{report.top_line_fraction(0.70):.2f} (paper: 0.03)")
    print(f"  PC fraction for 75% of migratory refs: "
          f"{report.top_pc_fraction(0.75):.2f} (paper: < 0.10)")
    print(f"  migratory lines observed:   {report.migratory_lines}")
    print(f"  hot migratory PCs:          {len(report.hot_pcs)}")

    c = result.coherence
    total_l2_read_misses = c.reads_local + c.reads_remote + c.reads_dirty
    dirty_share = c.reads_dirty / max(1, total_l2_read_misses)
    print(f"  dirty share of L2 read misses: {dirty_share:.2f} "
          f"(paper: ~0.50)")

    # Most dirty reads and shared writes are migratory.
    assert report.migratory_dirty_read_fraction > 0.5
    assert report.migratory_shared_write_fraction > 0.6
    # Migratory references concentrate on few lines and few PCs.
    assert report.top_line_fraction(0.70) < 0.6
    assert report.top_pc_fraction(0.75) < 0.5
    # Dirty misses are a large share of L2 misses.
    assert dirty_share > 0.25
