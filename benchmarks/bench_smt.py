"""Section 5 extension: intra-thread vs inter-thread parallelism (SMT).

The paper's discussion contrasts its ILP results with Lo et al. [13]:
simultaneous multithreading hides OLTP's memory stalls with other
threads' work (gains as high as 3x), while DSS -- already rich in
intra-thread parallelism (2.6x from ILP) -- gains less from the extra
contexts.

This benchmark runs both workloads on the base 4-way OOO processor and
on a 4-context SMT version of it, and checks the paper's relationship:
SMT speedup for OLTP exceeds its speedup for DSS.
"""

import dataclasses

from conftest import run_once

from repro import default_system, dss_workload, oltp_workload, \
    run_simulation


def _smt(params, contexts):
    return params.replace(processor=dataclasses.replace(
        params.processor, smt_contexts=contexts))


def test_smt_helps_oltp_more(benchmark, oltp_sizes, dss_sizes):
    oltp_instr, oltp_warm = oltp_sizes
    dss_instr, dss_warm = dss_sizes
    base = default_system()
    smt4 = _smt(base, 4)

    def run():
        return {
            ("oltp", "base"): run_simulation(
                base, oltp_workload(), oltp_instr, oltp_warm),
            ("oltp", "smt4"): run_simulation(
                smt4, oltp_workload(), oltp_instr, oltp_warm),
            ("dss", "base"): run_simulation(
                base, dss_workload(), dss_instr, dss_warm),
            ("dss", "smt4"): run_simulation(
                smt4, dss_workload(), dss_instr, dss_warm),
        }

    results = run_once(benchmark, run)
    speedups = {}
    print("\n== Section 5: SMT (4 contexts) vs base OOO ==")
    for workload in ("oltp", "dss"):
        b = results[(workload, "base")].cycles
        s = results[(workload, "smt4")].cycles
        speedups[workload] = b / s
        print(f"  {workload}: base {b:,} cycles, smt4 {s:,} cycles "
              f"-> {b / s:.2f}x")
    print("  (paper / Lo et al.: SMT gains are larger for OLTP, whose "
        "memory stalls leave the pipeline idle; DSS already exploits "
        "intra-thread ILP)")

    # SMT helps OLTP substantially...
    assert speedups["oltp"] > 1.15
    # ...and helps OLTP more than DSS.
    assert speedups["oltp"] > speedups["dss"]
