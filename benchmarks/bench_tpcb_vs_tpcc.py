"""Section 2.1.1 validation: TPC-B vs TPC-C behaviour.

The paper justifies using TPC-B over TPC-C: "our performance monitoring
experiments with TPC-B and TPC-C show similar processor and memory
system behavior, with TPC-B exhibiting somewhat worse memory system
behavior than TPC-C.  As a result, we expect changes in processor and
memory system features to affect both benchmarks in similar ways."

This benchmark runs both OLTP variants on the base system and checks
the claim: similar IPC and miss rates, with TPC-B at least as
communication-heavy per instruction.
"""

from conftest import run_once

from repro import default_system, run_simulation
from repro.core.workloads import oltp_workload, tpcc_workload


def test_tpcb_vs_tpcc(benchmark, oltp_sizes):
    instr, warm = oltp_sizes

    def run():
        return {
            "tpcb": run_simulation(default_system(), oltp_workload(),
                                   instructions=instr, warmup=warm),
            "tpcc": run_simulation(default_system(), tpcc_workload(),
                                   instructions=instr, warmup=warm),
        }

    results = run_once(benchmark, run)
    print("\n== Section 2.1.1: TPC-B vs TPC-C ==")
    rows = {}
    for name, r in results.items():
        dirty_rate = r.coherence.reads_dirty / r.instructions
        rows[name] = dirty_rate
        print(f"  {name}: IPC {r.ipc:.2f}  "
              f"L1I {r.miss_rates['l1i']:.3f}  "
              f"L1D {r.miss_rates['l1d']:.3f}  "
              f"L2 {r.miss_rates['l2']:.3f}  "
              f"dirty/instr {dirty_rate:.5f}")

    b, c = results["tpcb"], results["tpcc"]
    # Similar processor behaviour...
    assert abs(b.ipc - c.ipc) / b.ipc < 0.35
    # ...and similar memory behaviour...
    assert abs(b.miss_rates["l1d"] - c.miss_rates["l1d"]) < 0.08
    assert abs(b.miss_rates["l1i"] - c.miss_rates["l1i"]) < 0.04
    # ...with TPC-B at least as communication-heavy (paper: "somewhat
    # worse memory system behavior").
    assert rows["tpcb"] >= rows["tpcc"] * 0.8

    # Both are dominated by migratory sharing.
    assert c.coherence.dirty_read_fraction_migratory > 0.5
