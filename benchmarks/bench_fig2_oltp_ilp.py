"""Figure 2: impact of ILP features on OLTP performance.

(a) in-order vs out-of-order across issue widths,
(b) instruction window size,
(c) number of MSHRs (outstanding misses),
(d)-(g) MSHR occupancy distributions.

Paper shapes checked: OOO 4-way beats in-order 1-way by well over 1.2x
(paper: ~1.5x); window gains level off past 64; two MSHRs capture most of
the OLTP benefit; read-miss overlap is low (dependent loads).
"""

from conftest import run_once

from repro.core.figures import (
    figure_ilp_issue_width,
    figure_ilp_mshrs,
    figure_ilp_window,
)


def test_figure2a_issue_width(benchmark, oltp_sizes):
    instr, warm = oltp_sizes
    fig = run_once(benchmark, lambda: figure_ilp_issue_width(
        "oltp", instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    speedup = fig.normalized("inorder-1w") / fig.normalized("ooo-4w")
    print(f"  OOO-4w speedup over in-order-1w: {speedup:.2f}x "
          f"(paper: ~1.5x)")
    assert speedup > 1.2
    # OOO beats in-order at equal width.
    for width in (1, 2, 4):
        assert fig.normalized(f"ooo-{width}w") < \
            fig.normalized(f"inorder-{width}w")
    # Multiple issue helps in-order too, but less.
    assert fig.normalized("inorder-8w") < fig.normalized("inorder-1w")


def test_figure2b_window_size(benchmark, oltp_sizes):
    instr, warm = oltp_sizes
    fig = run_once(benchmark, lambda: figure_ilp_window(
        "oltp", instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    # Right-hand side of Figure 2(b): read-stall magnification.
    from repro.stats.breakdown import CATEGORY_NAMES, READ_CATEGORIES
    print("  read-stall decomposition (fraction of that bar's time):")
    for row in fig.rows:
        bd = row.result.breakdown
        parts = " ".join(
            f"{CATEGORY_NAMES[c].replace('read_', '')}={bd.cycles[c] / bd.total:.3f}"
            for c in READ_CATEGORIES)
        print(f"    {row.label:<8s} {parts}")

    # Bigger windows help, but gains level off beyond 64 (paper 3.1.1).
    assert fig.normalized("win-64") < fig.normalized("win-16")
    gain_16_64 = fig.normalized("win-16") - fig.normalized("win-64")
    gain_64_128 = fig.normalized("win-64") - fig.normalized("win-128")
    print(f"  gain 16->64: {gain_16_64:.3f}, 64->128: {gain_64_128:.3f}")
    assert gain_64_128 < gain_16_64
    # A large fraction of the window-size improvement comes from the L2
    # component (paper: the read-stall magnification of Figure 2(b)).
    from repro.stats.breakdown import READ_L2
    l2_16 = fig.row("win-16").result.breakdown.cycles[READ_L2]
    l2_128 = fig.row("win-128").result.breakdown.cycles[READ_L2]
    assert l2_128 < l2_16


def test_figure2cdefg_mshrs(benchmark, oltp_sizes):
    instr, warm = oltp_sizes
    fig = run_once(benchmark, lambda: figure_ilp_mshrs(
        "oltp", instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    # Two outstanding misses achieve most of the OLTP benefit.
    gain_1_2 = fig.normalized("mshr-1") - fig.normalized("mshr-2")
    gain_2_8 = fig.normalized("mshr-2") - fig.normalized("mshr-8")
    print(f"  gain 1->2 MSHRs: {gain_1_2:.3f}, 2->8: {gain_2_8:.3f} "
          f"(paper: 2 MSHRs suffice)")
    assert fig.normalized("mshr-2") <= fig.normalized("mshr-1") + 0.02
    assert gain_1_2 >= gain_2_8 - 0.02

    for key in ("l1d_occupancy_all", "l1d_occupancy_reads",
                "l2_occupancy_all", "l2_occupancy_reads"):
        dist = fig.extras[key]
        row = " ".join(f">={n}:{frac:.2f}" for n, frac in dist.items())
        print(f"  {key}: {row}")
    # Read misses overlap little (dependent loads, paper Figure 2(f)-(g));
    # write misses supply the overlap.
    reads = fig.extras["l1d_occupancy_reads"]
    alls = fig.extras["l1d_occupancy_all"]
    assert reads[2] <= alls[2] + 0.05
    assert reads[4] < 0.35
