"""Section 5 ablation: very large, slower off-chip L1 caches.

The paper notes that some HP processors (PA-8200) used extremely large
off-chip first-level caches, "which may be targeting the large footprints
in database workloads.  These very large first level caches make the use
of out-of-order execution techniques critical for tolerating the
correspondingly longer cache access times."

This ablation builds that design point -- 4x larger L1s with a 4-cycle
access -- and checks both halves of the claim on OLTP:

* the large L1 absorbs much of the instruction/data footprint
  (fewer L1 misses), and
* out-of-order execution tolerates the longer hit latency far better
  than in-order issue does.
"""

import dataclasses

from conftest import run_once

from repro import default_system, oltp_workload, run_simulation


def _large_l1(params):
    return params.replace(
        l1i=dataclasses.replace(params.l1i,
                                size_bytes=params.l1i.size_bytes * 4,
                                hit_time=4),
        l1d=dataclasses.replace(params.l1d,
                                size_bytes=params.l1d.size_bytes * 4,
                                hit_time=4))


def _inorder(params):
    return params.replace(processor=dataclasses.replace(
        params.processor, out_of_order=False))


def test_large_slow_l1(benchmark, oltp_sizes):
    instr, warm = oltp_sizes

    def run():
        out = {}
        for label, params in (
                ("ooo-smallL1", default_system()),
                ("ooo-bigL1", _large_l1(default_system())),
                ("inorder-smallL1", _inorder(default_system())),
                ("inorder-bigL1", _inorder(_large_l1(default_system())))):
            out[label] = run_simulation(params, oltp_workload(),
                                        instructions=instr, warmup=warm)
        return out

    results = run_once(benchmark, run)
    print("\n== Ablation: large slow off-chip L1 (OLTP) ==")
    for label, r in results.items():
        print(f"  {label:<18s} {r.cycles:>10,} cycles  "
              f"l1i {r.miss_rates['l1i']:.3f}  "
              f"l1d {r.miss_rates['l1d']:.3f}")

    # The big L1 absorbs footprint: fewer misses at both L1s.
    assert results["ooo-bigL1"].miss_rates["l1d"] < \
        results["ooo-smallL1"].miss_rates["l1d"]
    assert results["ooo-bigL1"].miss_rates["l1i"] <= \
        results["ooo-smallL1"].miss_rates["l1i"] + 0.005

    # OOO tolerates the 4-cycle hit time better than in-order: the
    # big-L1 penalty (relative slowdown from slower hits, net of the
    # miss-rate win) is smaller -- or the win larger -- under OOO.
    ooo_ratio = results["ooo-bigL1"].cycles / \
        results["ooo-smallL1"].cycles
    inorder_ratio = results["inorder-bigL1"].cycles / \
        results["inorder-smallL1"].cycles
    print(f"  big-L1 time ratio: OOO {ooo_ratio:.3f}, "
          f"in-order {inorder_ratio:.3f} (paper: OOO critical for "
          f"tolerating longer L1 hit times)")
    assert ooo_ratio < inorder_ratio + 0.02
