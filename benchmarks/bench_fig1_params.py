"""Figure 1: default system parameters.

Prints the parameter table and checks the full-size configuration against
the values published in the paper.  (A configuration table, not a timing
experiment -- the benchmark wrapper just times its construction.)
"""

from conftest import run_once

from repro.params import paper_system


def test_figure1_parameter_table(benchmark):
    params = run_once(benchmark, paper_system)

    print("\n== Figure 1: default system parameters ==")
    rows = [
        ("Issue width", params.processor.issue_width, 4),
        ("Instruction window size", params.processor.window_size, 64),
        ("Integer ALUs", params.processor.int_alus, 2),
        ("FP units", params.processor.fp_alus, 2),
        ("Address generation units", params.processor.addr_gen_units, 2),
        ("Simultaneous speculated branches",
         params.processor.max_spec_branches, 8),
        ("Memory queue size", params.processor.mem_queue_size, 32),
        ("BTB entries", params.bpred.btb_entries, 512),
        ("RAS entries", params.bpred.ras_entries, 32),
        ("Cache line size", params.l1d.line_size, 64),
        ("L1 D-cache size (KB)", params.l1d.size_bytes // 1024, 128),
        ("L1 I-cache size (KB)", params.l1i.size_bytes // 1024, 128),
        ("L1 associativity", params.l1d.assoc, 2),
        ("L1 request ports", params.l1d.request_ports, 2),
        ("L1 hit time", params.l1d.hit_time, 1),
        ("L2 size (MB)", params.l2.size_bytes // (1024 * 1024), 8),
        ("L2 associativity", params.l2.assoc, 4),
        ("L2 hit time", params.l2.hit_time, 20),
        ("MSHRs per cache", params.l1d.mshrs, 8),
        ("Data TLB entries", params.dtlb.entries, 128),
        ("Instruction TLB entries", params.itlb.entries, 128),
        ("Local read latency", params.latencies.local_read, 100),
    ]
    for name, value, expected in rows:
        print(f"  {name:<36s} {value:>8}   (paper: {expected})")
        assert value == expected

    remote_min = (params.latencies.remote_read_base
                  + params.latencies.remote_read_per_hop)
    remote_max = (params.latencies.remote_read_base
                  + 2 * params.latencies.remote_read_per_hop)
    print(f"  {'Remote read latency range':<36s} "
          f"{remote_min}-{remote_max}   (paper: 160-180)")
    assert 155 <= remote_min and remote_max <= 185

    c2c_min = (params.latencies.cache_to_cache_base
               + params.latencies.cache_to_cache_per_hop)
    c2c_max = (params.latencies.cache_to_cache_base
               + 3 * params.latencies.cache_to_cache_per_hop)
    print(f"  {'Cache-to-cache latency range':<36s} "
          f"{c2c_min}-{c2c_max}   (paper: 280-310)")
    assert 275 <= c2c_min and c2c_max <= 315
