"""Figure 4: factors limiting OLTP performance.

Bars: base OOO system, infinite functional units, perfect branch
prediction, perfect I-cache, and a 128-entry window with everything
perfect.  Paper shapes: functional units are NOT a bottleneck; perfect
branch prediction gives only a small gain (~6%); the perfect I-cache gives
the largest single gain; the all-perfect system leaves dirty misses as
the dominant component.
"""

from conftest import run_once

from repro.core.figures import figure4


def test_figure4_limits(benchmark, oltp_sizes):
    instr, warm = oltp_sizes
    fig = run_once(benchmark,
                   lambda: figure4(instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    base = fig.normalized("base")
    fu = fig.normalized("infinite-fu")
    bpred = fig.normalized("perfect-bpred")
    icache = fig.normalized("perfect-icache")
    best = fig.normalized("128win-all-perfect")

    print(f"  infinite FU gain:   {1 - fu / base:6.1%} (paper: ~0%)")
    print(f"  perfect bpred gain: {1 - bpred / base:6.1%} (paper: ~6%)")
    print(f"  perfect icache gain:{1 - icache / base:6.1%} "
          f"(paper: largest single gain)")
    print(f"  all-perfect gain:   {1 - best / base:6.1%}")

    # Functional units are not a bottleneck for OLTP.
    assert abs(fu - base) < 0.05
    # Perfect I-cache is the largest single-factor gain.
    assert icache < fu and icache < bpred
    # The combined ideal system is the best configuration.
    assert best <= icache + 0.02

    # In the all-perfect system, dirty misses dominate the remaining
    # read stall time (paper: "leaving dirty miss latencies as the
    # dominant component").
    bd = fig.row("128win-all-perfect").result.breakdown
    from repro.stats.breakdown import READ_DIRTY
    dirty = bd.cycles[READ_DIRTY]
    others = [c for i, c in enumerate(bd.cycles)
              if i != READ_DIRTY and i != 0]  # exclude busy
    print(f"  all-perfect: dirty stall share = {dirty / bd.total:.2f}")
    assert dirty == max(others + [dirty])
