"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the rows the paper reports.  Run sizes can be adjusted with environment
variables for quicker smoke runs:

    REPRO_BENCH_OLTP_INSTR / REPRO_BENCH_OLTP_WARMUP
    REPRO_BENCH_DSS_INSTR  / REPRO_BENCH_DSS_WARMUP
"""

import os

import pytest


def _env(name, default):
    return int(os.environ.get(name, default))


#: (instructions, warmup) used by the benchmarks, per workload.  Smaller
#: than the library defaults so the full suite finishes in minutes.
BENCH_SIZES = {
    "oltp": (_env("REPRO_BENCH_OLTP_INSTR", 60_000),
             _env("REPRO_BENCH_OLTP_WARMUP", 220_000)),
    "dss": (_env("REPRO_BENCH_DSS_INSTR", 40_000),
            _env("REPRO_BENCH_DSS_WARMUP", 200_000)),
}


@pytest.fixture
def oltp_sizes():
    return BENCH_SIZES["oltp"]


@pytest.fixture
def dss_sizes():
    return BENCH_SIZES["dss"]


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
