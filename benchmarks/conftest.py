"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures and prints
the rows the paper reports.  Warmup deliberately *exceeds* measurement
for both workloads (e.g. 220K warmup vs 60K measured for OLTP): the
scaled caches, directory and predictors need the long warmup to reach
steady state, and only then are the short measured statistics stable
enough for the paper's shape checks.  Run sizes can be adjusted with
environment variables for quicker smoke runs:

    REPRO_BENCH_OLTP_INSTR / REPRO_BENCH_OLTP_WARMUP
    REPRO_BENCH_DSS_INSTR  / REPRO_BENCH_DSS_WARMUP

``REPRO_BENCH_JOBS`` sets the worker-process count of the experiment
runner (``repro.run``): every figure sweep in the suite then fans its
independent simulations out over that many processes.  The default of 1
keeps the historical serial behaviour.
"""

import os

import pytest

import repro.run


def _env(name, default):
    return int(os.environ.get(name, default))


#: (instructions, warmup) used by the benchmarks, per workload.  Smaller
#: than the library defaults so the full suite finishes in minutes.
BENCH_SIZES = {
    "oltp": (_env("REPRO_BENCH_OLTP_INSTR", 60_000),
             _env("REPRO_BENCH_OLTP_WARMUP", 220_000)),
    "dss": (_env("REPRO_BENCH_DSS_INSTR", 40_000),
            _env("REPRO_BENCH_DSS_WARMUP", 200_000)),
}

#: Worker processes for independent simulations (1 = serial).
BENCH_JOBS = _env("REPRO_BENCH_JOBS", 1)

repro.run.configure(jobs=BENCH_JOBS)


@pytest.fixture
def oltp_sizes():
    return BENCH_SIZES["oltp"]


@pytest.fixture
def dss_sizes():
    return BENCH_SIZES["dss"]


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
