"""Section 4.1 ablation: 128-byte cache lines vs an instruction stream
buffer.

The paper notes that doubling the L1<->L2 transfer unit to 128 bytes
"can also achieve reductions in miss rates comparable to the stream
buffers", but the stream buffer adapts to longer streams without longer
access times or cache pollution.  This ablation runs base 64B lines, a
4-entry stream buffer, and 128B lines, and compares I-miss rates and
execution time.
"""

import dataclasses

from conftest import run_once

from repro import default_system, oltp_workload, run_simulation


def _with_line_size(params, line_size):
    return params.replace(
        l1i=dataclasses.replace(params.l1i, line_size=line_size),
        l1d=dataclasses.replace(params.l1d, line_size=line_size),
        l2=dataclasses.replace(params.l2, line_size=line_size))


def test_line_size_vs_stream_buffer(benchmark, oltp_sizes):
    instr, warm = oltp_sizes

    def run():
        out = {}
        for label, params in (
                ("base-64B", default_system()),
                ("streambuf-4", default_system(stream_buffer_entries=4)),
                ("lines-128B", _with_line_size(default_system(), 128))):
            out[label] = run_simulation(params, oltp_workload(),
                                        instructions=instr, warmup=warm)
        return out

    results = run_once(benchmark, run)
    base = results["base-64B"]
    print("\n== Ablation: 128B lines vs stream buffer (OLTP) ==")
    for label, result in results.items():
        print(f"  {label:<14s} time {result.cycles / base.cycles:5.3f}  "
              f"l1i miss {result.miss_rates['l1i']:.3f}  "
              f"l1d miss {result.miss_rates['l1d']:.3f}")

    # Both techniques cut the L1I miss rate relative to the base system.
    assert results["streambuf-4"].miss_rates["l1i"] < \
        base.miss_rates["l1i"]
    assert results["lines-128B"].miss_rates["l1i"] < \
        base.miss_rates["l1i"]
    # And both beat the base system end to end.
    assert results["streambuf-4"].cycles < base.cycles
    assert results["lines-128B"].cycles < base.cycles * 1.02
