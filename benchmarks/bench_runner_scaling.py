"""Runner scaling: serial vs trace arenas vs fork-server pool vs cache.

Runs a small OLTP configuration sweep four ways and records the wall
times in ``BENCH_runner.json`` at the repo root so the perf trajectory
of the experiment harness itself is tracked across PRs:

1. **serial cold** -- generator path, no arenas (the baseline);
2. **arena serial** -- same sweep with trace arenas materialized and
   replayed in-process (``trace_gen_s`` is reported separately from
   ``sim_s`` so the arena win is attributable);
3. **parallel** -- fork-server pool with warm arenas and batched
   dispatch (``REPRO_BENCH_INSTR``/``REPRO_BENCH_WARMUP`` shrink the
   per-job size for smoke runs; ``REPRO_BENCH_JOBS`` sets workers);
4. **warm cache** -- serial rerun against the now-warm result cache.

A fifth serial pass runs the same sweep on the ``fast`` execution
backend (event-driven tick skipping, see ARCHITECTURE.md "Execution
backends"); its wall time and speedup over the reference backend are
recorded as ``fast_serial_s`` / ``fast_speedup`` and its results must
be bit-identical to the reference baseline.  A companion pass does the
same for the ``batch`` backend (dense hot-window rounds with bulk stat
retirement on top of the fast loop), recorded as ``batch_serial_s`` /
``batch_speedup`` / ``batch_backend_identical``; both speedups are
gating, with env-overridable floors (``REPRO_BENCH_FAST_FLOOR``,
``REPRO_BENCH_BATCH_FLOOR``).

A sixth pass drives the sweep through the execution fabric with two
loopback workers (``dispatch="fabric"``, ``workers=("spawn:2",)``)
and records ``fabric_loopback_s`` / ``fabric_loopback_speedup``.
Identity with the serial baseline is asserted; the speedup itself is
**informational only** (``fabric_loopback_gating: false``) -- at
smoke-test job sizes the socket round-trips and worker spawn cost
dominate, so loopback wall time tracks coordination overhead, not the
multi-host win the fabric exists for.

Checked invariants: all paths return bit-identical results, and the
warm-cache rerun is at least 5x faster than the cold serial run.
Parallel speedup expectations scale with the cores actually available
(``os.sched_getaffinity``): with 4+ cores the pool must beat serial by
1.5x, with 2-3 cores it must at least not lose.  On a single effective
core real parallelism is impossible, so ``parallel_speedup`` is
reported as ``null`` and ``parallel_regression`` as ``"skipped"``
rather than mislabelling the inevitable pool overhead a regression.
"""

import dataclasses
import json
import multiprocessing
import os
from pathlib import Path

from conftest import BENCH_JOBS

from repro.params import default_system
from repro.run import DEFAULT_CHECKPOINT_EVERY, MODEL_VERSION, JobSpec, \
    ResultCache, WorkloadSpec, run_many

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runner.json"

# Checkpointing at the default interval may cost at most this fraction
# of simulation time; emitted into BENCH_runner.json so dashboards can
# plot overhead against its budget.
CHECKPOINT_BUDGET = 0.08


def _effective_cores() -> int:
    """Cores this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return multiprocessing.cpu_count()


def _sweep_specs(instructions=None, warmup=None):
    """A small but representative sweep: window sizes x two seeds."""
    instructions = instructions if instructions is not None else \
        int(os.environ.get("REPRO_BENCH_INSTR", "6000"))
    warmup = warmup if warmup is not None else \
        int(os.environ.get("REPRO_BENCH_WARMUP", "6000"))
    base = default_system()
    specs = []
    for window in (16, 32, 64):
        params = base.replace(processor=dataclasses.replace(
            base.processor, window_size=window))
        for seed in (0, 1):
            specs.append(JobSpec(params, WorkloadSpec("oltp"),
                                 instructions=instructions,
                                 warmup=warmup, seed=seed))
    return specs


def _assert_identical(reference, other, label):
    assert [r.to_dict() for r in other.results] == \
        [r.to_dict() for r in reference.results], \
        f"{label} results diverged from the serial generator path"


def test_runner_scaling(tmp_path):
    specs = _sweep_specs()
    cache = ResultCache(tmp_path / "cache")
    trace_dir = str(tmp_path / "traces")
    cores = _effective_cores()
    jobs = BENCH_JOBS if BENCH_JOBS > 1 else max(2, cores)

    # The fast backend must be exercised with cache=None: `backend` is
    # ephemeral (excluded from job fingerprints precisely because the
    # results are byte-identical), so a shared cache would short-circuit
    # the very simulation this pass is timing.
    fast_specs = [dataclasses.replace(
        s, params=s.params.replace(backend="fast")) for s in specs]
    batch_specs = [dataclasses.replace(
        s, params=s.params.replace(backend="batch")) for s in specs]

    cold = run_many(specs, jobs=1, cache=cache, arenas="off")
    fast = run_many(fast_specs, jobs=1, cache=None, arenas="off")
    batch = run_many(batch_specs, jobs=1, cache=None, arenas="off")
    arena_serial = run_many(specs, jobs=1, cache=None, arenas="auto",
                            trace_dir=trace_dir)
    parallel = run_many(specs, jobs=jobs, cache=None, arenas="auto",
                        trace_dir=trace_dir)
    fabric = run_many(specs, jobs=jobs, cache=None, arenas="auto",
                      trace_dir=trace_dir, dispatch="fabric",
                      workers=("spawn:2",))
    warm = run_many(specs, jobs=1, cache=cache, arenas="off")

    # All paths must agree bit-for-bit with the generator baseline.
    _assert_identical(cold, fast, "fast backend")
    _assert_identical(cold, batch, "batch backend")
    _assert_identical(cold, arena_serial, "arena replay")
    _assert_identical(cold, parallel, "fork-server pool")
    _assert_identical(cold, fabric, "fabric loopback")
    _assert_identical(cold, warm, "warm cache")
    assert cold.cache_misses == len(specs)
    assert warm.cache_hits == len(specs)
    assert arena_serial.arena_jobs > 0, \
        "arena path never engaged (nothing was materialized)"

    warm_speedup = cold.wall_time / max(warm.wall_time, 1e-9)
    arena_speedup = cold.wall_time / max(arena_serial.wall_time, 1e-9)
    fast_speedup = cold.wall_time / max(fast.wall_time, 1e-9)
    batch_speedup = cold.wall_time / max(batch.wall_time, 1e-9)
    fabric_speedup = cold.wall_time / max(fabric.wall_time, 1e-9)
    if cores > 1:
        parallel_speedup = cold.wall_time / max(parallel.wall_time, 1e-9)
        regression = parallel_speedup < 1.0
    else:
        # Real parallelism is impossible on one effective core; the
        # pool's fork/IPC overhead is expected, not a regression.
        parallel_speedup = None
        regression = "skipped"
    record = {
        "model_version": MODEL_VERSION,
        "sweep_jobs": len(specs),
        "instructions_per_job": specs[0].instructions
        + specs[0].warmup,
        "pool_workers": parallel.jobs,
        "effective_cores": cores,
        "fell_back_to_serial": parallel.fell_back_to_serial,
        "serial_cold_s": round(cold.wall_time, 3),
        "fast_serial_s": round(fast.wall_time, 3),
        "batch_serial_s": round(batch.wall_time, 3),
        "arena_serial_s": round(arena_serial.wall_time, 3),
        "trace_gen_s": round(arena_serial.trace_gen_s, 3),
        "sim_s": round(arena_serial.sim_s, 3),
        "parallel_s": round(parallel.wall_time, 3),
        "fabric_loopback_s": round(fabric.wall_time, 3),
        "warm_cache_s": round(warm.wall_time, 3),
        "arena_serial_speedup": round(arena_speedup, 2),
        "fast_speedup": round(fast_speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        "parallel_speedup": None if parallel_speedup is None
        else round(parallel_speedup, 2),
        "parallel_regression": regression,
        # Loopback fabric wall time measures socket/spawn coordination
        # overhead at smoke sizes, not the multi-host win; tracked but
        # never asserted, and dashboards must not gate on it.
        "fabric_loopback_speedup": round(fabric_speedup, 2),
        "fabric_loopback_gating": False,
        "fabric_dispatch": fabric.dispatch,
        "arena_generator_identical": True,   # asserted above
        "fast_backend_identical": True,      # asserted above
        "batch_backend_identical": True,     # asserted above
        "fabric_loopback_identical": True,   # asserted above
        "warm_cache_speedup": round(warm_speedup, 2),
        "serial_throughput_instr_per_s": round(cold.throughput),
        "fast_throughput_instr_per_s": round(fast.throughput),
        "batch_throughput_instr_per_s": round(batch.throughput),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    verdict = " [REGRESSION: pool slower than serial]" \
        if regression is True else ""
    parallel_txt = "skipped (1 core)" if parallel_speedup is None \
        else f"{parallel_speedup:.2f}x"
    print(f"\nserial {cold.wall_time:.2f}s | "
          f"fast backend {fast.wall_time:.2f}s ({fast_speedup:.2f}x) | "
          f"batch backend {batch.wall_time:.2f}s "
          f"({batch_speedup:.2f}x) | "
          f"arena serial {arena_serial.wall_time:.2f}s "
          f"({arena_speedup:.2f}x, trace gen "
          f"{arena_serial.trace_gen_s:.2f}s + sim "
          f"{arena_serial.sim_s:.2f}s) | "
          f"parallel({parallel.jobs}) {parallel.wall_time:.2f}s "
          f"({parallel_txt}){verdict} | "
          f"fabric loopback {fabric.wall_time:.2f}s "
          f"({fabric_speedup:.2f}x via {fabric.dispatch}, "
          f"non-gating) | "
          f"warm cache {warm.wall_time:.3f}s ({warm_speedup:.0f}x) | "
          f"{cores} core(s)")

    assert warm_speedup >= 5.0, (
        f"warm cache rerun only {warm_speedup:.1f}x faster than cold")
    # Floor for the fast backend, calibrated to what certified tick
    # skipping actually buys on this sweep (see ARCHITECTURE.md: the
    # honest win is bounded by the ~1 active tick per instruction that
    # must still run the full pipeline model -- ~1.25x at benchmark
    # sizes, ~1.1x at CI smoke sizes where setup overhead dilutes it).
    # The floor guards against a true regression (a fast backend that
    # stopped skipping would land at ~1.0x); override for slower or
    # noisier hosts via REPRO_BENCH_FAST_FLOOR.
    fast_floor = float(os.environ.get("REPRO_BENCH_FAST_FLOOR", "1.05"))
    assert fast_speedup >= fast_floor, (
        f"fast backend only {fast_speedup:.2f}x over reference "
        f"(floor {fast_floor}x)")
    # The batch backend's rounds only engage on hot windows, so at worst
    # it degrades to the fast loop plus (backed-off) planning cost; the
    # floor asserts it never loses to the reference baseline outright.
    # The issue's 5x aspiration is documented as unreachable in pure
    # Python (ARCHITECTURE.md "Execution backends"): honest measured
    # wins at bench sizes are ~1.2-1.5x, within host noise of the fast
    # backend.  Override via REPRO_BENCH_BATCH_FLOOR on noisy hosts.
    batch_floor = float(os.environ.get("REPRO_BENCH_BATCH_FLOOR",
                                       "1.0"))
    assert batch_speedup >= batch_floor, (
        f"batch backend only {batch_speedup:.2f}x over reference "
        f"(floor {batch_floor}x)")
    if cores >= 4 and not parallel.fell_back_to_serial:
        assert parallel_speedup >= 1.5, (
            f"pool speedup {parallel_speedup:.2f}x < 1.5x "
            f"with {cores} cores")
    elif cores >= 2 and not parallel.fell_back_to_serial:
        assert parallel_speedup >= 1.0, (
            f"pool slower than serial ({parallel_speedup:.2f}x) "
            f"with {cores} cores")


def test_checkpoint_overhead(tmp_path):
    """Checkpoint writes at the default interval cost <= 5% of sim time.

    One job long enough to cross a couple of default-interval boundaries
    is run three ways: checkpoints off, at ``DEFAULT_CHECKPOINT_EVERY``,
    and at a deliberately tiny interval.  The default-interval overhead
    (``checkpoint_s / sim_s``) is asserted under budget; the
    tiny-interval ratio is a *deliberate worst-case probe* -- an
    interval ~50x denser than anyone runs in practice -- recorded so
    the cost curve stays visible across PRs.  It is emitted under an
    explicit non-gating label (``checkpoint_tiny_gating: false`` plus
    a ``checkpoint_tiny_label`` note) so a dashboard scanning the
    bench JSON cannot mistake a 1.1x ratio here for a regression
    against the 8% budget, which applies to the default interval only.
    All three runs must return bit-identical results.

    Budget history: the original robustness plan set 5% when sim ran at
    ~17k instr/s.  The execution-backend PR sped the simulator itself up
    ~1.7x while snapshot cost (deepcopy-bound) stayed flat, so the same
    absolute checkpoint cost is now a larger fraction of a smaller
    denominator; the budget is recalibrated to 8% of the faster sim,
    which is still *less* absolute overhead than the old 5%.
    """
    instructions = int(os.environ.get("REPRO_BENCH_CKPT_INSTR",
                                      str(2 * DEFAULT_CHECKPOINT_EVERY
                                          + 10_000)))
    spec = JobSpec(default_system(), WorkloadSpec("oltp"),
                   instructions=instructions, warmup=0, seed=0)

    def once(label, every):
        cache = ResultCache(tmp_path / f"cache-{label}")
        return run_many([spec], jobs=1, cache=cache, arenas="off",
                        checkpoint_every=every)

    off = once("off", 0)
    default = once("default", DEFAULT_CHECKPOINT_EVERY)
    tiny_every = max(1_000, instructions // 50)
    tiny = once("tiny", tiny_every)

    _assert_identical(off, default, "default-interval checkpointing")
    _assert_identical(off, tiny, "tiny-interval checkpointing")

    default_ratio = default.checkpoint_s / max(default.sim_s, 1e-9)
    tiny_ratio = tiny.checkpoint_s / max(tiny.sim_s, 1e-9)
    record = json.loads(BENCH_JSON.read_text()) \
        if BENCH_JSON.exists() else {"model_version": MODEL_VERSION}
    record.update({
        "checkpoint_instr": instructions,
        "checkpoint_budget": CHECKPOINT_BUDGET,
        "checkpoint_default_every": DEFAULT_CHECKPOINT_EVERY,
        "checkpoint_default_s": round(default.checkpoint_s, 3),
        "checkpoint_default_overhead": round(default_ratio, 4),
        "checkpoint_tiny_every": tiny_every,
        "checkpoint_tiny_s": round(tiny.checkpoint_s, 3),
        "checkpoint_tiny_overhead": round(tiny_ratio, 4),
        "checkpoint_tiny_gating": False,
        "checkpoint_tiny_label": (
            "worst-case probe at a deliberately tiny interval; "
            "informational only, never compared against "
            "checkpoint_budget"),
    })
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\ncheckpoints off {off.wall_time:.2f}s | "
          f"every {DEFAULT_CHECKPOINT_EVERY:,}: "
          f"{default.checkpoint_s:.3f}s ckpt "
          f"({default_ratio:.2%} of sim) | "
          f"every {tiny_every:,}: {tiny.checkpoint_s:.3f}s ckpt "
          f"({tiny_ratio:.2%} of sim)")

    assert default_ratio <= CHECKPOINT_BUDGET, (
        f"checkpointing at the default interval costs "
        f"{default_ratio:.1%} of sim time "
        f"(budget: {CHECKPOINT_BUDGET:.0%})")
