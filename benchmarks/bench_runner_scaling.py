"""Runner scaling: serial vs parallel fan-out vs warm result cache.

Runs a small OLTP configuration sweep three ways -- serially with a cold
cache, through the process pool (``REPRO_BENCH_JOBS`` workers), and
serially again with the now-warm cache -- and records the wall times in
``BENCH_runner.json`` at the repo root so the perf trajectory of the
experiment harness itself is tracked across PRs.

Checked invariants: all three paths return bit-identical results, and
the warm-cache rerun is at least 5x faster than the cold serial run.
Parallel speedup is recorded but not asserted (CI boxes may have one
core, where the pool only adds overhead).
"""

import dataclasses
import json
import multiprocessing
import os
from pathlib import Path

from conftest import BENCH_JOBS

from repro.params import default_system
from repro.run import MODEL_VERSION, JobSpec, ResultCache, WorkloadSpec, \
    run_many

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runner.json"


def _sweep_specs(instructions=6000, warmup=6000):
    """A small but representative sweep: window sizes x two seeds."""
    base = default_system()
    specs = []
    for window in (16, 32, 64):
        params = base.replace(processor=dataclasses.replace(
            base.processor, window_size=window))
        for seed in (0, 1):
            specs.append(JobSpec(params, WorkloadSpec("oltp"),
                                 instructions=instructions,
                                 warmup=warmup, seed=seed))
    return specs


def test_runner_scaling(tmp_path):
    specs = _sweep_specs()
    cache = ResultCache(tmp_path / "cache")
    jobs = BENCH_JOBS if BENCH_JOBS > 1 else \
        max(2, multiprocessing.cpu_count())

    cold = run_many(specs, jobs=1, cache=cache)
    parallel = run_many(specs, jobs=jobs, cache=None)
    warm = run_many(specs, jobs=1, cache=cache)

    # All three paths must agree bit-for-bit.
    for other in (parallel, warm):
        assert [r.cycles for r in other.results] == \
            [r.cycles for r in cold.results]
        assert [r.breakdown.cycles for r in other.results] == \
            [r.breakdown.cycles for r in cold.results]
    assert cold.cache_misses == len(specs)
    assert warm.cache_hits == len(specs)

    warm_speedup = cold.wall_time / max(warm.wall_time, 1e-9)
    parallel_speedup = cold.wall_time / max(parallel.wall_time, 1e-9)
    record = {
        "model_version": MODEL_VERSION,
        "sweep_jobs": len(specs),
        "instructions_per_job": specs[0].instructions
        + specs[0].warmup,
        "pool_workers": parallel.jobs,
        "fell_back_to_serial": parallel.fell_back_to_serial,
        "serial_cold_s": round(cold.wall_time, 3),
        "parallel_s": round(parallel.wall_time, 3),
        "warm_cache_s": round(warm.wall_time, 3),
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_cache_speedup": round(warm_speedup, 2),
        "serial_throughput_instr_per_s": round(cold.throughput),
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nserial {cold.wall_time:.2f}s | "
          f"parallel({parallel.jobs}) {parallel.wall_time:.2f}s "
          f"({parallel_speedup:.2f}x) | "
          f"warm cache {warm.wall_time:.3f}s ({warm_speedup:.0f}x)")

    assert warm_speedup >= 5.0, (
        f"warm cache rerun only {warm_speedup:.1f}x faster than cold")
