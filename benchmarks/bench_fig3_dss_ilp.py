"""Figure 3: impact of ILP features on DSS performance.

Same sweeps as Figure 2 on the DSS workload.  Paper shapes: DSS gains far
more from ILP than OLTP (~2.6x vs ~1.5x); window gains level off beyond
32; DSS exploits more outstanding misses (4) than OLTP (2), mostly from
write overlap under the relaxed model.
"""

from conftest import run_once

from repro.core.figures import (
    figure_ilp_issue_width,
    figure_ilp_mshrs,
    figure_ilp_window,
)


def test_figure3a_issue_width(benchmark, dss_sizes):
    instr, warm = dss_sizes
    fig = run_once(benchmark, lambda: figure_ilp_issue_width(
        "dss", instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    speedup = fig.normalized("inorder-1w") / fig.normalized("ooo-4w")
    print(f"  OOO-4w speedup over in-order-1w: {speedup:.2f}x "
          f"(paper: ~2.6x)")
    assert speedup > 1.6
    # Multiple issue reduces in-order DSS time substantially (paper: 32%
    # from 1- to 8-way in-order).
    multi_issue_gain = 1.0 - (fig.normalized("inorder-8w")
                              / fig.normalized("inorder-1w"))
    print(f"  in-order 1w->8w gain: {multi_issue_gain:.2f} (paper: 0.32)")
    assert multi_issue_gain > 0.1


def test_figure3b_window_size(benchmark, dss_sizes):
    instr, warm = dss_sizes
    fig = run_once(benchmark, lambda: figure_ilp_window(
        "dss", instructions=instr, warmup=warm))
    print("\n" + fig.format_table())
    gain_16_32 = fig.normalized("win-16") - fig.normalized("win-32")
    gain_32_128 = fig.normalized("win-32") - fig.normalized("win-128")
    print(f"  gain 16->32: {gain_16_32:.3f}, 32->128: {gain_32_128:.3f}")
    print("  (paper: levels off beyond 32; our scaled DSS rows span "
          "~240 instructions, so window growth keeps hiding part of the "
          "scan-miss latency a little longer -- see EXPERIMENTS.md)")
    # Robust shape: bigger windows never hurt, and the total spread is
    # moderate (DSS is compute-bound, not window-starved).
    assert fig.normalized("win-64") < fig.normalized("win-16")
    assert fig.normalized("win-128") <= fig.normalized("win-64") + 0.03
    assert fig.normalized("win-128") > 0.7


def test_figure3cdefg_mshrs(benchmark, dss_sizes):
    instr, warm = dss_sizes
    fig = run_once(benchmark, lambda: figure_ilp_mshrs(
        "dss", instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    # DSS exploits more outstanding misses than OLTP (4 vs 2).
    gain_2_4 = fig.normalized("mshr-2") - fig.normalized("mshr-4")
    print(f"  gain 2->4 MSHRs: {gain_2_4:.3f} (paper: DSS exploits 4)")
    assert fig.normalized("mshr-4") <= fig.normalized("mshr-2")

    for key in ("l1d_occupancy_all", "l1d_occupancy_reads"):
        dist = fig.extras[key]
        row = " ".join(f">={n}:{frac:.2f}" for n, frac in dist.items())
        print(f"  {key}: {row}")
    # Write misses contribute to (never subtract from) the occupancy
    # beyond reads (paper Figure 3(d)-(g)); allow numerical jitter when
    # the scaled DSS's write misses are rare.
    alls = fig.extras["l1d_occupancy_all"]
    reads = fig.extras["l1d_occupancy_reads"]
    assert alls[2] >= reads[2] - 0.02
