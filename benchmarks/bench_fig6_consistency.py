"""Figure 6: performance benefits from ILP-enabled consistency
optimizations, for OLTP and DSS.

Nine bars per workload: {SC, PC, RC} x {straightforward, +hardware
prefetch, +speculative loads}, normalized to straightforward SC.

Paper shapes: straightforward RC is far faster than straightforward SC
(28% OLTP / 46% DSS reductions); prefetching helps the strict models;
adding speculative loads brings SC within 10-15% of RC; RC barely changes
across implementations.
"""

import pytest
from conftest import run_once

from repro.core.figures import figure6


@pytest.mark.parametrize("workload", ["oltp", "dss"])
def test_figure6(benchmark, workload, oltp_sizes, dss_sizes):
    instr, warm = oltp_sizes if workload == "oltp" else dss_sizes
    fig = run_once(benchmark, lambda: figure6(
        workload, instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    sc_plain = fig.normalized("SC-straight")
    pc_plain = fig.normalized("PC-straight")
    rc_plain = fig.normalized("RC-straight")
    sc_spec = fig.normalized("SC-speculat")
    pc_spec = fig.normalized("PC-speculat")
    rc_spec = fig.normalized("RC-speculat")

    rc_gain = 1 - rc_plain / sc_plain
    sc_gain = 1 - sc_spec / sc_plain
    gap = sc_spec / rc_spec - 1
    print(f"  straightforward RC vs SC: {rc_gain:.1%} faster "
          f"(paper: {'28%' if workload == 'oltp' else '46%'})")
    print(f"  SC improvement from optimizations: {sc_gain:.1%} "
          f"(paper: {'26%' if workload == 'oltp' else '37%'})")
    print(f"  optimized SC vs optimized RC gap: {gap:.1%} "
          f"(paper: within 10-15%)")

    # Strictness ordering for straightforward implementations.
    assert rc_plain < pc_plain < sc_plain
    # Optimizations help the strict models substantially...
    assert sc_spec < sc_plain * 0.92
    assert pc_spec <= pc_plain
    # ...and bring SC near RC (paper: within 10-15%; allow slack).
    assert gap < 0.30
    # RC is essentially unaffected by the optimizations.
    assert abs(rc_spec - rc_plain) < 0.08
    # Speculation is competitive with prefetch-only for SC; on the scaled
    # system the two optimized implementations land within a few percent
    # (the paper reports speculation strictly ahead).
    assert sc_spec <= fig.normalized("SC-prefetch") + 0.06
