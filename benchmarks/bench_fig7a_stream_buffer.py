"""Figure 7(a): addressing the OLTP instruction bottleneck with an
instruction stream buffer between the L1 I-cache and L2.

Bars: base, 2/4/8-entry stream buffers, perfect I-cache, perfect
I-cache + perfect I-TLB.

Paper shapes: a 2-entry buffer removes ~64% of L1I misses; a 2- or
4-entry buffer cuts execution time ~16-17%, within ~15% of the perfect
I-cache; 8 entries give diminishing or negative returns (useless-prefetch
contention); uniprocessor gains are larger (22-27%).
"""

from conftest import run_once

from repro.core.figures import figure7a


def test_figure7a_stream_buffer(benchmark, oltp_sizes):
    instr, warm = oltp_sizes
    fig = run_once(benchmark,
                   lambda: figure7a(instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    base = fig.normalized("base")
    sb2 = fig.normalized("streambuf-2")
    sb4 = fig.normalized("streambuf-4")
    sb8 = fig.normalized("streambuf-8")
    perfect = fig.normalized("perfect-icache")

    print(f"  2-entry gain: {1 - sb2:.1%}, 4-entry gain: {1 - sb4:.1%} "
          f"(paper: ~16-17%)")
    print(f"  perfect icache gain: {1 - perfect:.1%}")

    # The stream buffer helps substantially.
    assert sb2 < base
    assert sb4 <= sb2 + 0.02
    # Diminishing returns beyond 4 entries.
    assert sb8 >= sb4 - 0.02
    # Perfect icache bounds the optimization.
    assert perfect <= sb4

    # Stream-buffer hit rate: most L1I misses are caught (paper: 2-entry
    # buffer removes ~64% of misses).
    hit_rate = fig.row("streambuf-2").result.stream_buffer_hit_rate
    print(f"  2-entry stream buffer hit rate: {hit_rate:.1%} "
          f"(paper: ~64% of misses removed)")
    assert hit_rate > 0.35


def test_figure7a_uniprocessor(benchmark, oltp_sizes):
    """Uniprocessor variant: instruction stall is a larger share, so the
    stream buffer helps even more (paper: 22-27%)."""
    instr, warm = oltp_sizes
    fig = run_once(benchmark, lambda: figure7a(
        instructions=max(4000, instr // 3),
        warmup=max(4000, warm // 3), uniprocessor=True))
    print("\n" + fig.format_table())
    assert fig.normalized("streambuf-4") < fig.normalized("base")
