"""Figure 7(b): addressing OLTP data communication misses with software
prefetch and flush (WriteThrough) hints for migratory data.

All configurations include a 4-entry instruction stream buffer (as in the
paper).  Bars: base, +flush at critical-section exits, the ~40%-faster
migratory-read bound, and flush+prefetch.

Paper shapes: flush alone cuts execution time ~7.5%, close to the ~9%
bound from servicing migratory reads at memory; adding prefetch at
critical-section entry reaches ~12% total.
"""

from conftest import run_once

from repro.core.figures import figure7b
from repro.stats.breakdown import READ_DIRTY


def test_figure7b_migratory_hints(benchmark, oltp_sizes):
    instr, warm = oltp_sizes
    fig = run_once(benchmark,
                   lambda: figure7b(instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    base = fig.normalized("base+sb4")
    flush = fig.normalized("flush")
    bound = fig.normalized("bound-40pct")
    both = fig.normalized("flush+prefetch")

    print(f"  flush gain:          {1 - flush:.1%} (paper: 7.5%)")
    print(f"  bound (-40% lat):    {1 - bound:.1%} (paper: ~9%)")
    print(f"  flush+prefetch gain: {1 - both:.1%} (paper: 12%)")

    # Flush converts dirty misses to memory-serviced misses.
    assert flush < base
    base_dirty = fig.row("base+sb4").result.breakdown.cycles[READ_DIRTY]
    flush_dirty = fig.row("flush").result.breakdown.cycles[READ_DIRTY]
    print(f"  dirty stall cycles: base={base_dirty:.0f} "
          f"flush={flush_dirty:.0f}")
    assert flush_dirty < base_dirty

    # Prefetch adds on top of flush.
    assert both <= flush + 0.02

    # Flushes were actually issued and converted misses.
    flush_stats = fig.row("flush").result.coherence
    assert flush_stats.flushes > 0
