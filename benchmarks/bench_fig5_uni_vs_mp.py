"""Figure 5: relative importance of components in uniprocessor vs
multiprocessor systems, for OLTP and DSS.

Paper shapes: uniprocessors have no data communication (dirty) misses, so
the instruction stall is a relatively larger share; multiprocessors show
larger read components.
"""

import pytest
from conftest import run_once

from repro.core.figures import figure5
from repro.stats.breakdown import INSTR, READ_DIRTY


@pytest.mark.parametrize("workload", ["oltp", "dss"])
def test_figure5(benchmark, workload, oltp_sizes, dss_sizes):
    instr, warm = oltp_sizes if workload == "oltp" else dss_sizes
    fig = run_once(benchmark, lambda: figure5(
        workload, instructions=instr, warmup=warm))
    print("\n" + fig.format_table())

    up = fig.row("uniprocessor").result.breakdown
    mp = fig.row("multiprocessor").result.breakdown

    up_dirty = up.cycles[READ_DIRTY] / up.total
    mp_dirty = mp.cycles[READ_DIRTY] / mp.total
    up_read = up.read / up.total
    mp_read = mp.read / mp.total
    print(f"  {workload}: dirty share UP={up_dirty:.3f} MP={mp_dirty:.3f}; "
          f"read share UP={up_read:.3f} MP={mp_read:.3f}")

    # No communication misses on a uniprocessor.
    assert up_dirty < 0.01
    # Multiprocessors bring larger read components.
    assert mp_read > up_read

    if workload == "oltp":
        up_instr = up.cycles[INSTR] / up.total
        mp_instr = mp.cycles[INSTR] / mp.total
        print(f"  oltp: instruction share UP={up_instr:.3f} "
              f"MP={mp_instr:.3f} (paper: larger share in UP)")
        assert up_instr > mp_instr
