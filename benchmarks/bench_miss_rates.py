"""Section 3.1 / 3.2 in-text characterization table.

Paper values (base 4-way OOO system):

  OLTP: L1I 7.6%, L1D 14.1%, L2 7.4% local miss rates; IPC 0.5;
        cumulative branch misprediction 11%; idle < 10%.
  DSS:  L1I 0.0%, L1D 0.9%, L2 23.1%; IPC 2.2; little locking.

Absolute parity is not expected on the scaled substrate; the orderings
(OLTP misses everywhere, DSS compute-bound with an L2-missing scan) are
what the assertions check, and the printed table records the measured
values next to the paper's.
"""

from conftest import BENCH_SIZES, run_once

from repro.core.figures import characterization_table

PAPER = {
    "oltp": {"l1i_miss_rate": 0.076, "l1d_miss_rate": 0.141,
             "l2_miss_rate": 0.074, "ipc": 0.5,
             "branch_misprediction": 0.11},
    "dss": {"l1i_miss_rate": 0.000, "l1d_miss_rate": 0.009,
            "l2_miss_rate": 0.231, "ipc": 2.2,
            "branch_misprediction": float("nan")},
}


def test_characterization_table(benchmark):
    instr, warm = BENCH_SIZES["oltp"]
    table = run_once(benchmark, lambda: characterization_table(
        instructions=instr, warmup=warm))

    print("\n== In-text characterization (measured vs paper) ==")
    for name in ("oltp", "dss"):
        row = table[name]
        paper = PAPER[name]
        print(f"  {name.upper()}:")
        for key in ("l1i_miss_rate", "l1d_miss_rate", "l2_miss_rate",
                    "ipc", "branch_misprediction"):
            ref = paper.get(key)
            ref_s = f"{ref:.3f}" if ref == ref else "n/a"
            print(f"    {key:<24s} {row[key]:.3f}   (paper: {ref_s})")
        print(f"    {'idle_fraction':<24s} {row['idle_fraction']:.3f}   "
              f"(paper: < 0.10)")

    oltp, dss = table["oltp"], table["dss"]
    # OLTP has the large instruction footprint; DSS code fits L1I.
    assert oltp["l1i_miss_rate"] > 0.015
    assert dss["l1i_miss_rate"] < 0.002
    # OLTP misses L1D much more than DSS.
    assert oltp["l1d_miss_rate"] > 5 * dss["l1d_miss_rate"]
    # DSS's scan misses in L2 at a higher *rate* than OLTP.
    assert dss["l2_miss_rate"] > oltp["l2_miss_rate"]
    # DSS is compute-bound; OLTP is stall-bound (paper: 2.2 vs 0.5).
    assert dss["ipc"] > 3 * oltp["ipc"]
    assert 0.1 < oltp["ipc"] < 1.0
    assert dss["ipc"] > 1.0
    # OLTP mispredicts ~11%; idle was factored out and is small.
    assert 0.05 < oltp["branch_misprediction"] < 0.25
    assert oltp["idle_fraction"] < 0.10
    assert dss["idle_fraction"] < 0.10
