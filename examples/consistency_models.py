#!/usr/bin/env python
"""Memory consistency study: do strict models cost performance?

Replays the paper's Figure 6 question for either workload: sequential
consistency loses badly with a straightforward implementation, but
hardware prefetching from the instruction window plus speculative load
execution (as in the MIPS R10000 / Pentium Pro) brings it within a few
percent of release consistency -- so the hardware consistency model is
not a dominant design factor for database workloads.

Run:  python examples/consistency_models.py [oltp|dss] [--quick]
"""

import argparse

from repro import (
    ConsistencyImpl,
    ConsistencyModel,
    default_system,
    dss_workload,
    oltp_workload,
    run_simulation,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="oltp",
                        choices=["oltp", "dss"])
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    if args.workload == "oltp":
        make_workload = oltp_workload
        instructions, warmup = (15_000, 25_000) if args.quick \
            else (80_000, 220_000)
    else:
        make_workload = dss_workload
        instructions, warmup = (15_000, 25_000) if args.quick \
            else (50_000, 130_000)

    print(f"Workload: {args.workload.upper()}")
    print(f"{'model':<6s} {'implementation':<18s} "
          f"{'cycles':>10s} {'vs SC-plain':>12s} {'read':>7s} {'write':>7s}")

    baseline = None
    results = {}
    for impl in (ConsistencyImpl.STRAIGHTFORWARD, ConsistencyImpl.PREFETCH,
                 ConsistencyImpl.SPECULATIVE):
        for model in (ConsistencyModel.SC, ConsistencyModel.PC,
                      ConsistencyModel.RC):
            params = default_system(consistency=model,
                                    consistency_impl=impl)
            result = run_simulation(params, make_workload(),
                                    instructions=instructions,
                                    warmup=warmup)
            if baseline is None:
                baseline = result.cycles
            results[(model, impl)] = result
            row = result.breakdown.summary_row()
            print(f"{model.name:<6s} {impl.name.lower():<18s} "
                  f"{result.cycles:>10,} "
                  f"{result.cycles / baseline:>11.2f}x "
                  f"{row['read']:>6.1%} {row['write']:>6.1%}")

    sc_opt = results[(ConsistencyModel.SC, ConsistencyImpl.SPECULATIVE)]
    rc_opt = results[(ConsistencyModel.RC, ConsistencyImpl.SPECULATIVE)]
    gap = sc_opt.cycles / rc_opt.cycles - 1
    print(f"\nOptimized SC is within {gap:.1%} of optimized RC "
          f"(paper: 10-15%).")


if __name__ == "__main__":
    main()
