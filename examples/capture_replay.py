#!/usr/bin/env python
"""Trace capture / replay and experiment provenance.

Mirrors the paper's methodology plumbing (section 2.2): capture the
workload once to per-process trace files (the authors' ATOM step), save
the exact machine configuration next to them, then drive simulations
from the files — bit-identical across runs and shareable between
machines.  Finishes with a seed sweep showing how much run-to-run spread
the scaled simulations have.

Run:  python examples/capture_replay.py [--quick]
"""

import argparse
import os
import tempfile

from repro import default_system, oltp_workload
from repro.core.sweep import seed_sweep
from repro.params_io import load_params, save_params
from repro.system.machine import Machine
from repro.trace.tracefile import capture, replay


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    n_capture = 20_000 if args.quick else 120_000
    n_run = 8_000 if args.quick else 60_000

    params = default_system()
    workload = oltp_workload()

    with tempfile.TemporaryDirectory() as workdir:
        # 1. Capture per-process traces + the configuration.
        print(f"Capturing {n_capture:,} instructions per process...")
        generators = workload.generators(params.n_nodes)
        paths = []
        for pid, generator in enumerate(generators):
            path = os.path.join(workdir, f"server{pid:02d}.trace")
            capture(generator, path, n_capture)
            paths.append(path)
        config_path = os.path.join(workdir, "system.json")
        save_params(params, config_path)
        total = sum(os.path.getsize(p) for p in paths)
        print(f"  {len(paths)} trace files, {total / 1e6:.1f} MB total")

        # 2. Replay: two runs from the same files are identical.
        def run_once():
            machine = Machine(load_params(config_path),
                              [replay(p, loop=True) for p in paths])
            return machine.run(n_run)

        first, second = run_once(), run_once()
        print(f"Replay determinism: {first:,} vs {second:,} cycles "
              f"({'identical' if first == second else 'MISMATCH'})")

    # 3. Seed spread of the generated workload (no files needed).
    sweep = seed_sweep(params, oltp_workload,
                       instructions=n_run, warmup=n_run,
                       seeds=(0, 1, 2), label="oltp-base")
    print(sweep)


if __name__ == "__main__":
    main()
