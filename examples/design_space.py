#!/usr/bin/env python
"""Processor design-space exploration for database servers.

Uses the public API the way a server architect would: sweep issue width,
window size, and outstanding-miss support for OLTP and DSS, and report
where the returns diminish.  The paper's answer -- a 4-way, 32-64 entry
window with 4 outstanding misses captures nearly all the benefit -- falls
out of the sweep.

Run:  python examples/design_space.py [--quick]
"""

import argparse
import dataclasses

from repro import default_system, dss_workload, oltp_workload, \
    run_simulation


def sweep(name, make_workload, configs, instructions, warmup):
    print(f"\n{name}:")
    baseline = None
    for label, params in configs:
        result = run_simulation(params, make_workload(),
                                instructions=instructions, warmup=warmup)
        if baseline is None:
            baseline = result.cycles
        print(f"  {label:<26s} {result.cycles:>10,} cycles "
              f"({baseline / result.cycles:4.2f}x, IPC {result.ipc:.2f})")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    base = default_system()

    def proc(**changes):
        return base.replace(processor=dataclasses.replace(
            base.processor, **changes))

    def mshrs(n):
        return base.replace(
            l1d=dataclasses.replace(base.l1d, mshrs=n),
            l2=dataclasses.replace(base.l2, mshrs=n))

    issue_configs = [
        ("in-order 1-wide", proc(out_of_order=False, issue_width=1)),
        ("in-order 4-wide", proc(out_of_order=False, issue_width=4)),
        ("out-of-order 2-wide", proc(issue_width=2)),
        ("out-of-order 4-wide", base),
        ("out-of-order 8-wide", proc(issue_width=8)),
    ]
    window_configs = [
        ("window 16", proc(window_size=16)),
        ("window 32", proc(window_size=32)),
        ("window 64 (base)", base),
        ("window 128", proc(window_size=128)),
    ]
    mshr_configs = [
        ("1 outstanding miss", mshrs(1)),
        ("2 outstanding misses", mshrs(2)),
        ("4 outstanding misses", mshrs(4)),
        ("8 outstanding misses", mshrs(8)),
    ]

    for wl_name, make_workload, sizes in (
            ("oltp", oltp_workload, (60_000, 180_000)),
            ("dss", dss_workload, (40_000, 120_000))):
        instructions, warmup = (10_000, 15_000) if args.quick else sizes
        print(f"\n===== {wl_name.upper()} =====")
        sweep("Issue width / execution order", make_workload,
              issue_configs, instructions, warmup)
        sweep("Instruction window", make_workload, window_configs,
              instructions, warmup)
        sweep("Outstanding misses", make_workload, mshr_configs,
              instructions, warmup)


if __name__ == "__main__":
    main()
