#!/usr/bin/env python
"""Quickstart: simulate the OLTP workload on the base system.

Builds the paper's base configuration (4-node CC-NUMA, 4-way out-of-order
processors, release consistency), runs the TPC-B-like OLTP workload, and
prints the execution-time breakdown, cache miss rates, and sharing
statistics the paper reports.

Run:  python examples/quickstart.py [--quick]
"""

import argparse

from repro import default_system, oltp_workload, run_simulation
from repro.stats.breakdown import CATEGORY_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small run (~5s) instead of the default")
    args = parser.parse_args()

    instructions, warmup = (20_000, 30_000) if args.quick \
        else (100_000, 250_000)

    params = default_system()
    workload = oltp_workload()
    print(f"Simulating {instructions:,} instructions of OLTP on "
          f"{params.n_nodes} nodes "
          f"({workload.processes_per_cpu} server processes per CPU)...")
    result = run_simulation(params, workload, instructions=instructions,
                            warmup=warmup)

    print(f"\nExecution: {result.cycles:,} cycles, "
          f"IPC {result.ipc:.2f} per processor "
          f"(paper: ~0.5 for OLTP)")
    print(f"Branch misprediction: {result.misprediction_rate:.1%} "
          f"(paper: 11%)")
    print("\nMiss rates (paper: L1I 7.6%, L1D 14.1%, L2 7.4%):")
    for level, rate in result.miss_rates.items():
        print(f"  {level:4s} {rate:6.1%}")

    print("\nExecution-time breakdown (fraction of non-idle time):")
    for name, share in sorted(result.breakdown.shares().items(),
                              key=lambda kv: -kv[1]):
        if share > 0.005:
            print(f"  {name:<16s} {share:6.1%}")

    sharing = result.sharing()
    print(f"\nSharing: {sharing.migratory_dirty_read_fraction:.0%} of "
          f"dirty reads are migratory (paper: 79%); "
          f"{sharing.migratory_shared_write_fraction:.0%} of shared "
          f"writes (paper: 88%)")


if __name__ == "__main__":
    main()
