#!/usr/bin/env python
"""Inter-thread vs intra-thread parallelism: an SMT study.

Section 5 of the paper contrasts its intra-thread ILP results with
Lo et al.'s simultaneous multithreading study on the same workloads:
OLTP, whose dependent loads and communication misses defeat single-
thread ILP (only 1.5x), leaves the pipeline idle for other threads --
SMT gains up to 3x.  DSS already extracts 2.6x from intra-thread ILP,
so extra contexts add less.

This example sweeps SMT context counts for both workloads.

Run:  python examples/smt_study.py [--quick]
"""

import argparse
import dataclasses

from repro import default_system, dss_workload, oltp_workload, \
    run_simulation


def smt_system(contexts):
    base = default_system()
    return base.replace(processor=dataclasses.replace(
        base.processor, smt_contexts=contexts))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()

    for name, make_workload, sizes in (
            ("oltp", oltp_workload, (60_000, 180_000)),
            ("dss", dss_workload, (40_000, 120_000))):
        instructions, warmup = (10_000, 15_000) if args.quick else sizes
        print(f"\n===== {name.upper()} =====")
        base_cycles = None
        for contexts in (1, 2, 4):
            result = run_simulation(smt_system(contexts), make_workload(),
                                    instructions=instructions,
                                    warmup=warmup)
            if base_cycles is None:
                base_cycles = result.cycles
            print(f"  {contexts} context(s): {result.cycles:>10,} cycles "
                  f"({base_cycles / result.cycles:4.2f}x)")
        print("  (paper / Lo et al.: SMT helps OLTP far more than DSS)")


if __name__ == "__main__":
    main()
