#!/usr/bin/env python
"""OLTP bottleneck study: stream buffers and migratory-data hints.

Reproduces the flow of the paper's section 4 on a single command:

1. run the base system and identify the instruction-stall and dirty-miss
   bottlenecks,
2. add instruction stream buffers of increasing size (Figure 7(a)),
3. profile the migratory-reference PCs and apply software flush +
   prefetch hints (Figure 7(b)).

Run:  python examples/oltp_bottlenecks.py [--quick]
"""

import argparse

from repro import (
    default_system,
    migratory_hints,
    oltp_workload,
    profile_migratory_pcs,
    run_simulation,
)
from repro.stats.breakdown import INSTR, READ_DIRTY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args()
    instructions, warmup = (15_000, 25_000) if args.quick \
        else (80_000, 220_000)

    # --- 1. base system: where does the time go? -------------------------
    base_params = default_system()
    base = run_simulation(base_params, oltp_workload(),
                          instructions=instructions, warmup=warmup)
    bd = base.breakdown
    print("Base OLTP system:")
    print(f"  instruction stall: {bd.cycles[INSTR] / bd.total:.1%}")
    print(f"  dirty-miss stall:  {bd.cycles[READ_DIRTY] / bd.total:.1%}")

    # --- 2. instruction stream buffers (Figure 7a) -----------------------
    print("\nInstruction stream buffers (paper: 4-entry ~17% faster):")
    for entries in (2, 4, 8):
        params = default_system(stream_buffer_entries=entries)
        result = run_simulation(params, oltp_workload(),
                                instructions=instructions, warmup=warmup)
        gain = 1 - result.cycles / base.cycles
        print(f"  {entries}-entry: {gain:+6.1%} execution time, "
              f"buffer hit rate {result.stream_buffer_hit_rate:.0%}")

    # --- 3. migratory-data software hints (Figure 7b) --------------------
    print("\nProfiling migratory-reference instructions...")
    hot_pcs = profile_migratory_pcs(
        base_params, oltp_workload(),
        instructions=instructions, warmup=warmup)
    print(f"  {len(hot_pcs)} static instructions generate 75% of "
          f"migratory references (paper: ~100)")

    sb4 = default_system(stream_buffer_entries=4)
    with_sb = run_simulation(sb4, oltp_workload(),
                             instructions=instructions, warmup=warmup)
    for label, hints in (
            ("flush", migratory_hints(False, True, hot_pcs)),
            ("flush+prefetch", migratory_hints(True, True, hot_pcs))):
        result = run_simulation(sb4, oltp_workload(hints=hints),
                                instructions=instructions, warmup=warmup)
        gain = 1 - result.cycles / with_sb.cycles
        print(f"  {label:<16s} {gain:+6.1%} vs stream-buffer baseline "
              f"({result.coherence.flushes} flushes issued)")
    print("(paper: flush 7.5%, flush+prefetch 12%)")


if __name__ == "__main__":
    main()
