"""Per-node memory hierarchy: L1I + stream buffer, L1D, unified L2, TLBs.

This module composes the cache arrays, MSHR files, TLBs and the stream
buffer of one node and translates processor requests into directory
transactions.  It returns *completion times* plus a service category so the
core can implement the paper's execution-time breakdown (L1 hit, L2 hit,
local memory, remote memory, dirty/cache-to-cache, data TLB).

Structural hazards (request-port saturation, full MSHR files) surface as a
``MemResult`` with ``stalled=True`` and a ``retry_at`` cycle so the core
can sleep rather than poll.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.mem.cache import CacheArray, MshrFile
from repro.mem.coherence import SVC_DIRTY, SVC_LOCAL, SVC_REMOTE, \
    CoherentMemory
from repro.mem.streambuf import InstructionStreamBuffer
from repro.mem.tlb import PageTable, Tlb
from repro.params import SystemParams

# Service categories (read-stall subdivisions of Figures 2(b)/(c)).
CAT_L1_HIT = 0
CAT_L2_HIT = 1
CAT_LOCAL = 2
CAT_REMOTE = 3
CAT_DIRTY = 4
CAT_DTLB = 5

_SVC_TO_CAT = {SVC_LOCAL: CAT_LOCAL, SVC_REMOTE: CAT_REMOTE,
               SVC_DIRTY: CAT_DIRTY}

DEFAULT_LINE_SHIFT = 6  # 64-byte lines


class MemResult:
    """Outcome of a data access."""

    __slots__ = ("done_at", "category", "tlb_miss", "stalled", "retry_at")

    def __init__(self, done_at: int = 0, category: int = CAT_L1_HIT,
                 tlb_miss: bool = False, stalled: bool = False,
                 retry_at: int = 0):
        self.done_at = done_at
        self.category = category
        self.tlb_miss = tlb_miss
        self.stalled = stalled
        self.retry_at = retry_at


def _stall(retry_at: int) -> MemResult:
    return MemResult(stalled=True, retry_at=retry_at)


class NodeMemorySystem:
    """Caches, TLBs and stream buffer of one node."""

    def __init__(self, node_id: int, params: SystemParams,
                 page_table: PageTable, coherent: CoherentMemory,
                 l1d_mshr_stats=None, l2_mshr_stats=None):
        self.node_id = node_id
        self.params = params
        self.page_table = page_table
        self.coherent = coherent
        self.line_shift = params.l2.line_size.bit_length() - 1

        self.l1i = CacheArray(params.l1i)
        self.l1d = CacheArray(params.l1d)
        self.l2 = CacheArray(params.l2)
        self.itlb = Tlb(params.itlb)
        self.dtlb = Tlb(params.dtlb)
        self.l1d_mshrs = MshrFile(params.l1d.mshrs, l1d_mshr_stats)
        self.l2_mshrs = MshrFile(params.l2.mshrs, l2_mshr_stats)
        self.stream_buffer = InstructionStreamBuffer(
            params.stream_buffer_entries, self._prefetch_instr_line)

        # Optional path-predicting instruction prefetcher (section 4.1:
        # "a predictor that interfaces with a branch target buffer to
        # issue prefetches for the right path of the branch").  A small
        # successor table records which line followed each line; fetches
        # prefetch the predicted successor into a side buffer.  The paper
        # found its benefit limited next to a stream buffer -- the
        # ablation benchmark reproduces that conclusion.
        self._nlp_table: dict = {}
        self._nlp_buffer: dict = {}
        self._nlp_last_line = -1
        self.nlp_prefetches = 0
        self.nlp_hits = 0

        # Lines this node may write without a directory transaction
        # (MESI E or M at the node level).
        self._writable = set()

        # Resource occupancy (contention): L1D ports per cycle, L2 port.
        self._l1d_port_cycle = -1
        self._l1d_port_used = 0
        self._l2_next_free = 0
        self._l2_occupancy = 2  # fully pipelined L2: 2-cycle issue slot

        # Called with a line number when coherence or replacement removes
        # it; the core's consistency unit registers itself here to detect
        # speculative-load violations.
        self.violation_hook: Optional[Callable[[int], None]] = None

        coherent.invalidate_hooks[node_id] = self.external_invalidate
        coherent.dirty_hooks[node_id] = self.line_dirty
        coherent.downgrade_hooks[node_id] = self.external_downgrade

        # Statistics.
        self.l1i_accesses = 0
        self.l1i_misses = 0
        self.l1d_accesses = 0
        self.l1d_misses = 0
        self.l2_accesses = 0
        self.l2_misses = 0
        self.prefetches = 0
        self.flush_hints = 0

    # -- address helpers ----------------------------------------------------

    def _translate(self, vaddr: int, tlb: Tlb) -> Tuple[int, bool]:
        """(physical line, tlb_missed)."""
        vpage = vaddr >> self.page_table.page_shift
        hit = tlb.access(vpage)
        line = self.page_table.translate_line(vaddr, self.line_shift)
        return line, not hit

    # -- instruction fetch ---------------------------------------------------

    def access_instr(self, now: int, vaddr: int) -> Tuple[int, int]:
        """Fetch the line containing ``vaddr``.

        Returns ``(ready_at, category)``.  ``ready_at == now`` means the
        fetch proceeds without a stall (L1I hit with its 1-cycle pipelined
        hit time).
        """
        if self.params.perfect_icache:
            return now, CAT_L1_HIT
        line, tlb_miss = self._translate(vaddr, self.itlb)
        t = now + (self.itlb.params.miss_latency if tlb_miss else 0)
        if self.params.branch_iprefetch:
            self._nlp_observe(line, t)
        # l1i_accesses counts instruction *references* (one per fetched
        # instruction, incremented by the core); only misses count here.
        if self.l1i.lookup(line):
            return t if tlb_miss else now, CAT_L1_HIT
        self.l1i_misses += 1

        buffered = self._nlp_buffer.pop(line, None)
        if buffered is not None:
            self.nlp_hits += 1
            self._fill_instr(line)
            return max(t, buffered) + 2, CAT_L2_HIT

        ready = self.stream_buffer.probe(line, t)
        if ready is not None:
            self._fill_instr(line)
            return ready, CAT_L2_HIT

        ready, category = self._demand_instr_fetch(line, t)
        self._fill_instr(line)
        return ready, category

    def _nlp_observe(self, line: int, now: int) -> None:
        """Train the line-successor table and prefetch the predicted
        next fetch line into the side buffer."""
        prev = self._nlp_last_line
        self._nlp_last_line = line
        if prev >= 0 and prev != line:
            self._nlp_table[prev] = line
        predicted = self._nlp_table.get(line)
        if predicted is None or predicted == line:
            return
        if self.l1i.lookup(predicted, touch=False) or \
                predicted in self._nlp_buffer:
            return
        ready = self._prefetch_instr_line(predicted, now)
        self._nlp_buffer[predicted] = ready
        self.nlp_prefetches += 1
        if len(self._nlp_buffer) > 8:
            self._nlp_buffer.pop(next(iter(self._nlp_buffer)))

    def _demand_instr_fetch(self, line: int, t: int) -> Tuple[int, int]:
        """L1I miss serviced by L2 / memory."""
        start = max(t + 1, self._l2_next_free)
        self._l2_next_free = start + self._l2_occupancy
        self.l2_accesses += 1
        if self.l2.lookup(line):
            return start + self.params.l2.hit_time, CAT_L2_HIT
        self.l2_misses += 1
        done, svc, _excl = self._directory_read(line, start)
        self._fill_l2(line)
        return done, _SVC_TO_CAT[svc]

    def _prefetch_instr_line(self, line: int, now: int) -> int:
        """Stream-buffer prefetch through the L2 path (consumes L2 and,
        on an L2 miss, directory/network bandwidth -- useless prefetches
        cost real resources)."""
        start = max(now + 1, self._l2_next_free)
        self._l2_next_free = start + self._l2_occupancy
        if self.l2.lookup(line, touch=False):
            return start + self.params.l2.hit_time
        done, _svc, _excl = self._directory_read(line, start)
        return done

    def _fill_instr(self, line: int) -> None:
        victim = self.l1i.insert(line)
        # Instruction lines are never dirty; L1I victims just vanish
        # (still present in the inclusive L2).
        self._fill_l2(line)
        del victim

    # -- data access ----------------------------------------------------------

    def access_data(self, now: int, vaddr: int, is_write: bool,
                    pc: int = 0) -> MemResult:
        """Load/store/RMW access.  See module docstring for semantics."""
        # L1D request ports (dual-ported in the base system).
        if self._l1d_port_cycle == now:
            if self._l1d_port_used >= self.params.l1d.request_ports:
                return _stall(now + 1)
            self._l1d_port_used += 1
        else:
            self._l1d_port_cycle = now
            self._l1d_port_used = 1

        line, tlb_miss = self._translate(vaddr, self.dtlb)
        t = now + (self.dtlb.params.miss_latency if tlb_miss else 0)

        if self.params.perfect_dcache:
            self.l1d_accesses += 1
            return MemResult(t + self.params.l1d.hit_time, CAT_L1_HIT,
                             tlb_miss)

        self.l1d_mshrs.expire(now)
        self.l2_mshrs.expire(now)

        # Coalesce with an in-flight miss to the same line.
        entry = self.l1d_mshrs.get(line)
        if entry is not None:
            self.l1d_accesses += 1
            if is_write and not entry.exclusive:
                done, svc = self.coherent.write(
                    self.node_id, line, max(t, entry.done_at), pc)
                self.l1d_mshrs.extend(entry, done, exclusive=True)
                self._writable.add(line)
                self.l1d.mark_dirty(line)
                return MemResult(done, _SVC_TO_CAT[svc], tlb_miss)
            done = max(entry.done_at, t + self.params.l1d.hit_time)
            if is_write:
                self.l1d.mark_dirty(line)
            return MemResult(done, CAT_L2_HIT, tlb_miss)

        # L1 hit path.
        if self.l1d.lookup(line):
            if not is_write or line in self._writable:
                self.l1d_accesses += 1
                if is_write:
                    self.l1d.mark_dirty(line)
                return MemResult(t + self.params.l1d.hit_time, CAT_L1_HIT,
                                 tlb_miss)
            # Write hit on a shared line: upgrade.
            if self.l1d_mshrs.full:
                return _stall(self.l1d_mshrs.earliest_done())
            self.l1d_accesses += 1
            done, svc = self.coherent.write(self.node_id, line, t, pc)
            self.l1d_mshrs.register(line, now, done, is_read=False,
                                    exclusive=True)
            self._writable.add(line)
            self.l1d.mark_dirty(line)
            self.l2.mark_dirty(line)
            return MemResult(done, _SVC_TO_CAT[svc], tlb_miss)

        # L1 miss.  Structural hazards stall *before* any statistics or
        # resource occupancy so retries are not double-counted.
        if self.l1d_mshrs.full:
            return _stall(self.l1d_mshrs.earliest_done())
        l2_entry = self.l2_mshrs.get(line)
        l2_hit = l2_entry is None and self.l2.lookup(line)
        if l2_entry is None and not l2_hit and self.l2_mshrs.full:
            return _stall(self.l2_mshrs.earliest_done())

        self.l1d_accesses += 1
        self.l1d_misses += 1
        start = max(t + 1, self._l2_next_free)
        self._l2_next_free = start + self._l2_occupancy
        self.l2_accesses += 1

        if l2_entry is not None:
            done = max(l2_entry.done_at, start + self.params.l2.hit_time)
            exclusive = l2_entry.exclusive
            if is_write and not exclusive:
                done, svc = self.coherent.write(self.node_id, line, done, pc)
                self.l2_mshrs.extend(l2_entry, done, exclusive=True)
                exclusive = True
            category = CAT_L2_HIT
        elif l2_hit:
            if is_write and line not in self._writable:
                done, svc = self.coherent.write(
                    self.node_id, line, start + self.params.l2.hit_time, pc)
                category = _SVC_TO_CAT[svc]
                exclusive = True
            else:
                done = start + self.params.l2.hit_time
                category = CAT_L2_HIT
                exclusive = line in self._writable
        else:
            # L2 miss: directory transaction.
            self.l2_misses += 1
            issue = start + self.params.l2.hit_time  # tag check before miss
            if is_write:
                done, svc = self.coherent.write(self.node_id, line, issue, pc)
                exclusive = True
            else:
                done, svc, excl = self._directory_read(line, issue, pc)
                exclusive = excl
            category = _SVC_TO_CAT[svc]
            self.l2_mshrs.register(line, now, done, is_read=not is_write,
                                   exclusive=exclusive)
            self._fill_l2(line, dirty=is_write)

        self.l1d_mshrs.register(line, now, done, is_read=not is_write,
                                exclusive=is_write or exclusive)
        if is_write or exclusive:
            self._writable.add(line)
        victim = self.l1d.insert(line, dirty=is_write)
        if victim is not None:
            v_line, v_dirty = victim
            if v_dirty:
                self.l2.mark_dirty(v_line)  # inclusive: line is in L2
        if is_write:
            self.l2.mark_dirty(line)
        return MemResult(done, category, tlb_miss)

    def _directory_read(self, line: int, t: int, pc: int = 0
                        ) -> Tuple[int, int, bool]:
        """Read via the directory; returns (done, svc, exclusive_granted)."""
        return self.coherent.read(self.node_id, line, t, pc)

    def _fill_l2(self, line: int, dirty: bool = False) -> None:
        victim = self.l2.insert(line, dirty=dirty)
        if victim is None:
            return
        v_line, v_dirty = victim
        self._evict_from_node(v_line, v_dirty, replacement=True)

    def _evict_from_node(self, line: int, dirty: bool,
                         replacement: bool) -> None:
        """L2 eviction: maintain inclusion, notify directory and the
        speculative-load violation detector (replacements can violate
        ordering just like invalidations -- paper section 3.4)."""
        self.l1d.invalidate(line)
        self.l1i.invalidate(line)
        if dirty or line in self._writable:
            self._writable.discard(line)
            self.coherent.writeback(self.node_id, line, 0)
        else:
            self.coherent.evict_clean(self.node_id, line)
        if self.violation_hook is not None:
            self.violation_hook(line)

    # -- software hints (section 4.2) -----------------------------------------

    def prefetch_data(self, now: int, vaddr: int, exclusive: bool = True,
                      pc: int = 0) -> None:
        """Non-binding software prefetch (dropped on structural hazard)."""
        self.prefetches += 1
        line, _ = self._translate(vaddr, self.dtlb)
        self.l1d_mshrs.expire(now)
        self.l2_mshrs.expire(now)
        if self.l1d_mshrs.full or self.l2_mshrs.full:
            return
        if self.l1d.lookup(line, touch=False) and (
                not exclusive or line in self._writable):
            return
        if self.l1d_mshrs.get(line) is not None:
            return
        start = max(now + 1, self._l2_next_free)
        self._l2_next_free = start + self._l2_occupancy
        if exclusive:
            done, _svc = self.coherent.write(self.node_id, line, start, pc)
            granted = True
        else:
            # A read prefetch only confers write permission when the
            # directory actually granted exclusive-clean (MESI E).
            done, _svc, granted = self._directory_read(line, start, pc)
        self.l2_misses += not self.l2.lookup(line, touch=False)
        self.l2_accesses += 1
        self.l1d_mshrs.register(line, now, done, is_read=not exclusive,
                                exclusive=granted)
        self.l2_mshrs.register(line, now, done, is_read=not exclusive,
                               exclusive=granted)
        if granted:
            self._writable.add(line)
        self._fill_l2(line)
        victim = self.l1d.insert(line)
        if victim is not None and victim[1]:
            self.l2.mark_dirty(victim[0])

    def flush_line(self, now: int, vaddr: int) -> None:
        """Software flush / WriteThrough hint: sharing writeback keeping a
        clean cached copy (fire-and-forget)."""
        self.flush_hints += 1
        line, _ = self._translate(vaddr, self.dtlb)
        if line in self._writable:
            self.coherent.flush(self.node_id, line, now)
            self._writable.discard(line)
            # Copy stays cached but is now clean and shared.
            if self.l1d.lookup(line, touch=False):
                self.l1d.invalidate(line)
                self.l1d.insert(line, dirty=False)
            if self.l2.lookup(line, touch=False):
                self.l2.invalidate(line)
                self.l2.insert(line, dirty=False)

    # -- tag-state mirror (batch backend) -------------------------------------

    def hot_tag_state(self) -> dict:
        """Read-only mirror of the tag/translation state the batch
        backend's round planner classifies against.

        ``l1d``/``l1i`` are the resident line sets minus lines with an
        in-flight miss (an MSHR hit coalesces -- that is a latency the
        planner's closed-form accounting cannot predict, so such lines
        are simply not hot); ``writable`` and ``frames`` alias live
        structures and must not be mutated or kept across a round;
        ``dpages``/``ipages`` are the TLB-resident virtual page sets, or
        ``None`` for a perfect TLB.  Building the mirror reads tags
        without touching LRU order, counters, or the page table (in
        particular it never calls ``frame_of``, which allocates on first
        touch), so planning never perturbs simulated state.
        """
        l1d = self.l1d.resident_lines()
        for line in self.l1d_mshrs._entries:
            l1d.discard(line)
        l1i = self.l1i.resident_lines()
        return {
            "l1d": l1d,
            "l1i": l1i,
            "writable": self._writable,
            "frames": self.page_table._frames,
            "dpages": None if self.dtlb.params.perfect
            else set(self.dtlb._entries),
            "ipages": None if self.itlb.params.perfect
            else set(self.itlb._entries),
        }

    # -- external coherence actions -------------------------------------------

    def line_dirty(self, line: int) -> bool:
        """Whether this node's copy of ``line`` is modified (M vs E)."""
        return self.l1d.is_dirty(line) or self.l2.is_dirty(line)

    def external_downgrade(self, line: int) -> None:
        """Ownership demotion: a remote read turned our exclusive copy
        into a shared one.  The copy stays cached, but write permission
        and the dirty bits go away -- a later store must re-acquire
        ownership through the directory (without this, the old owner
        could silently write a line other nodes now share)."""
        self._writable.discard(line)
        self.l1d.mark_clean(line)
        self.l2.mark_clean(line)

    def external_invalidate(self, line: int) -> None:
        """Invalidation received from the directory."""
        self.l1d.invalidate(line)
        self.l1i.invalidate(line)
        self.l2.invalidate(line)
        self._writable.discard(line)
        self.stream_buffer.invalidate(line)
        if self.violation_hook is not None:
            self.violation_hook(line)

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint).
        Coherence hooks and ``violation_hook`` are wiring, re-registered
        when a fresh machine is constructed."""
        return {
            "l1i": self.l1i.snapshot(memo),
            "l1d": self.l1d.snapshot(memo),
            "l2": self.l2.snapshot(memo),
            "itlb": self.itlb.snapshot(memo),
            "dtlb": self.dtlb.snapshot(memo),
            "l1d_mshrs": self.l1d_mshrs.snapshot(memo),
            "l2_mshrs": self.l2_mshrs.snapshot(memo),
            "stream_buffer": self.stream_buffer.snapshot(memo),
            "nlp_table": dict(self._nlp_table),
            "nlp_buffer": dict(self._nlp_buffer),
            "nlp_last_line": self._nlp_last_line,
            "nlp_prefetches": self.nlp_prefetches,
            "nlp_hits": self.nlp_hits,
            "writable": set(self._writable),
            "l1d_port_cycle": self._l1d_port_cycle,
            "l1d_port_used": self._l1d_port_used,
            "l2_next_free": self._l2_next_free,
            "l1i_accesses": self.l1i_accesses,
            "l1i_misses": self.l1i_misses,
            "l1d_accesses": self.l1d_accesses,
            "l1d_misses": self.l1d_misses,
            "l2_accesses": self.l2_accesses,
            "l2_misses": self.l2_misses,
            "prefetches": self.prefetches,
            "flush_hints": self.flush_hints,
        }

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.l1i.restore(state["l1i"])
        self.l1d.restore(state["l1d"])
        self.l2.restore(state["l2"])
        self.itlb.restore(state["itlb"])
        self.dtlb.restore(state["dtlb"])
        self.l1d_mshrs.restore(state["l1d_mshrs"])
        self.l2_mshrs.restore(state["l2_mshrs"])
        self.stream_buffer.restore(state["stream_buffer"])
        self._nlp_table = dict(state["nlp_table"])
        self._nlp_buffer = dict(state["nlp_buffer"])
        self._nlp_last_line = state["nlp_last_line"]
        self.nlp_prefetches = state["nlp_prefetches"]
        self.nlp_hits = state["nlp_hits"]
        self._writable = set(state["writable"])
        self._l1d_port_cycle = state["l1d_port_cycle"]
        self._l1d_port_used = state["l1d_port_used"]
        self._l2_next_free = state["l2_next_free"]
        self.l1i_accesses = state["l1i_accesses"]
        self.l1i_misses = state["l1i_misses"]
        self.l1d_accesses = state["l1d_accesses"]
        self.l1d_misses = state["l1d_misses"]
        self.l2_accesses = state["l2_accesses"]
        self.l2_misses = state["l2_misses"]
        self.prefetches = state["prefetches"]
        self.flush_hints = state["flush_hints"]

    # -- statistics -------------------------------------------------------------

    @property
    def l1i_miss_rate(self) -> float:
        return self.l1i_misses / self.l1i_accesses if self.l1i_accesses else 0.0

    @property
    def l1d_miss_rate(self) -> float:
        return self.l1d_misses / self.l1d_accesses if self.l1d_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return self.l2_misses / self.l2_accesses if self.l2_accesses else 0.0
