"""Invalidation-based MESI directory coherence for the CC-NUMA system.

Each physical line has a home node (from the bin-hopping frame number).
The directory tracks one of three stable global states per line --
uncached, shared (one or more clean copies), exclusive (single owner whose
copy may be dirty) -- which, combined with the owner-side E/M distinction
held in the caches, realizes the paper's four-state MESI protocol.

Latency model (Figure 1): reads serviced by local memory cost ~100 cycles,
by remote memory 160-180 depending on hop count, and dirty misses serviced
by cache-to-cache transfer 280-310 cycles.  Queueing at the home directory,
the memory banks, and the network interfaces adds contention on top of the
contentionless numbers.

Migratory sharing detection implements the paper's footnote-2 heuristic
(after Cox & Fowler / Stenstrom et al.): a line is marked migratory when
the directory receives a request for exclusive ownership while exactly two
nodes hold copies and the last writer is not the requester.

The ``flush`` transaction implements the paper's software flush /
WriteThrough hint (section 4.2): an unsolicited *sharing writeback* that
updates memory but leaves a clean shared copy in the owner's cache, so a
subsequent remote read is serviced by memory instead of cache-to-cache.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.params import MemoryLatencies
from repro.mem.interconnect import MeshNetwork

# Directory states.
DIR_INVALID = 0
DIR_SHARED = 1
DIR_EXCLUSIVE = 2

# Service classes returned to the node memory systems.
SVC_LOCAL = 0
SVC_REMOTE = 1
SVC_DIRTY = 2


class DirectoryEntry:
    __slots__ = ("state", "owner", "sharers", "last_writer", "migratory")

    def __init__(self) -> None:
        self.state = DIR_INVALID
        self.owner = -1
        self.sharers: Set[int] = set()
        self.last_writer = -1
        self.migratory = False


@dataclass
class CoherenceStats:
    """Sharing-pattern characterization counters (paper section 4.2)."""

    reads_local: int = 0
    reads_remote: int = 0
    reads_dirty: int = 0
    writes_local: int = 0
    writes_remote: int = 0
    writes_dirty: int = 0
    upgrades: int = 0
    invalidations_sent: int = 0
    writebacks: int = 0
    flushes: int = 0
    flush_converted_reads: int = 0    # dirty reads avoided thanks to a flush
    migratory_dirty_reads: int = 0
    migratory_writes: int = 0
    shared_writes: int = 0            # GETX on lines cached elsewhere
    migratory_lines: Set[int] = field(default_factory=set)
    migratory_write_by_line: Dict[int, int] = field(default_factory=dict)
    migratory_refs_by_pc: Dict[int, int] = field(default_factory=dict)

    def note_migratory_ref(self, pc: int, line: int, is_write: bool) -> None:
        self.migratory_refs_by_pc[pc] = \
            self.migratory_refs_by_pc.get(pc, 0) + 1
        if is_write:
            self.migratory_write_by_line[line] = \
                self.migratory_write_by_line.get(line, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot; sets and int-keyed maps become
        sorted pair lists so the encoding is deterministic."""
        out: Dict[str, object] = {
            name: getattr(self, name)
            for name in ("reads_local", "reads_remote", "reads_dirty",
                         "writes_local", "writes_remote", "writes_dirty",
                         "upgrades", "invalidations_sent", "writebacks",
                         "flushes", "flush_converted_reads",
                         "migratory_dirty_reads", "migratory_writes",
                         "shared_writes")
        }
        out["migratory_lines"] = sorted(self.migratory_lines)
        out["migratory_write_by_line"] = sorted(
            self.migratory_write_by_line.items())
        out["migratory_refs_by_pc"] = sorted(
            self.migratory_refs_by_pc.items())
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoherenceStats":
        kwargs = dict(data)
        kwargs["migratory_lines"] = set(kwargs.get("migratory_lines", ()))
        kwargs["migratory_write_by_line"] = {
            int(k): v for k, v in kwargs.get("migratory_write_by_line", ())}
        kwargs["migratory_refs_by_pc"] = {
            int(k): v for k, v in kwargs.get("migratory_refs_by_pc", ())}
        return cls(**kwargs)

    @property
    def dirty_read_fraction_migratory(self) -> float:
        if not self.reads_dirty:
            return 0.0
        return self.migratory_dirty_reads / self.reads_dirty

    @property
    def shared_write_fraction_migratory(self) -> float:
        if not self.shared_writes:
            return 0.0
        return self.migratory_writes / self.shared_writes


class CoherentMemory:
    """Directory controllers + memory banks of all nodes.

    ``invalidate_hooks`` is a list (one callable per node) invoked when the
    protocol removes a line from that node's hierarchy -- the node uses it
    to maintain cache inclusion and to detect speculative-load consistency
    violations (paper section 3.4).
    """

    def __init__(self, latencies: MemoryLatencies, mesh: MeshNetwork,
                 lines_per_page: int = 128,
                 migratory_read_speedup: float = 0.0,
                 migratory_protocol: bool = False):
        self.lat = latencies
        self.mesh = mesh
        self.n_nodes = mesh.n_nodes
        self._lines_per_page = lines_per_page
        self._dir_next_free = [0] * self.n_nodes
        self._mem_next_free = [0] * self.n_nodes
        self._entries: Dict[int, DirectoryEntry] = {}
        self.invalidate_hooks: List = [None] * self.n_nodes
        # Per-node predicate: does the node hold a *modified* copy?  An
        # exclusive-but-clean (E) line is supplied by memory; only truly
        # dirty lines need the long cache-to-cache transfer.
        self.dirty_hooks: List = [None] * self.n_nodes
        # Invoked on the old owner when a remote read demotes its
        # exclusive copy to shared: the copy stays cached but loses write
        # permission and its dirty bit (memory now holds the data).
        self.downgrade_hooks: List = [None] * self.n_nodes
        self.stats = CoherenceStats()
        self.migratory_read_speedup = migratory_read_speedup
        # Stenstrom et al. [25] adaptive protocol: reads to migratory
        # lines transfer *exclusive* ownership, eliminating the later
        # upgrade.  The paper's footnote 2 argues this gains nothing
        # under a relaxed model because write latency is already hidden;
        # the ablation benchmark verifies that claim.
        self.migratory_protocol = migratory_protocol
        self.migratory_exclusive_grants = 0
        # Forward-progress watchdog scratch: when armed (a dict), counts
        # exclusive-ownership transfers per line since the last retirement
        # machine-wide -- repeated transfers on one line with no progress
        # is the coherence-livelock signature.  None = disarmed (default);
        # never snapshotted, never affects timing.
        self._ping: Optional[Dict[int, int]] = None

    # -- helpers -----------------------------------------------------------

    def home_of(self, line: int) -> int:
        return (line // self._lines_per_page) % self.n_nodes

    def entry(self, line: int) -> DirectoryEntry:
        e = self._entries.get(line)
        if e is None:
            e = DirectoryEntry()
            self._entries[line] = e
        return e

    def _queue(self, next_free: List[int], node: int, t: int,
               occupancy: int) -> int:
        start = max(t, next_free[node])
        next_free[node] = start + occupancy
        return start

    def _memory_latency(self, node: int, home: int, start: int
                        ) -> Tuple[int, int]:
        """(completion time, service class) for a memory-serviced request."""
        mem_start = self._queue(self._mem_next_free, home, start,
                                self.lat.memory_occupancy)
        if node == home:
            return mem_start + self.lat.local_read, SVC_LOCAL
        hops = self.mesh.hops(node, home)
        return (mem_start + self.lat.remote_read_base
                + hops * self.lat.remote_read_per_hop), SVC_REMOTE

    def _cache_to_cache_latency(self, node: int, home: int, owner: int,
                                start: int) -> int:
        hops = self.mesh.hops(node, home) + self.mesh.hops(home, owner)
        return (start + self.lat.cache_to_cache_base
                + hops * self.lat.cache_to_cache_per_hop)

    def _invalidate_node(self, node: int, line: int) -> None:
        self.stats.invalidations_sent += 1
        hook = self.invalidate_hooks[node]
        if hook is not None:
            hook(line)

    def _owner_is_dirty(self, node: int, line: int) -> bool:
        hook = self.dirty_hooks[node]
        return True if hook is None else hook(line)

    def _downgrade_node(self, node: int, line: int) -> None:
        hook = self.downgrade_hooks[node]
        if hook is not None:
            hook(line)

    # -- transactions --------------------------------------------------------

    def read(self, node: int, line: int, now: int, pc: int = 0
             ) -> Tuple[int, int, bool]:
        """Read (GETS).  Returns (completion, service class, E-granted).

        MESI: a read to an uncached line is granted exclusive-clean (E),
        enabling later silent write upgrades by the same node.
        """
        e = self.entry(line)
        home = self.home_of(line)
        inject = self.mesh.inject(node, now) if node != home else now
        start = self._queue(self._dir_next_free, home, inject,
                            self.lat.directory_occupancy)

        if e.state == DIR_EXCLUSIVE and e.owner != node:
            owner = e.owner
            if self._owner_is_dirty(owner, line):
                done = self._cache_to_cache_latency(node, home, owner, start)
                if e.migratory:
                    self.stats.migratory_dirty_reads += 1
                    self.stats.note_migratory_ref(pc, line, is_write=False)
                    if self.migratory_read_speedup:
                        # Figure 7(b) bound experiment: migratory dirty
                        # reads serviced as if memory held the data.
                        saved = int((done - start)
                                    * self.migratory_read_speedup)
                        done -= saved
                self.stats.reads_dirty += 1
                if self.migratory_protocol and e.migratory:
                    # Adaptive migratory protocol: hand the reader
                    # exclusive ownership, invalidating the old owner.
                    self._invalidate_node(owner, line)
                    e.state = DIR_EXCLUSIVE
                    e.owner = node
                    e.sharers = set()
                    self.migratory_exclusive_grants += 1
                    if self._ping is not None:
                        self._ping[line] = self._ping.get(line, 0) + 1
                    return done, SVC_DIRTY, True
                # Owner's copy is demoted to shared; memory has the data.
                self._downgrade_node(owner, line)
                e.state = DIR_SHARED
                e.sharers = {owner, node}
                e.owner = -1
                return done, SVC_DIRTY, False
            # Exclusive but clean (E): memory supplies; owner demoted.
            done, svc = self._memory_latency(node, home, start)
            if svc == SVC_LOCAL:
                self.stats.reads_local += 1
            else:
                self.stats.reads_remote += 1
            self._downgrade_node(owner, line)
            e.state = DIR_SHARED
            e.sharers = {owner, node}
            e.owner = -1
            return done, svc, False

        done, svc = self._memory_latency(node, home, start)
        if svc == SVC_LOCAL:
            self.stats.reads_local += 1
        else:
            self.stats.reads_remote += 1
        if e.state == DIR_INVALID:
            # Exclusive-clean grant (MESI E state).
            e.state = DIR_EXCLUSIVE
            e.owner = node
            e.sharers = set()
            return done, svc, True
        if e.state == DIR_EXCLUSIVE:
            # Owner re-reading after a silent drop of its own line.
            e.state = DIR_SHARED
            e.owner = -1
        e.sharers.add(node)
        return done, svc, False

    def write(self, node: int, line: int, now: int, pc: int = 0
              ) -> Tuple[int, int]:
        """Read-exclusive / upgrade (GETX).  Returns (done, service)."""
        e = self.entry(line)
        home = self.home_of(line)
        inject = self.mesh.inject(node, now) if node != home else now
        start = self._queue(self._dir_next_free, home, inject,
                            self.lat.directory_occupancy)

        copies = len(e.sharers) if e.state == DIR_SHARED else (
            1 if e.state == DIR_EXCLUSIVE else 0)
        cached_elsewhere = (
            (e.state == DIR_EXCLUSIVE and e.owner != node)
            or (e.state == DIR_SHARED and (e.sharers - {node})))
        if cached_elsewhere:
            self.stats.shared_writes += 1
            if self._ping is not None:
                self._ping[line] = self._ping.get(line, 0) + 1

        # Migratory detection heuristic (paper footnote 2).
        if (copies == 2 and e.last_writer != -1 and e.last_writer != node
                and node in (e.sharers | {e.owner})):
            if not e.migratory:
                e.migratory = True
                self.stats.migratory_lines.add(line)
        if e.migratory and cached_elsewhere:
            self.stats.migratory_writes += 1
            self.stats.note_migratory_ref(pc, line, is_write=True)

        if e.state == DIR_EXCLUSIVE and e.owner != node:
            owner = e.owner
            if self._owner_is_dirty(owner, line):
                done = self._cache_to_cache_latency(node, home, owner, start)
                self.stats.writes_dirty += 1
                svc = SVC_DIRTY
            else:
                done, svc = self._memory_latency(node, home, start)
                if svc == SVC_LOCAL:
                    self.stats.writes_local += 1
                else:
                    self.stats.writes_remote += 1
            self._invalidate_node(owner, line)
        elif e.state == DIR_SHARED and node in e.sharers:
            # Upgrade: ownership grant + invalidations, no data transfer.
            # Sorted so invalidation-hook order never depends on set
            # iteration order (repro lint R003).
            for sharer in sorted(e.sharers - {node}):
                self._invalidate_node(sharer, line)
            if node == home:
                done = start + self.lat.local_read // 2
                svc = SVC_LOCAL
            else:
                hops = self.mesh.hops(node, home)
                done = (start + (self.lat.remote_read_base
                                 + hops * self.lat.remote_read_per_hop) // 2)
                svc = SVC_REMOTE
            self.stats.upgrades += 1
            if svc == SVC_LOCAL:
                self.stats.writes_local += 1
            else:
                self.stats.writes_remote += 1
        else:
            for sharer in sorted(e.sharers - {node}):
                self._invalidate_node(sharer, line)
            done, svc = self._memory_latency(node, home, start)
            if svc == SVC_LOCAL:
                self.stats.writes_local += 1
            else:
                self.stats.writes_remote += 1

        e.state = DIR_EXCLUSIVE
        e.owner = node
        e.sharers = set()
        e.last_writer = node
        return done, svc

    def flush(self, node: int, line: int, now: int) -> None:
        """Software sharing writeback: update memory, keep a clean copy.

        Fire-and-forget from the issuing processor's point of view; costs
        directory and memory occupancy at the home node.
        """
        e = self.entry(line)
        if e.state != DIR_EXCLUSIVE or e.owner != node:
            return
        home = self.home_of(line)
        inject = self.mesh.inject(node, now) if node != home else now
        start = self._queue(self._dir_next_free, home, inject,
                            self.lat.directory_occupancy)
        self._queue(self._mem_next_free, home, start,
                    self.lat.memory_occupancy)
        e.state = DIR_SHARED
        e.sharers = {node}
        e.owner = -1
        self.stats.flushes += 1
        if e.migratory:
            self.stats.flush_converted_reads += 1

    def writeback(self, node: int, line: int, now: int) -> None:
        """Eviction of a dirty (owned) line: memory update, line uncached."""
        e = self._entries.get(line)
        if e is None or e.state != DIR_EXCLUSIVE or e.owner != node:
            return
        home = self.home_of(line)
        inject = self.mesh.inject(node, now) if node != home else now
        start = self._queue(self._dir_next_free, home, inject,
                            self.lat.directory_occupancy)
        self._queue(self._mem_next_free, home, start,
                    self.lat.memory_occupancy)
        e.state = DIR_INVALID
        e.owner = -1
        self.stats.writebacks += 1

    def evict_clean(self, node: int, line: int) -> None:
        """Silent drop of a shared copy (replacement hint)."""
        e = self._entries.get(line)
        if e is None:
            return
        e.sharers.discard(node)
        if e.state == DIR_SHARED and not e.sharers:
            e.state = DIR_INVALID

    # -- checkpointing -------------------------------------------------------

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint).
        Hooks are wiring (rebuilt when the node memory systems register
        themselves) and ``_ping`` is run-local, so neither is captured."""
        return {"dir_next_free": list(self._dir_next_free),
                "mem_next_free": list(self._mem_next_free),
                "entries": copy.deepcopy(self._entries, memo),
                "stats": copy.deepcopy(self.stats, memo),
                "migratory_exclusive_grants": self.migratory_exclusive_grants}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._dir_next_free = list(state["dir_next_free"])
        self._mem_next_free = list(state["mem_next_free"])
        self._entries = state["entries"]
        self.stats = state["stats"]
        self.migratory_exclusive_grants = state["migratory_exclusive_grants"]
