"""Memory-system substrate: caches, MSHRs, TLBs, directory coherence,
mesh interconnect, and the per-node memory hierarchy composition."""

from repro.mem.cache import CacheArray, MshrFile
from repro.mem.tlb import PageTable, Tlb
from repro.mem.interconnect import MeshNetwork
from repro.mem.coherence import CoherentMemory, CoherenceStats
from repro.mem.memsys import (
    CAT_DIRTY,
    CAT_DTLB,
    CAT_L1_HIT,
    CAT_L2_HIT,
    CAT_LOCAL,
    CAT_REMOTE,
    MemResult,
    NodeMemorySystem,
)

__all__ = [
    "CacheArray", "MshrFile", "PageTable", "Tlb", "MeshNetwork",
    "CoherentMemory", "CoherenceStats", "NodeMemorySystem", "MemResult",
    "CAT_L1_HIT", "CAT_L2_HIT", "CAT_LOCAL", "CAT_REMOTE", "CAT_DIRTY",
    "CAT_DTLB",
]
