"""Instruction stream buffer between the L1 I-cache and L2 (section 4.1).

A stream buffer (Jouppi [10]) is a small FIFO of prefetched cache lines.
On an L1I miss that hits in the buffer, the line is transferred to the L1
quickly and the buffer tops itself up by prefetching the next sequential
lines; on a miss that does not hit any entry, the buffer is flushed and a
fresh stream is started.  The paper shows a 2-4 entry buffer removes most
of OLTP's instruction stall time.

Prefetches are issued through the node's L2 path by the owning
:class:`~repro.mem.memsys.NodeMemorySystem`, so useless prefetches consume
real L2/directory bandwidth -- which is exactly how the paper's 8-entry
buffer loses performance to contention.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class _StreamEntry:
    __slots__ = ("line", "ready_at")

    def __init__(self, line: int, ready_at: int):
        self.line = line
        self.ready_at = ready_at


class InstructionStreamBuffer:
    """N-entry FIFO stream buffer.

    ``fetch_line`` is a callback ``(line, now) -> ready_at`` that performs
    the actual prefetch through the L2/memory path and returns when the
    line will arrive.
    """

    def __init__(self, n_entries: int,
                 fetch_line: Callable[[int, int], int],
                 transfer_time: int = 2, max_issue_per_probe: int = 2):
        self.n_entries = n_entries
        self._fetch_line = fetch_line
        self._transfer_time = transfer_time
        self._max_issue = max_issue_per_probe
        self._entries: List[_StreamEntry] = []
        self._next_line = 0
        self.hits = 0
        self.misses = 0
        self.prefetches_issued = 0
        self.flushes = 0

    @property
    def enabled(self) -> bool:
        return self.n_entries > 0

    def probe(self, line: int, now: int) -> Optional[int]:
        """L1I miss for ``line``: returns the cycle the line is available
        from the buffer, or ``None`` if the buffer does not hold it.

        A hit consumes the entry (and everything ahead of it) and tops the
        buffer up with further sequential prefetches; a miss flushes the
        buffer and starts a new stream at ``line + 1``.
        """
        if not self.enabled:
            return None
        hit_index = None
        for i, e in enumerate(self._entries):
            if e.line == line:
                hit_index = i
                break
        if hit_index is None:
            self.misses += 1
            self.flushes += bool(self._entries)
            self._entries.clear()
            self._next_line = line + 1
            self._top_up(now)
            return None
        self.hits += 1
        entry = self._entries[hit_index]
        ready = max(now, entry.ready_at) + self._transfer_time
        del self._entries[:hit_index + 1]
        self._top_up(now)
        return ready

    def _top_up(self, now: int) -> None:
        # At most a couple of prefetches launch per probe; deeper entries
        # fill on later probes.  This paces L2-port consumption so large
        # buffers degrade gracefully (the paper's 8-entry buffer loses
        # performance to useless-prefetch contention, not to a flood).
        issued = 0
        while len(self._entries) < self.n_entries and \
                issued < self._max_issue:
            line = self._next_line
            self._next_line += 1
            ready = self._fetch_line(line, now)
            self._entries.append(_StreamEntry(line, ready))
            self.prefetches_issued += 1
            issued += 1

    def invalidate(self, line: int) -> None:
        """Coherence invalidation may target a buffered line."""
        self._entries = [e for e in self._entries if e.line != line]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self, memo=None):
        """Mutable state for mid-run checkpointing (repro.run.checkpoint).
        The ``fetch_line`` callback is wiring, rebuilt on construction."""
        return {"entries": [(e.line, e.ready_at) for e in self._entries],
                "next_line": self._next_line,
                "hits": self.hits,
                "misses": self.misses,
                "prefetches_issued": self.prefetches_issued,
                "flushes": self.flushes}

    def restore(self, state) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._entries = [_StreamEntry(line, ready_at)
                         for line, ready_at in state["entries"]]
        self._next_line = state["next_line"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.prefetches_issued = state["prefetches_issued"]
        self.flushes = state["flushes"]
