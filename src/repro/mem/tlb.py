"""Virtual memory: bin-hopping page mapping and fully-associative TLBs.

The paper's virtual memory system uses a bin-hopping page-mapping policy
with 8K pages and separate 128-entry fully-associative instruction and data
TLBs (Figure 1).  Bin-hopping assigns successive page frames round-robin,
which in a CC-NUMA machine also spreads pages across home nodes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.params import TlbParams


class PageTable:
    """Global virtual-to-physical mapping shared by all processes.

    The SGA is a single shared mapping in Oracle (all processes attach the
    same addresses), so one table suffices: frames are handed out in
    bin-hopping (round-robin) order on first touch.
    """

    def __init__(self, page_size: int = 8192, n_nodes: int = 4):
        self.page_size = page_size
        self.n_nodes = n_nodes
        self._page_shift = page_size.bit_length() - 1
        self._frames: Dict[int, int] = {}
        self._next_frame = 0

    @property
    def page_shift(self) -> int:
        return self._page_shift

    def frame_of(self, vpage: int) -> int:
        frame = self._frames.get(vpage)
        if frame is None:
            frame = self._next_frame
            self._next_frame += 1
            self._frames[vpage] = frame
        return frame

    def home_node(self, frame: int) -> int:
        """Home memory/directory node of a physical frame."""
        return frame % self.n_nodes

    def translate_line(self, vaddr: int, line_shift: int = 6) -> int:
        """Virtual byte address -> physical line number."""
        vpage = vaddr >> self._page_shift
        frame = self.frame_of(vpage)
        lines_per_page = self.page_size >> line_shift
        offset_line = (vaddr >> line_shift) & (lines_per_page - 1)
        return frame * lines_per_page + offset_line

    @property
    def pages_mapped(self) -> int:
        return len(self._frames)

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"frames": dict(self._frames),
                "next_frame": self._next_frame}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._frames = dict(state["frames"])
        self._next_frame = state["next_frame"]


class Tlb:
    """Fully-associative LRU TLB."""

    def __init__(self, params: TlbParams):
        self.params = params
        self._entries: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, vpage: int) -> bool:
        """True on hit.  A miss installs the translation (refill cost is
        charged by the caller via ``params.miss_latency``)."""
        if self.params.perfect:
            self.hits += 1
            return True
        if vpage in self._entries:
            self._entries.move_to_end(vpage)
            self.hits += 1
            return True
        self.misses += 1
        self._entries[vpage] = True
        if len(self._entries) > self.params.entries:
            self._entries.popitem(last=False)
        return False

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"entries": OrderedDict(self._entries),
                "hits": self.hits,
                "misses": self.misses}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._entries = OrderedDict(state["entries"])
        self.hits = state["hits"]
        self.misses = state["misses"]
