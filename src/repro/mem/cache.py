"""Set-associative cache tag arrays and miss-status holding registers.

The simulator is a timing model: caches track only tags, LRU order and
dirty bits, never data.  MSHRs (Kroft [12] in the paper) bound the number
of outstanding misses per cache and coalesce requests to a line that is
already in flight; their occupancy over time feeds the Figure 2(d)-(g)
distributions via :class:`repro.stats.mshr.MshrOccupancy`.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.params import CacheParams


class CacheArray:
    """LRU set-associative tag array (write-back, write-allocate).

    Addresses are *line* numbers (byte address >> log2(line size)); the
    caller performs the shift once so hot-path arithmetic stays cheap.
    """

    def __init__(self, params: CacheParams):
        self.params = params
        self._set_mask = params.num_sets - 1
        self._assoc = params.assoc
        # One OrderedDict per set: line -> dirty flag, LRU order = insertion
        # order with move_to_end on touch.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(params.num_sets)]

    def lookup(self, line: int, touch: bool = True) -> bool:
        """True on hit; refreshes LRU order unless ``touch`` is False."""
        s = self._sets[line & self._set_mask]
        if touch:
            # move_to_end doubles as the membership probe: one dict
            # lookup instead of two on the (dominant) hit path.
            try:
                s.move_to_end(line)
            except KeyError:
                return False
            return True
        return line in s

    def insert(self, line: int, dirty: bool = False
               ) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns the evicted ``(line, was_dirty)`` or
        ``None``.  Inserting a present line just updates its dirty bit."""
        s = self._sets[line & self._set_mask]
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self._assoc:
            victim = s.popitem(last=False)
        s[line] = dirty
        return victim

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit; returns False if the line is absent."""
        s = self._sets[line & self._set_mask]
        if line not in s:
            return False
        s[line] = True
        return True

    def mark_clean(self, line: int) -> bool:
        """Clear the dirty bit (ownership downgrade: memory now holds the
        data); returns False if the line is absent."""
        s = self._sets[line & self._set_mask]
        if line not in s:
            return False
        s[line] = False
        return True

    def invalidate(self, line: int) -> Tuple[bool, bool]:
        """Remove ``line``; returns (was_present, was_dirty)."""
        s = self._sets[line & self._set_mask]
        dirty = s.pop(line, None)
        return (dirty is not None, bool(dirty))

    def is_dirty(self, line: int) -> bool:
        s = self._sets[line & self._set_mask]
        return bool(s.get(line, False))

    def occupancy(self) -> int:
        """Number of valid lines (testing / introspection)."""
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> set:
        """All valid line numbers, as one flat set.

        The batch backend's round planner mirrors the tag state into
        struct-of-arrays membership tables with this; it is a read-only
        copy (LRU order is irrelevant to residency), so building it
        never perturbs the simulated state.
        """
        lines: set = set()
        for s in self._sets:
            lines.update(s)
        return lines

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"sets": copy.deepcopy(self._sets, memo)}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._sets = state["sets"]


class MshrEntry:
    __slots__ = ("line", "done_at", "is_read", "exclusive", "started_at")

    def __init__(self, line: int, done_at: int, is_read: bool,
                 exclusive: bool, started_at: int):
        self.line = line
        self.done_at = done_at
        self.is_read = is_read
        self.exclusive = exclusive
        self.started_at = started_at


class MshrFile:
    """Bounded set of outstanding line misses with request coalescing.

    ``stats`` (optional) receives ``(start, end, is_read)`` intervals for
    occupancy-distribution plots.
    """

    def __init__(self, n_entries: int, stats=None):
        self.n_entries = n_entries
        self.stats = stats
        self._entries: Dict[int, MshrEntry] = {}
        # Lower bound on min(done_at) over live entries; lets expire()
        # return without scanning when nothing can have completed yet.
        # Derived cache only -- never checkpointed.
        self._min_done = 1 << 62

    def expire(self, now: int) -> None:
        """Retire entries whose miss has completed."""
        if now < self._min_done or not self._entries:
            return
        entries = self._entries
        done = [line for line, e in entries.items() if e.done_at <= now]
        for line in done:
            del entries[line]
        self._min_done = min(
            (e.done_at for e in entries.values()), default=1 << 62)

    def get(self, line: int) -> Optional[MshrEntry]:
        return self._entries.get(line)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.n_entries

    def outstanding(self) -> int:
        return len(self._entries)

    def earliest_done(self) -> int:
        """Completion time of the next entry to free (caller checked
        non-empty); used for structural-stall skip-ahead."""
        return min(e.done_at for e in self._entries.values())

    def register(self, line: int, now: int, done_at: int, is_read: bool,
                 exclusive: bool) -> MshrEntry:
        entry = MshrEntry(line, done_at, is_read, exclusive, now)
        self._entries[line] = entry
        if done_at < self._min_done:
            self._min_done = done_at
        if self.stats is not None:
            self.stats.add_interval(now, done_at, is_read)
        return entry

    def extend(self, entry: MshrEntry, done_at: int,
               exclusive: bool) -> None:
        """Coalesced request upgraded the in-flight miss (e.g. a store
        joining a read fetch needs exclusive ownership)."""
        if done_at > entry.done_at:
            if self.stats is not None:
                self.stats.add_interval(entry.done_at, done_at,
                                        entry.is_read)
            entry.done_at = done_at
        entry.exclusive = entry.exclusive or exclusive

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint).
        ``stats`` is a shared collector owned by the machine and snapshotted
        there, not here."""
        return {"entries": copy.deepcopy(self._entries, memo)}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._entries = state["entries"]
        self._min_done = min(
            (e.done_at for e in self._entries.values()), default=1 << 62)
