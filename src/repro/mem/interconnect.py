"""Two-dimensional wormhole-routed mesh interconnect model.

The paper's system connects four nodes with a 2D wormhole-routed mesh.
Rather than routing individual flits, this model computes per-transaction
network latency from hop distance (giving the paper's 160-180 cycle remote
and 280-310 cycle cache-to-cache ranges) and applies contention through
per-node network-interface occupancy counters.
"""

from __future__ import annotations

from typing import List


class MeshNetwork:
    """Hop-distance latency plus network-interface queueing."""

    def __init__(self, n_nodes: int, mesh_width: int = 2,
                 ni_occupancy: int = 4):
        if n_nodes > 1 and n_nodes % mesh_width:
            raise ValueError("n_nodes must be a multiple of mesh_width")
        self.n_nodes = n_nodes
        self.width = mesh_width if n_nodes > 1 else 1
        self._ni_occupancy = ni_occupancy
        self._ni_next_free: List[int] = [0] * n_nodes
        self.messages = 0

    def hops(self, src: int, dst: int) -> int:
        """Manhattan hop distance between two nodes."""
        if src == dst:
            return 0
        sx, sy = src % self.width, src // self.width
        dx, dy = dst % self.width, dst // self.width
        return abs(sx - dx) + abs(sy - dy)

    def inject(self, node: int, now: int) -> int:
        """Queue a message at ``node``'s network interface.

        Returns the cycle the message actually enters the network; the
        interface stays busy for ``ni_occupancy`` cycles per message, which
        is how bursts (e.g. useless stream-buffer prefetches) delay demand
        traffic.
        """
        start = max(now, self._ni_next_free[node])
        self._ni_next_free[node] = start + self._ni_occupancy
        self.messages += 1
        return start

    def reset_contention(self) -> None:
        self._ni_next_free = [0] * self.n_nodes

    def snapshot(self, memo=None):
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"ni_next_free": list(self._ni_next_free),
                "messages": self.messages}

    def restore(self, state) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._ni_next_free = list(state["ni_next_free"])
        self.messages = state["messages"]
