"""Multiprocessor system: processes, OS scheduler model, and the machine."""

from repro.system.process import Process
from repro.system.scheduler import CpuScheduler
from repro.system.machine import Machine

__all__ = ["Process", "CpuScheduler", "Machine"]
