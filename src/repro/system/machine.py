"""The simulated CC-NUMA multiprocessor (paper section 2.4).

A :class:`Machine` ties together one :class:`ProcessorCore` + node memory
system per node, the global page table, mesh network, directory-based
coherent memory, the shared lock table (lock values live in the simulated
environment -- paper section 2.2), and the per-CPU schedulers.

The main loop is cycle-driven with event skip-ahead: when every core
reports that nothing can happen before some future cycle, the clock jumps
there and the skipped cycles are charged to each core's current stall
category, preserving the paper's accounting convention at a fraction of
the simulation cost.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.cpu.core import FAR_FUTURE, ProcessorCore
from repro.cpu.smt import SmtCore
from repro.mem.coherence import CoherentMemory
from repro.mem.interconnect import MeshNetwork
from repro.mem.memsys import NodeMemorySystem
from repro.mem.tlb import PageTable
from repro.params import SystemParams
from repro.stats.breakdown import ExecutionBreakdown
from repro.stats.mshr import MshrOccupancyGroup
from repro.system.process import Process
from repro.system.scheduler import CpuScheduler


class DeadlockError(RuntimeError):
    """The simulation cannot make progress (indicates a modelling bug)."""


class Machine:
    """A complete simulated multiprocessor running a set of processes."""

    def __init__(self, params: SystemParams,
                 generators: Sequence[Iterator]):
        self.params = params
        n = params.n_nodes
        lines_per_page = params.page_size // params.l2.line_size
        self.page_table = PageTable(params.page_size, n)
        self.mesh = MeshNetwork(n, params.mesh_width if n > 1 else 1)
        self.memory = CoherentMemory(
            params.latencies, self.mesh, lines_per_page,
            migratory_read_speedup=params.migratory_read_speedup,
            migratory_protocol=params.migratory_protocol)
        self.lock_table: Dict[int, int] = {}

        self.l1d_mshr_stats = MshrOccupancyGroup(n, max_n=params.l1d.mshrs)
        self.l2_mshr_stats = MshrOccupancyGroup(n, max_n=params.l2.mshrs)
        self.nodes: List[NodeMemorySystem] = []
        self.cores: List[ProcessorCore] = []
        for node_id in range(n):
            memsys = NodeMemorySystem(
                node_id, params, self.page_table, self.memory,
                l1d_mshr_stats=self.l1d_mshr_stats[node_id],
                l2_mshr_stats=self.l2_mshr_stats[node_id])
            self.nodes.append(memsys)
            if params.processor.smt_contexts > 1:
                self.cores.append(SmtCore(node_id, params, memsys,
                                          self.lock_table))
            else:
                self.cores.append(ProcessorCore(node_id, params, memsys,
                                                self.lock_table))

        # Processes are pinned round-robin (dedicated-mode Oracle keeps the
        # same number of server processes per CPU).
        self.schedulers = [CpuScheduler(i) for i in range(n)]
        self.processes: List[Process] = []
        for pid, gen in enumerate(generators):
            process = Process(pid, gen, cpu=pid % n)
            self.processes.append(process)
            self.schedulers[process.cpu].add(process)

        self.now = 0
        self.idle_cycles = 0
        self._measure_started_at = 0

        # Opt-in runtime sanitizer (repro.check).  Attached last so it
        # wraps fully-constructed components; with ``check`` off nothing
        # is wrapped and the simulator runs the exact same code.
        self.checker = None
        if params.check:
            from repro.check.invariants import InvariantChecker
            self.checker = InvariantChecker(self)
            self.checker.attach()

    # ---------------------------------------------------------------- schedule

    def _dispatch_if_idle(self, cpu: int) -> None:
        core = self.cores[cpu]
        for _ in range(core.free_slots()):
            process = self.schedulers[cpu].pick_ready(self.now)
            if process is None:
                return
            core.assign_process(
                process, self.now,
                switch_cost=self.params.scheduler.context_switch_cycles)

    def _handle_syscall(self, cpu: int) -> None:
        core = self.cores[cpu]
        for process in core.blocked_processes(self.now):
            process.block(self.now
                          + self.params.scheduler.blocking_io_cycles)
            self.schedulers[cpu].add(process)
        self._dispatch_if_idle(cpu)

    # ---------------------------------------------------------------- main loop

    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)

    def run(self, instructions: int, max_cycles: int = 1 << 40) -> int:
        """Simulate until ``instructions`` more retire (across all cores).

        Returns the number of cycles elapsed during this call.
        """
        target = self.total_retired() + instructions
        start_cycle = self.now
        deadline = self.now + max_cycles
        # The cycle loop runs millions of iterations; bind the per-cycle
        # lookups once (same objects, pure speedup).
        cores = self.cores
        schedulers = self.schedulers
        dispatch_if_idle = self._dispatch_if_idle
        handle_syscall = self._handle_syscall
        indexed_cores = list(enumerate(cores))
        now = self.now
        while sum(core.retired for core in cores) < target:
            if now >= deadline:
                raise DeadlockError(
                    f"exceeded {max_cycles} cycles at "
                    f"{self.total_retired()} retired instructions")
            next_time = FAR_FUTURE
            for cpu, core in indexed_cores:
                dispatch_if_idle(cpu)
                t = core.tick(now)
                if core.syscall_retired:
                    handle_syscall(cpu)
                    t = now + 1
                if t < next_time:
                    next_time = t
            for core in cores:
                core.apply_pending_rollback(now)
                if core._rollback_to is not None:  # pragma: no cover
                    next_time = now + 1
            # Idle CPUs wake when a blocked process becomes ready.
            for cpu, core in indexed_cores:
                if core.process is None:
                    wake = schedulers[cpu].earliest_wake()
                    if wake is not None:
                        candidate = wake if wake > now else now + 1
                        if candidate < next_time:
                            next_time = candidate
            if next_time >= FAR_FUTURE:
                raise DeadlockError(
                    f"no core can make progress at cycle {now}")
            now = max(now + 1, next_time)
            self.now = now
        if self.checker is not None:
            self.checker.check_run_end()
        return now - start_cycle

    # ---------------------------------------------------------------- statistics

    def reset_stats(self) -> None:
        """Discard warmup-transient statistics (paper section 2.2) while
        keeping all architectural state (caches, directory, predictors)."""
        for core in self.cores:
            core.reset_stats()
        for node in self.nodes:
            node.l1i_accesses = node.l1i_misses = 0
            node.l1d_accesses = node.l1d_misses = 0
            node.l2_accesses = node.l2_misses = 0
            node.itlb.hits = node.itlb.misses = 0
            node.dtlb.hits = node.dtlb.misses = 0
        for core in self.cores:
            for physical in core.physical_cores():
                physical.bpred.predictions = 0
                physical.bpred.mispredictions = 0
        self.l1d_mshr_stats.reset()
        self.l2_mshr_stats.reset()
        self.memory.stats = type(self.memory.stats)()
        self._measure_started_at = self.now

    @property
    def measured_cycles(self) -> int:
        return self.now - self._measure_started_at

    def breakdown(self) -> ExecutionBreakdown:
        """Aggregate execution-time breakdown across all cores."""
        return ExecutionBreakdown.merged(core.stats for core in self.cores)

    def miss_rates(self) -> Dict[str, float]:
        def rate(misses: int, accesses: int) -> float:
            return misses / accesses if accesses else 0.0
        l1i = rate(sum(x.l1i_misses for x in self.nodes),
                   sum(x.l1i_accesses for x in self.nodes))
        l1d = rate(sum(x.l1d_misses for x in self.nodes),
                   sum(x.l1d_accesses for x in self.nodes))
        l2 = rate(sum(x.l2_misses for x in self.nodes),
                  sum(x.l2_accesses for x in self.nodes))
        return {"l1i": l1i, "l1d": l1d, "l2": l2}

    def misprediction_rate(self) -> float:
        physical = [p for core in self.cores
                    for p in core.physical_cores()]
        predictions = sum(c.bpred.predictions for c in physical)
        mispredictions = sum(c.bpred.mispredictions for c in physical)
        return mispredictions / predictions if predictions else 0.0
