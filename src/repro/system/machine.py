"""The simulated CC-NUMA multiprocessor (paper section 2.4).

A :class:`Machine` ties together one :class:`ProcessorCore` + node memory
system per node, the global page table, mesh network, directory-based
coherent memory, the shared lock table (lock values live in the simulated
environment -- paper section 2.2), and the per-CPU schedulers.

The main loop is cycle-driven with event skip-ahead: when every core
reports that nothing can happen before some future cycle, the clock jumps
there and the skipped cycles are charged to each core's current stall
category, preserving the paper's accounting convention at a fraction of
the simulation cost.
"""

from __future__ import annotations

import copy
import warnings
from typing import Dict, Iterator, List, Optional, Sequence

from repro.cpu.core import (
    FAR_FUTURE,
    ST_MEMACC,
    ST_MEMQ,
    ProcessorCore,
    WindowEntry,
)
from repro.cpu.batch import MIN_ROUND, PLAN_BACKOFF, make_planner
from repro.cpu.smt import SmtCore
from repro.mem.coherence import CoherentMemory
from repro.mem.interconnect import MeshNetwork
from repro.mem.memsys import NodeMemorySystem
from repro.mem.tlb import PageTable
from repro.params import SystemParams
from repro.stats.breakdown import ExecutionBreakdown
from repro.stats.mshr import MshrOccupancyGroup
from repro.system.process import Process
from repro.system.scheduler import CpuScheduler
from repro.trace.instr import OP_LOCK_ACQ, OP_NAMES

#: Version stamp embedded in Machine.snapshot() payloads; bump whenever
#: the captured state shape changes incompatibly.
SNAPSHOT_FORMAT = 1

#: Exclusive-ownership transfers on a single line, with no instruction
#: retiring anywhere, before the watchdog calls it a coherence livelock.
LIVELOCK_TRANSFERS = 8


class DeadlockError(RuntimeError):
    """The simulation cannot make progress (indicates a modelling bug)."""


#: Backends already warned about falling back to the reference loop under
#: an attached checker (one warning per backend per interpreter).
_warned_checker_fallback: set = set()


def _warn_checker_fallback(backend: str) -> None:
    if backend in _warned_checker_fallback:
        return
    _warned_checker_fallback.add(backend)
    warnings.warn(
        f"params.backend == {backend!r} but the invariant checker is "
        f"attached; running the reference loop instead (the checker's "
        f"wrappers require every core to be polled each grid cycle)",
        RuntimeWarning, stacklevel=3)


class WedgeError(RuntimeError):
    """The forward-progress watchdog tripped: no instruction retired for
    the configured number of cycles (``SystemParams.watchdog_cycles`` /
    ``watchdog_node_cycles``).  Carries a structured classification so
    crash-triage bundles and ``repro replay`` can report the wedge kind
    without parsing the message."""

    def __init__(self, kind: str, cycle: int, node: Optional[int] = None,
                 line: Optional[int] = None, retired: int = 0,
                 detail: str = ""):
        self.kind = kind
        self.cycle = cycle
        self.node = node
        self.line = line
        self.retired = retired
        self.detail = detail
        where = "machine-wide" if node is None else f"node {node}"
        super().__init__(
            f"forward-progress watchdog tripped ({where}) at cycle "
            f"{cycle}, {retired} retired: {kind}"
            + (f" -- {detail}" if detail else ""))

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "cycle": self.cycle, "node": self.node,
                "line": self.line, "retired": self.retired,
                "detail": self.detail}


class Machine:
    """A complete simulated multiprocessor running a set of processes."""

    def __init__(self, params: SystemParams,
                 generators: Sequence[Iterator]):
        self.params = params
        n = params.n_nodes
        lines_per_page = params.page_size // params.l2.line_size
        self.page_table = PageTable(params.page_size, n)
        self.mesh = MeshNetwork(n, params.mesh_width if n > 1 else 1)
        self.memory = CoherentMemory(
            params.latencies, self.mesh, lines_per_page,
            migratory_read_speedup=params.migratory_read_speedup,
            migratory_protocol=params.migratory_protocol)
        self.lock_table: Dict[int, int] = {}

        self.l1d_mshr_stats = MshrOccupancyGroup(n, max_n=params.l1d.mshrs)
        self.l2_mshr_stats = MshrOccupancyGroup(n, max_n=params.l2.mshrs)
        self.nodes: List[NodeMemorySystem] = []
        self.cores: List[ProcessorCore] = []
        for node_id in range(n):
            memsys = NodeMemorySystem(
                node_id, params, self.page_table, self.memory,
                l1d_mshr_stats=self.l1d_mshr_stats[node_id],
                l2_mshr_stats=self.l2_mshr_stats[node_id])
            self.nodes.append(memsys)
            if params.processor.smt_contexts > 1:
                self.cores.append(SmtCore(node_id, params, memsys,
                                          self.lock_table))
            else:
                self.cores.append(ProcessorCore(node_id, params, memsys,
                                                self.lock_table))

        # Processes are pinned round-robin (dedicated-mode Oracle keeps the
        # same number of server processes per CPU).
        self.schedulers = [CpuScheduler(i) for i in range(n)]
        self.processes: List[Process] = []
        for pid, gen in enumerate(generators):
            process = Process(pid, gen, cpu=pid % n)
            self.processes.append(process)
            self.schedulers[process.cpu].add(process)

        self.now = 0
        self.idle_cycles = 0
        self._measure_started_at = 0
        # The loop implementation the last run() actually used ("reference"
        # when a checker forces the reference path); recorded in result
        # payloads so fallbacks are visible.
        self.effective_backend = "reference"

        # Opt-in runtime sanitizer (repro.check).  Attached last so it
        # wraps fully-constructed components; with ``check`` off nothing
        # is wrapped and the simulator runs the exact same code.
        self.checker = None
        if params.check:
            from repro.check.invariants import InvariantChecker
            self.checker = InvariantChecker(self)
            self.checker.attach()

    # ---------------------------------------------------------------- schedule

    def _dispatch_if_idle(self, cpu: int) -> None:
        core = self.cores[cpu]
        for _ in range(core.free_slots()):
            process = self.schedulers[cpu].pick_ready(self.now)
            if process is None:
                return
            core.assign_process(
                process, self.now,
                switch_cost=self.params.scheduler.context_switch_cycles)

    def _handle_syscall(self, cpu: int) -> None:
        core = self.cores[cpu]
        for process in core.blocked_processes(self.now):
            process.block(self.now
                          + self.params.scheduler.blocking_io_cycles)
            self.schedulers[cpu].add(process)
        self._dispatch_if_idle(cpu)

    # ---------------------------------------------------------------- main loop

    def total_retired(self) -> int:
        return sum(core.retired for core in self.cores)

    def run(self, instructions: int, max_cycles: int = 1 << 40) -> int:
        """Simulate until ``instructions`` more retire (across all cores).

        Returns the number of cycles elapsed during this call.

        With ``params.backend == "fast"`` the certified-skip loop
        (:meth:`_run_fast`) is used instead of the uniform grid walk, and
        with ``"batch"`` the dense-round variant (:meth:`_run_batch`);
        both produce byte-identical state and statistics.  Sanitized runs
        (``params.check``) always take the reference path: the invariant
        checker's wrappers assume every core is polled every grid cycle.
        A forced fallback is announced once per backend and recorded in
        ``effective_backend``.
        """
        backend = self.params.backend
        if self.checker is None:
            self.effective_backend = backend
            if backend == "fast":
                return self._run_fast(instructions, max_cycles)
            if backend == "batch":
                return self._run_batch(instructions, max_cycles)
        else:
            self.effective_backend = "reference"
            if backend != "reference":
                _warn_checker_fallback(backend)
        target = self.total_retired() + instructions
        start_cycle = self.now
        deadline = self.now + max_cycles
        # The cycle loop runs millions of iterations; bind the per-cycle
        # lookups once (same objects, pure speedup).
        cores = self.cores
        schedulers = self.schedulers
        dispatch_if_idle = self._dispatch_if_idle
        handle_syscall = self._handle_syscall
        indexed_cores = list(enumerate(cores))
        now = self.now
        # Forward-progress watchdog (off by default: one extra branch per
        # iteration).  All of its bookkeeping lives in run()-locals so
        # checkpoints never capture it.
        wd_global = self.params.watchdog_cycles
        wd_node = self.params.watchdog_node_cycles
        wd_on = wd_global > 0 or wd_node > 0
        if wd_on:
            if self.memory._ping is None:
                self.memory._ping = {}
            wd_total = self.total_retired()
            wd_cycle = now
            wd_node_retired = [core.retired for core in cores]
            wd_node_cycle = [now] * len(cores)
        while True:
            total_now = sum(core.retired for core in cores)
            if total_now >= target:
                break
            if wd_on:
                if total_now != wd_total:
                    wd_total = total_now
                    wd_cycle = now
                    self.memory._ping.clear()
                elif wd_global and now - wd_cycle >= wd_global:
                    raise self._classify_wedge(now, node=None)
                if wd_node:
                    for cpu, core in indexed_cores:
                        r = core.retired
                        if r != wd_node_retired[cpu] or core.process is None:
                            wd_node_retired[cpu] = r
                            wd_node_cycle[cpu] = now
                        elif now - wd_node_cycle[cpu] >= wd_node:
                            raise self._classify_wedge(now, node=cpu)
            if now >= deadline:
                raise DeadlockError(
                    f"exceeded {max_cycles} cycles at "
                    f"{self.total_retired()} retired instructions")
            next_time = FAR_FUTURE
            for cpu, core in indexed_cores:
                dispatch_if_idle(cpu)
                t = core.tick(now)
                if core.syscall_retired:
                    handle_syscall(cpu)
                    t = now + 1
                if t < next_time:
                    next_time = t
            for core in cores:
                core.apply_pending_rollback(now)
                if core._rollback_to is not None:  # pragma: no cover
                    next_time = now + 1
            # Idle CPUs wake when a blocked process becomes ready.
            for cpu, core in indexed_cores:
                if core.process is None:
                    wake = schedulers[cpu].earliest_wake()
                    if wake is not None:
                        candidate = wake if wake > now else now + 1
                        if candidate < next_time:
                            next_time = candidate
            if next_time >= FAR_FUTURE:
                raise DeadlockError(
                    f"no core can make progress at cycle {now}")
            now = max(now + 1, next_time)
            self.now = now
        if self.checker is not None:
            self.checker.check_run_end()
        return now - start_cycle

    def _run_fast(self, instructions: int, max_cycles: int) -> int:
        """Certified-skip main loop (``SystemParams.backend == "fast"``).

        Visits exactly the same grid of cycle numbers as :meth:`run`, but
        only ticks a core at a grid point when something can actually
        happen there.  A core is *due* when (a) its previous tick was not
        certified as a no-op (``tick_quiet``), (b) its reported wake
        cycle has arrived, (c) it took a rollback squash, or (d) the
        scheduler can seat a process on a free slot.  Skipped ticks are
        reproduced exactly by gap crediting inside the next real tick
        (or by ``settle()`` at exit): each skipped cycle would have
        charged 1.0 cycle to the core's unchanged stall category.

        Because every wake a skipped core contributes to the grid is the
        value its own tick would have returned (certification), the grid
        -- and therefore every cycle count, stall breakdown, watchdog
        trip, and checkpoint snapshot -- is byte-identical to the
        reference backend's.
        """
        target = self.total_retired() + instructions
        start_cycle = self.now
        deadline = self.now + max_cycles
        cores = self.cores
        schedulers = self.schedulers
        dispatch_if_idle = self._dispatch_if_idle
        handle_syscall = self._handle_syscall
        indexed_cores = list(enumerate(cores))
        now = self.now
        smt = self.params.processor.smt_contexts > 1
        # Flat per-core event state, indexed by cpu: the last wake each
        # core reported, whether that wake is certified (the core may be
        # skipped until then), the retired count last observed (for an
        # incremental machine-wide total), and the cached earliest wake
        # of each scheduler (only a cpu's own tick can change it).
        wake = [now] * len(cores)
        quiet = [False] * len(cores)
        retired_seen = [core.retired for core in cores]
        sched_wake = [s.earliest_wake() for s in schedulers]
        total_now = sum(retired_seen)
        last_step = -1
        wd_global = self.params.watchdog_cycles
        wd_node = self.params.watchdog_node_cycles
        wd_on = wd_global > 0 or wd_node > 0
        if wd_on:
            if self.memory._ping is None:
                self.memory._ping = {}
            ping = self.memory._ping
            wd_total = total_now
            wd_cycle = now
            wd_node_retired = list(retired_seen)
            wd_node_cycle = [now] * len(cores)
        while True:
            if total_now >= target:
                break
            if wd_on:
                if total_now != wd_total:
                    wd_total = total_now
                    wd_cycle = now
                    ping.clear()
                elif wd_global and now - wd_cycle >= wd_global:
                    raise self._classify_wedge(now, node=None)
                if wd_node:
                    for cpu, core in indexed_cores:
                        r = retired_seen[cpu]
                        if r != wd_node_retired[cpu] or core.process is None:
                            wd_node_retired[cpu] = r
                            wd_node_cycle[cpu] = now
                        elif now - wd_node_cycle[cpu] >= wd_node:
                            raise self._classify_wedge(now, node=cpu)
            if now >= deadline:
                raise DeadlockError(
                    f"exceeded {max_cycles} cycles at "
                    f"{self.total_retired()} retired instructions")
            last_step = now
            next_time = FAR_FUTURE
            for cpu, core in indexed_cores:
                if quiet[cpu] and wake[cpu] > now:
                    w = sched_wake[cpu]
                    if w is None or w > now:
                        seat = False
                    elif smt:
                        seat = core.free_slots() > 0
                    else:
                        seat = core.process is None
                    if not seat:
                        t = wake[cpu]
                        if t < next_time:
                            next_time = t
                        continue
                dispatch_if_idle(cpu)
                t = core.tick_fast(now)
                if core.syscall_retired:
                    handle_syscall(cpu)
                    t = now + 1
                    quiet[cpu] = False
                else:
                    quiet[cpu] = core.tick_quiet
                wake[cpu] = t
                r = core.retired
                if r != retired_seen[cpu]:
                    total_now += r - retired_seen[cpu]
                    retired_seen[cpu] = r
                sched_wake[cpu] = schedulers[cpu].earliest_wake()
                if t < next_time:
                    next_time = t
            for cpu, core in indexed_cores:
                if core._rollback_to is None:
                    continue
                core.apply_pending_rollback(now)
                quiet[cpu] = False  # squashed state invalidates the wake
            # Idle CPUs wake when a blocked process becomes ready.
            for cpu, core in indexed_cores:
                if core.process is None:
                    w = sched_wake[cpu]
                    if w is not None:
                        candidate = w if w > now else now + 1
                        if candidate < next_time:
                            next_time = candidate
            if next_time >= FAR_FUTURE:
                raise DeadlockError(
                    f"no core can make progress at cycle {now}")
            now = max(now + 1, next_time)
            self.now = now
        # The reference loop ticks every core at every grid point, so at
        # exit each core's accounting extends through the last one; bring
        # skipped cores up to it so snapshots are byte-identical.
        if last_step >= 0:
            for core in cores:
                core.settle(last_step)
        return now - start_cycle

    def _run_batch(self, instructions: int, max_cycles: int) -> int:
        """Dense-round main loop (``SystemParams.backend == "batch"``).

        The certified-skip loop of :meth:`_run_fast`, augmented with
        *rounds* planned by :mod:`repro.cpu.batch`: spans of cycles over
        which every active core's window, store buffer, and upcoming
        instructions classify as resident and hazard-free against a
        mirrored copy of the cache/TLB tag state.  Inside a round the
        span cores are ticked densely every cycle
        (:meth:`~repro.cpu.core.ProcessorCore.tick_span`) with
        retirement statistics batched per round -- no per-cycle
        next-event computation, wake certification, or grid bookkeeping.

        Identity argument, in two halves.  (1) Dense ticking: a tick at
        a cycle the reference grid skipped is a no-op plus the exact
        1.0-cycle stall charge that gap crediting attributes for that
        cycle anyway, so extra ticks change nothing once accounting
        settles.  (2) Classification independence: in-round memory
        traffic flows through the ordinary access paths -- the planner's
        hot sets are consulted only while *planning*, never while
        executing -- so a misclassified round is merely slow, not wrong.
        Any unpredicted event (a cache miss, a non-hot op at retire, a
        syscall) poisons the round after its cycle completes faithfully,
        and the loop falls back to certified skipping.  Rounds are also
        capped so the instruction target cannot be crossed inside one,
        keeping the exit grid walk (and the final ``self.now``) exact.

        The planner declines ineligible configurations (non-RC
        consistency, in-order cores, SMT) and watchdog-armed runs; the
        loop then degrades to exactly :meth:`_run_fast`.
        """
        target = self.total_retired() + instructions
        start_cycle = self.now
        deadline = self.now + max_cycles
        cores = self.cores
        schedulers = self.schedulers
        dispatch_if_idle = self._dispatch_if_idle
        handle_syscall = self._handle_syscall
        indexed_cores = list(enumerate(cores))
        now = self.now
        smt = self.params.processor.smt_contexts > 1
        wake = [now] * len(cores)
        quiet = [False] * len(cores)
        retired_seen = [core.retired for core in cores]
        sched_wake = [s.earliest_wake() for s in schedulers]
        total_now = sum(retired_seen)
        last_step = -1
        wd_global = self.params.watchdog_cycles
        wd_node = self.params.watchdog_node_cycles
        wd_on = wd_global > 0 or wd_node > 0
        if wd_on:
            if self.memory._ping is None:
                self.memory._ping = {}
            ping = self.memory._ping
            wd_total = total_now
            wd_cycle = now
            wd_node_retired = list(retired_seen)
            wd_node_cycle = [now] * len(cores)
        # Watchdog trip cycles are part of the observable contract, and
        # rounds do not track per-cycle forward progress; armed runs
        # simply never use rounds.
        planner = None if wd_on else make_planner(self)
        next_plan_at = now
        # Failed plans back off exponentially: miss-dense phases (OLTP's
        # steady state) would otherwise pay the hot-set mirroring cost
        # every PLAN_BACKOFF cycles for nothing.  Backoff only delays
        # *planning*, never ticking, so it cannot affect simulated state.
        plan_backoff = PLAN_BACKOFF
        max_retire = self.params.processor.issue_width * len(cores)
        while True:
            if total_now >= target:
                break
            if wd_on:
                if total_now != wd_total:
                    wd_total = total_now
                    wd_cycle = now
                    ping.clear()
                elif wd_global and now - wd_cycle >= wd_global:
                    raise self._classify_wedge(now, node=None)
                if wd_node:
                    for cpu, core in indexed_cores:
                        r = retired_seen[cpu]
                        if r != wd_node_retired[cpu] or core.process is None:
                            wd_node_retired[cpu] = r
                            wd_node_cycle[cpu] = now
                        elif now - wd_node_cycle[cpu] >= wd_node:
                            raise self._classify_wedge(now, node=cpu)
            if now >= deadline:
                raise DeadlockError(
                    f"exceeded {max_cycles} cycles at "
                    f"{self.total_retired()} retired instructions")
            if planner is not None and now >= next_plan_at:
                limit = (target - total_now - 1) // max_retire
                if limit < MIN_ROUND:
                    # Endgame: the remaining budget no longer fits a
                    # round (and only shrinks); stop planning this run.
                    next_plan_at = deadline
                    plan = None
                else:
                    plan = planner.plan(now, wake, quiet, sched_wake,
                                        limit)
                if plan is None:
                    if next_plan_at <= now:
                        next_plan_at = now + plan_backoff
                        plan_backoff = min(plan_backoff * 2, 1024)
                else:
                    round_end, span = plan
                    poisoned = False
                    try:
                        while True:
                            self.now = now
                            last_step = now
                            for cpu, core in span:
                                if core.tick_span(now):
                                    poisoned = True
                                if core.syscall_retired:
                                    handle_syscall(cpu)
                                    poisoned = True
                                r = core.retired
                                if r != retired_seen[cpu]:
                                    total_now += r - retired_seen[cpu]
                                    retired_seen[cpu] = r
                            done = poisoned or now >= round_end or \
                                total_now >= target
                            now += 1
                            if done or now >= deadline:
                                break
                    finally:
                        # Fold the batched statistics in and force every
                        # span core due at the next grid cycle (a forced
                        # tick of a core the grid would have skipped is
                        # a certified no-op; see tick_span).
                        for cpu, core in span:
                            core.span_flush()
                            wake[cpu] = now
                            quiet[cpu] = False
                            sched_wake[cpu] = \
                                schedulers[cpu].earliest_wake()
                    self.now = now
                    plan_backoff = PLAN_BACKOFF
                    next_plan_at = now + PLAN_BACKOFF if poisoned else now
                    continue
            last_step = now
            next_time = FAR_FUTURE
            for cpu, core in indexed_cores:
                if quiet[cpu] and wake[cpu] > now:
                    w = sched_wake[cpu]
                    if w is None or w > now:
                        seat = False
                    elif smt:
                        seat = core.free_slots() > 0
                    else:
                        seat = core.process is None
                    if not seat:
                        t = wake[cpu]
                        if t < next_time:
                            next_time = t
                        continue
                dispatch_if_idle(cpu)
                t = core.tick_fast(now)
                if core.syscall_retired:
                    handle_syscall(cpu)
                    t = now + 1
                    quiet[cpu] = False
                else:
                    quiet[cpu] = core.tick_quiet
                wake[cpu] = t
                r = core.retired
                if r != retired_seen[cpu]:
                    total_now += r - retired_seen[cpu]
                    retired_seen[cpu] = r
                sched_wake[cpu] = schedulers[cpu].earliest_wake()
                if t < next_time:
                    next_time = t
            for cpu, core in indexed_cores:
                if core._rollback_to is None:
                    continue
                core.apply_pending_rollback(now)
                quiet[cpu] = False  # squashed state invalidates the wake
            # Idle CPUs wake when a blocked process becomes ready.
            for cpu, core in indexed_cores:
                if core.process is None:
                    w = sched_wake[cpu]
                    if w is not None:
                        candidate = w if w > now else now + 1
                        if candidate < next_time:
                            next_time = candidate
            if next_time >= FAR_FUTURE:
                raise DeadlockError(
                    f"no core can make progress at cycle {now}")
            now = max(now + 1, next_time)
            self.now = now
        if last_step >= 0:
            for core in cores:
                core.settle(last_step)
        return now - start_cycle

    # ---------------------------------------------------------------- watchdog

    def _classify_wedge(self, now: int, node: Optional[int]) -> WedgeError:
        """Build a classified WedgeError: coherence livelock (ownership
        ping-pong on one line) > head-of-ROB memory stall > empty-ROB
        fetch stall > unknown."""
        retired = self.total_retired()
        ping = self.memory._ping or {}
        if ping:
            # Hottest line; ties broken toward the lowest line number so
            # the classification is deterministic.
            line = max(ping, key=lambda ln: (ping[ln], -ln))
            if ping[line] >= LIVELOCK_TRANSFERS:
                return WedgeError(
                    "coherence-livelock", now, node=node, line=line,
                    retired=retired,
                    detail=f"line {line} changed exclusive owner "
                           f"{ping[line]} times with no retirement")
        cpus = list(range(len(self.cores)))
        if node is not None:
            cpus.remove(node)
            cpus.insert(0, node)
        fetch_stall: Optional[WedgeError] = None
        for cpu in cpus:
            for phys in self.cores[cpu].physical_cores():
                if phys.process is None:
                    continue
                if phys._window:
                    head = phys._window[0]
                    if head.state not in (ST_MEMQ, ST_MEMACC):
                        continue
                    op = head.instr.op
                    detail = (f"head of ROB: {OP_NAMES[op]} "
                              f"pc={head.instr.pc:#x} "
                              f"addr={head.instr.addr:#x} "
                              f"state={'memq' if head.state == ST_MEMQ else 'memacc'} "
                              f"retry_at={head.retry_at}")
                    if op == OP_LOCK_ACQ:
                        holder = self.lock_table.get(head.instr.addr)
                        detail += f" (lock held by pid {holder})"
                    return WedgeError("memory-stall", now, node=cpu,
                                      retired=retired, detail=detail)
                elif fetch_stall is None and \
                        now < phys._fetch_blocked_until:
                    until = phys._fetch_blocked_until
                    what = "unresolved branch" if until >= FAR_FUTURE \
                        else f"I-fetch until cycle {until}"
                    fetch_stall = WedgeError(
                        "fetch-stall", now, node=cpu, retired=retired,
                        detail=f"empty window, fetch blocked ({what})")
        if fetch_stall is not None:
            return fetch_stall
        return WedgeError("unknown", now, node=node, retired=retired,
                          detail="no core matched a known wedge signature")

    # ---------------------------------------------------------------- checkpoint

    def snapshot(self) -> Dict[str, object]:
        """Capture all mutable simulation state as a picklable dict.

        One deepcopy memo is threaded through every component so shared
        objects (window entries across heaps, instructions shared between
        window entries and trace buffers, processes across schedulers and
        cores) keep their identity inside the snapshot.  Wiring -- hooks,
        callbacks, generators, the checker -- is never captured: restore
        targets a freshly constructed machine that already has it.
        """
        memo: dict = {}
        return {
            "format": SNAPSHOT_FORMAT,
            "now": self.now,
            "idle_cycles": self.idle_cycles,
            "measure_started_at": self._measure_started_at,
            "lock_table": dict(self.lock_table),
            "page_table": self.page_table.snapshot(memo),
            "mesh": self.mesh.snapshot(memo),
            "memory": self.memory.snapshot(memo),
            "l1d_mshr_stats": self.l1d_mshr_stats.snapshot(memo),
            "l2_mshr_stats": self.l2_mshr_stats.snapshot(memo),
            "processes": [p.snapshot(memo) for p in self.processes],
            "schedulers": [s.snapshot(memo) for s in self.schedulers],
            "nodes": [nd.snapshot(memo) for nd in self.nodes],
            "cores": [c.snapshot(memo) for c in self.cores],
            "next_uid": WindowEntry._next_uid,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Install a :meth:`snapshot` onto this machine.

        Must be called on a freshly constructed, never-run machine built
        from the same params with fresh generators.  After restoring, the
        caller re-seeks each process's trace source past the consumed
        prefix (``trace_consumed``) -- or builds the generators pre-seeked
        (arena replay) -- before calling :meth:`run` again.
        """
        if state.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"snapshot format {state.get('format')!r} != "
                f"{SNAPSHOT_FORMAT}")
        # One fresh deepcopy isolates this machine from the stored payload
        # (so a later restore from the same checkpoint starts clean) while
        # preserving the identity relationships within the snapshot.
        state = copy.deepcopy(state)
        self.now = state["now"]
        self.idle_cycles = state["idle_cycles"]
        self._measure_started_at = state["measure_started_at"]
        # Cores hold references to the lock table: mutate it in place.
        self.lock_table.clear()
        self.lock_table.update(state["lock_table"])
        self.page_table.restore(state["page_table"])
        self.mesh.restore(state["mesh"])
        self.memory.restore(state["memory"])
        self.l1d_mshr_stats.restore(state["l1d_mshr_stats"])
        self.l2_mshr_stats.restore(state["l2_mshr_stats"])
        by_pid = {p.pid: p for p in self.processes}
        for process, sub in zip(self.processes, state["processes"]):
            process.restore(sub)
        for sched, sub in zip(self.schedulers, state["schedulers"]):
            sched.restore(sub, by_pid)
        for node, sub in zip(self.nodes, state["nodes"]):
            node.restore(sub)
        for core, sub in zip(self.cores, state["cores"]):
            core.restore(sub, by_pid)
        # Monotonic tie-breaker: future entries must sort after every
        # restored one; other machines in this interpreter may have pushed
        # the class counter further, which is fine (only relative order
        # within one core's heaps matters).
        if state["next_uid"] > WindowEntry._next_uid:
            WindowEntry._next_uid = state["next_uid"]

    def trace_consumed(self) -> List[int]:
        """Per-pid count of instructions already pulled from each trace
        source (a restored machine's fresh sources must skip these)."""
        return [p.trace.consumed for p in self.processes]

    # ---------------------------------------------------------------- statistics

    def reset_stats(self) -> None:
        """Discard warmup-transient statistics (paper section 2.2) while
        keeping all architectural state (caches, directory, predictors)."""
        for core in self.cores:
            core.reset_stats()
        for node in self.nodes:
            node.l1i_accesses = node.l1i_misses = 0
            node.l1d_accesses = node.l1d_misses = 0
            node.l2_accesses = node.l2_misses = 0
            node.itlb.hits = node.itlb.misses = 0
            node.dtlb.hits = node.dtlb.misses = 0
        for core in self.cores:
            for physical in core.physical_cores():
                physical.bpred.predictions = 0
                physical.bpred.mispredictions = 0
        self.l1d_mshr_stats.reset()
        self.l2_mshr_stats.reset()
        self.memory.stats = type(self.memory.stats)()
        self._measure_started_at = self.now

    @property
    def measured_cycles(self) -> int:
        return self.now - self._measure_started_at

    def breakdown(self) -> ExecutionBreakdown:
        """Aggregate execution-time breakdown across all cores."""
        return ExecutionBreakdown.merged(core.stats for core in self.cores)

    def miss_rates(self) -> Dict[str, float]:
        def rate(misses: int, accesses: int) -> float:
            return misses / accesses if accesses else 0.0
        l1i = rate(sum(x.l1i_misses for x in self.nodes),
                   sum(x.l1i_accesses for x in self.nodes))
        l1d = rate(sum(x.l1d_misses for x in self.nodes),
                   sum(x.l1d_accesses for x in self.nodes))
        l2 = rate(sum(x.l2_misses for x in self.nodes),
                  sum(x.l2_accesses for x in self.nodes))
        return {"l1i": l1i, "l1d": l1d, "l2": l2}

    def misprediction_rate(self) -> float:
        physical = [p for core in self.cores
                    for p in core.physical_cores()]
        predictions = sum(c.bpred.predictions for c in physical)
        mispredictions = sum(c.bpred.mispredictions for c in physical)
        return mispredictions / predictions if predictions else 0.0
