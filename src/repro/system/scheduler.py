"""Per-CPU OS scheduler model (paper section 2.2).

Blocking system calls in the traces are context-switch hints; the
simulator models the operating-system scheduler internally: the blocking
process is put to sleep for the I/O latency and the next ready process on
that CPU's run queue is dispatched after a context-switch cost.  Idle time
(no ready process) is accounted separately and factored out of the
execution-time breakdowns, as in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.system.process import Process


class CpuScheduler:
    """Round-robin run queue of one CPU."""

    def __init__(self, cpu_id: int):
        self.cpu_id = cpu_id
        self._queue: deque = deque()
        self.context_switches = 0

    def add(self, process: Process) -> None:
        self._queue.append(process)

    def pick_ready(self, now: int) -> Optional[Process]:
        """Pop the first ready process, preserving round-robin order."""
        for _ in range(len(self._queue)):
            process = self._queue.popleft()
            if process.ready(now):
                self.context_switches += 1
                return process
            self._queue.append(process)
        return None

    def earliest_wake(self) -> Optional[int]:
        if not self._queue:
            return None
        return min(p.blocked_until for p in self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing; processes are recorded
        by pid and re-linked on restore."""
        return {"queue": [p.pid for p in self._queue],
                "context_switches": self.context_switches}

    def restore(self, state: dict, processes_by_pid: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._queue = deque(processes_by_pid[pid]
                            for pid in state["queue"])
        self.context_switches = state["context_switches"]
