"""Simulated Oracle server process: an instruction stream + schedule state."""

from __future__ import annotations

from typing import Iterator

from repro.cpu.core import TraceBuffer


class Process:
    """One server process, pinned to a CPU (dedicated-mode Oracle).

    ``trace`` wraps the workload generator and supports re-fetch across
    rollbacks and context switches; ``resume_seq`` is the next dynamic
    instruction to fetch when the process is (re)scheduled.
    """

    __slots__ = ("pid", "cpu", "trace", "generator", "resume_seq",
                 "blocked_until", "syscalls")

    def __init__(self, pid: int, generator: Iterator, cpu: int):
        self.pid = pid
        self.cpu = cpu
        self.trace = TraceBuffer(iter(generator))
        self.generator = generator
        self.resume_seq = 0
        self.blocked_until = 0
        self.syscalls = 0

    def block(self, until: int) -> None:
        self.blocked_until = until
        self.syscalls += 1

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint).
        ``memo`` must be the machine-wide deepcopy memo (trace-buffer
        instructions are shared with core window entries)."""
        return {"pid": self.pid,
                "resume_seq": self.resume_seq,
                "blocked_until": self.blocked_until,
                "syscalls": self.syscalls,
                "trace": self.trace.snapshot(memo)}

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot`; the trace keeps its
        fresh source iterator (the restorer re-seeks it separately)."""
        self.resume_seq = state["resume_seq"]
        self.blocked_until = state["blocked_until"]
        self.syscalls = state["syscalls"]
        self.trace.restore(state["trace"])

    def ready(self, now: int) -> bool:
        return now >= self.blocked_until

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, cpu={self.cpu})"
