"""Reproductions of every table and figure in the paper's evaluation.

Each ``figure*`` function runs the simulations behind one figure and
returns a :class:`FigureResult` whose rows mirror the paper's bars:
normalized execution time with the paper's breakdown components.  The
benchmark harness under ``benchmarks/`` prints these tables; EXPERIMENTS.md
records paper-vs-measured values.

All functions accept ``instructions``/``warmup`` overrides so tests can run
quick versions; the defaults are sized for stable statistics on the scaled
system.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.experiment import SimulationResult
from repro.core.optimizations import migratory_hints
from repro.run import JobSpec, WorkloadSpec, run_many
from repro.params import (
    ConsistencyImpl,
    ConsistencyModel,
    SystemParams,
    TlbParams,
    default_system,
)
from repro.stats.sharing import sharing_characterization

#: Default measurement sizes per workload (instructions, warmup).
RUN_SIZES = {
    "oltp": (100_000, 250_000),
    "dss": (50_000, 200_000),
}


@dataclass
class FigureRow:
    """One bar of a normalized-execution-time figure."""

    label: str
    result: SimulationResult
    normalized: float

    def components(self) -> Dict[str, float]:
        """Paper bar segments scaled to the normalized height."""
        shares = self.result.breakdown.summary_row()
        return {k: v * self.normalized for k, v in shares.items()}


@dataclass
class FigureResult:
    """All bars of one figure (or one part of a multi-part figure).

    Configurations whose job exhausted its retries are *gaps*: they get
    no :class:`FigureRow` but are listed (label -> error text) in
    ``extras["failed"]`` and rendered as explicit ``FAILED`` lines, so a
    partially-failed sweep still produces every bar it can.
    """

    figure_id: str
    title: str
    rows: List[FigureRow] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def row(self, label: str) -> FigureRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def normalized(self, label: str) -> float:
        return self.row(label).normalized

    @property
    def failed(self) -> Dict[str, str]:
        """Labels that produced no bar, with their last error text."""
        return self.extras.get("failed", {})

    def mark_failed(self, label: str, error: str) -> None:
        self.extras.setdefault("failed", {})[label] = error

    def format_table(self) -> str:
        lines = [f"== {self.figure_id}: {self.title} =="]
        for row in self.rows:
            lines.append(row.result.breakdown.format_bar(
                row.label, scale=row.normalized))
        for label, error in self.failed.items():
            lines.append(f"{label:<24s} FAILED: {error}")
        return "\n".join(lines)


def _sizes(name: str, instructions: Optional[int],
           warmup: Optional[int]) -> Tuple[int, int]:
    default_i, default_w = RUN_SIZES[name]
    return instructions or default_i, warmup or default_w


def _workload_spec(name: str, workload_kw: Optional[dict] = None
                   ) -> WorkloadSpec:
    """Declarative spec for workload ``name`` built with ``workload_kw``."""
    kw = dict(workload_kw or {})
    hints = kw.pop("hints", None)
    unsupported = set(kw) - {"scale", "processes_per_cpu"}
    if unsupported:
        raise ValueError(
            f"workload kwargs not expressible as a WorkloadSpec: "
            f"{sorted(unsupported)}")
    return WorkloadSpec.from_hints(name, hints=hints, **kw)


def _sweep(configs: List[Tuple[str, SystemParams]], workload_name: str,
           figure_id: str, title: str, instructions: Optional[int],
           warmup: Optional[int], seed: int = 0,
           workload_kw: Optional[dict] = None) -> FigureResult:
    """Run one workload across configurations; normalize to the first.

    Runs go through :func:`repro.run.run_many`, so they fan out across
    worker processes and hit the persistent result cache when the
    process-wide runner is configured that way (``repro.run.configure``);
    result order -- and therefore normalization -- is identical to the
    old serial loop.
    """
    instructions, warmup = _sizes(workload_name, instructions, warmup)
    wspec = _workload_spec(workload_name, workload_kw)
    specs = [JobSpec(params, wspec, instructions=instructions,
                     warmup=warmup, seed=seed) for _label, params in configs]
    report = run_many(specs)
    out = FigureResult(figure_id, title)
    base_time = None
    for (label, _params), outcome in zip(configs, report.outcomes):
        if outcome.failed:
            # Explicit gap: the sweep survived this job's failure, and
            # the figure says so instead of silently renumbering bars.
            out.mark_failed(label, outcome.error)
            continue
        result = outcome.result
        if base_time is None:
            # Normalize to the first *surviving* configuration.
            base_time = result.execution_time
        out.rows.append(FigureRow(label, result,
                                  result.execution_time / base_time))
    return out


def _with_processor(params: SystemParams, **changes) -> SystemParams:
    return params.replace(
        processor=dataclasses.replace(params.processor, **changes))


def _with_mshrs(params: SystemParams, n: int) -> SystemParams:
    return params.replace(
        l1d=dataclasses.replace(params.l1d, mshrs=n),
        l2=dataclasses.replace(params.l2, mshrs=n))


# ---------------------------------------------------------------------------
# Figures 2 and 3: impact of ILP features on OLTP / DSS
# ---------------------------------------------------------------------------

def figure_ilp_issue_width(workload_name: str, instructions: int = None,
                           warmup: int = None, seed: int = 0,
                           widths: Tuple[int, ...] = (1, 2, 4, 8)
                           ) -> FigureResult:
    """Part (a): in-order vs out-of-order across issue widths."""
    base = default_system()
    configs = []
    for width in widths:
        configs.append((f"inorder-{width}w", _with_processor(
            base, out_of_order=False, issue_width=width)))
    for width in widths:
        configs.append((f"ooo-{width}w", _with_processor(
            base, out_of_order=True, issue_width=width)))
    fig = "Figure 2(a)" if workload_name == "oltp" else "Figure 3(a)"
    return _sweep(configs, workload_name, fig,
                  f"{workload_name.upper()}: issue width, in-order vs OOO",
                  instructions, warmup, seed)


def figure_ilp_window(workload_name: str, instructions: int = None,
                      warmup: int = None, seed: int = 0,
                      windows: Tuple[int, ...] = (16, 32, 64, 128)
                      ) -> FigureResult:
    """Part (b): instruction window size sweep (OOO, 4-way)."""
    base = default_system()
    configs = [(f"win-{w}", _with_processor(base, window_size=w))
               for w in windows]
    fig = "Figure 2(b)" if workload_name == "oltp" else "Figure 3(b)"
    return _sweep(configs, workload_name, fig,
                  f"{workload_name.upper()}: instruction window size",
                  instructions, warmup, seed)


def figure_ilp_mshrs(workload_name: str, instructions: int = None,
                     warmup: int = None, seed: int = 0,
                     counts: Tuple[int, ...] = (1, 2, 4, 8)) -> FigureResult:
    """Parts (c)-(g): outstanding-miss (MSHR) sweep + occupancy
    distributions for the most aggressive configuration."""
    base = default_system()
    configs = [(f"mshr-{n}", _with_mshrs(base, n)) for n in counts]
    fig = "Figure 2(c-g)" if workload_name == "oltp" else "Figure 3(c-g)"
    out = _sweep(configs, workload_name, fig,
                 f"{workload_name.upper()}: outstanding misses (MSHRs)",
                 instructions, warmup, seed)
    if not out.rows or out.rows[-1].label != f"mshr-{counts[-1]}":
        return out  # the occupancy-rich run failed; keep the gap visible
    rich = out.rows[-1].result  # the 8-MSHR run has full occupancy stats
    out.extras["l1d_occupancy_all"] = rich.l1d_mshr.distribution()
    out.extras["l1d_occupancy_reads"] = rich.l1d_mshr.distribution(
        reads_only=True)
    out.extras["l2_occupancy_all"] = rich.l2_mshr.distribution()
    out.extras["l2_occupancy_reads"] = rich.l2_mshr.distribution(
        reads_only=True)
    return out


# ---------------------------------------------------------------------------
# Figure 4: factors limiting OLTP performance
# ---------------------------------------------------------------------------

def figure4(instructions: int = None, warmup: int = None,
            seed: int = 0) -> FigureResult:
    base = default_system()
    perfect_tlb = TlbParams(perfect=True)
    all_perfect = _with_processor(
        base.replace(perfect_icache=True,
                     bpred=dataclasses.replace(base.bpred, perfect=True),
                     itlb=perfect_tlb, dtlb=perfect_tlb),
        infinite_functional_units=True, window_size=128)
    configs = [
        ("base", base),
        ("infinite-fu", _with_processor(base,
                                        infinite_functional_units=True)),
        ("perfect-bpred", base.replace(
            bpred=dataclasses.replace(base.bpred, perfect=True))),
        ("perfect-icache", base.replace(perfect_icache=True)),
        ("128win-all-perfect", all_perfect),
    ]
    return _sweep(configs, "oltp", "Figure 4",
                  "OLTP: factors limiting performance",
                  instructions, warmup, seed)


# ---------------------------------------------------------------------------
# Figure 5: uniprocessor vs multiprocessor
# ---------------------------------------------------------------------------

def figure5(workload_name: str, instructions: int = None,
            warmup: int = None, seed: int = 0) -> FigureResult:
    """Relative importance of components in UP vs MP systems.

    The uniprocessor keeps the same number of processes per CPU; the
    comparison is of breakdown *shares*, as in the paper.
    """
    mp = default_system()
    up = default_system(n_nodes=1, mesh_width=1)
    instructions, warmup = _sizes(workload_name, instructions, warmup)
    out = FigureResult(
        "Figure 5", f"{workload_name.upper()}: uniprocessor vs "
        "multiprocessor component shares")
    # Equal per-CPU work for both machines, with 5x warmup so the
    # (shared) code and SGA footprints are cache-steady in both -- the
    # paper's UP-vs-MP comparison is of steady-state component shares,
    # and the instruction-share claim only emerges once the code is
    # fully L2-resident on every node.
    labelled = (("uniprocessor", up, 0.25), ("multiprocessor", mp, 1.0))
    wspec = _workload_spec(workload_name)
    specs = [JobSpec(params, wspec,
                     instructions=max(2000, int(instructions * scale)),
                     warmup=max(2000, int(5 * warmup * scale)), seed=seed)
             for _label, params, scale in labelled]
    report = run_many(specs)
    for (label, _params, _scale), outcome in zip(labelled,
                                                 report.outcomes):
        if outcome.failed:
            out.mark_failed(label, outcome.error)
            continue
        out.rows.append(FigureRow(label, outcome.result, 1.0))
    return out


# ---------------------------------------------------------------------------
# Figure 6: consistency models and their optimized implementations
# ---------------------------------------------------------------------------

def figure6(workload_name: str, instructions: int = None,
            warmup: int = None, seed: int = 0) -> FigureResult:
    base = default_system()
    configs = []
    for impl in (ConsistencyImpl.STRAIGHTFORWARD, ConsistencyImpl.PREFETCH,
                 ConsistencyImpl.SPECULATIVE):
        for model in (ConsistencyModel.SC, ConsistencyModel.PC,
                      ConsistencyModel.RC):
            label = f"{model.name}-{impl.name.lower()[:8]}"
            configs.append((label, base.replace(consistency=model,
                                                consistency_impl=impl)))
    return _sweep(configs, workload_name, "Figure 6",
                  f"{workload_name.upper()}: consistency implementations",
                  instructions, warmup, seed)


# ---------------------------------------------------------------------------
# Figure 7(a): instruction stream buffer
# ---------------------------------------------------------------------------

def figure7a(instructions: int = None, warmup: int = None, seed: int = 0,
             uniprocessor: bool = False) -> FigureResult:
    base = default_system()
    if uniprocessor:
        base = default_system(n_nodes=1, mesh_width=1)
    configs = [
        ("base", base),
        ("streambuf-2", base.replace(stream_buffer_entries=2)),
        ("streambuf-4", base.replace(stream_buffer_entries=4)),
        ("streambuf-8", base.replace(stream_buffer_entries=8)),
        ("perfect-icache", base.replace(perfect_icache=True)),
        ("perfect-icache+itlb", base.replace(
            perfect_icache=True, itlb=TlbParams(perfect=True))),
    ]
    title = "OLTP: instruction stream buffer"
    if uniprocessor:
        title += " (uniprocessor)"
    return _sweep(configs, "oltp", "Figure 7(a)", title,
                  instructions, warmup, seed)


# ---------------------------------------------------------------------------
# Figure 7(b): software prefetch + flush for migratory data
# ---------------------------------------------------------------------------

def figure7b(instructions: int = None, warmup: int = None,
             seed: int = 0) -> FigureResult:
    """Base (4-entry stream buffer), +flush, +flush+prefetch, and the
    reduced-migratory-latency bound (all with the stream buffer, as in
    the paper)."""
    base = default_system(stream_buffer_entries=4)
    instructions, warmup = _sizes("oltp", instructions, warmup)
    out = FigureResult("Figure 7(b)",
                       "OLTP: migratory flush / prefetch hints")
    variants = [
        ("base+sb4", base, None),
        ("flush", base, migratory_hints(prefetch=False, flush=True)),
        ("bound-40pct", base.replace(migratory_read_speedup=0.4), None),
        ("flush+prefetch", base,
         migratory_hints(prefetch=True, flush=True)),
    ]
    specs = [JobSpec(params, WorkloadSpec.from_hints("oltp", hints=hints),
                     instructions=instructions, warmup=warmup, seed=seed)
             for _label, params, hints in variants]
    report = run_many(specs)
    base_time = None
    for (label, _params, _hints), outcome in zip(variants,
                                                 report.outcomes):
        if outcome.failed:
            out.mark_failed(label, outcome.error)
            continue
        result = outcome.result
        if base_time is None:
            base_time = result.execution_time
        out.rows.append(FigureRow(label, result,
                                  result.execution_time / base_time))
    return out


# ---------------------------------------------------------------------------
# Section 3.1 / 3.2 / 4.2 text statistics
# ---------------------------------------------------------------------------

def characterization_table(instructions: int = None, warmup: int = None,
                           seed: int = 0
                           ) -> Dict[str, Optional[Dict[str, float]]]:
    """The paper's in-text characterization: miss rates, IPC, branch
    misprediction, and migratory sharing statistics for both workloads.

    A workload whose job exhausted its retries maps to ``None`` (an
    explicit gap) instead of aborting the other workload's row.
    """
    out = {}
    names = ("oltp", "dss")
    specs = []
    for name in names:
        n_instr, n_warm = _sizes(name, instructions, warmup)
        specs.append(JobSpec(default_system(), _workload_spec(name),
                             instructions=n_instr, warmup=n_warm,
                             seed=seed))
    report = run_many(specs)
    for name, result in zip(names, report.results):
        if result is None:
            out[name] = None
            continue
        sharing = sharing_characterization(result.coherence)
        out[name] = {
            "ipc": result.ipc,
            "l1i_miss_rate": result.miss_rates["l1i"],
            "l1d_miss_rate": result.miss_rates["l1d"],
            "l2_miss_rate": result.miss_rates["l2"],
            "branch_misprediction": result.misprediction_rate,
            "idle_fraction": result.idle_fraction,
            "migratory_dirty_read_fraction":
                sharing.migratory_dirty_read_fraction,
            "migratory_shared_write_fraction":
                sharing.migratory_shared_write_fraction,
            "dirty_fraction_of_l2_misses": (
                result.coherence.reads_dirty / max(
                    1, result.coherence.reads_dirty
                    + result.coherence.reads_local
                    + result.coherence.reads_remote)),
        }
    return out
