"""Software prefetch and flush hints for migratory data (section 4.2).

The paper had no Oracle source access, so the authors profiled the
workload to find the ~100 static instructions that generate most migratory
references and inserted prefetch and flush/WriteThrough primitives around
them.  This module reproduces that flow:

1. :func:`profile_migratory_pcs` runs a profiling simulation and extracts,
   from the directory's migratory-reference counters, the smallest set of
   static PCs covering a target share (default 75%) of migratory
   references.
2. :func:`migratory_hints` wraps the PC set into
   :class:`~repro.trace.database.MigratoryHints`, which the OLTP generator
   uses to instrument only the critical sections whose bodies contain
   those PCs -- prefetch-exclusive at critical-section entry, flush
   (sharing writeback, keeping a clean cached copy) at exit.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.experiment import run_simulation
from repro.core.workloads import Workload
from repro.params import SystemParams
from repro.trace.database import MigratoryHints


def profile_migratory_pcs(params: SystemParams, workload: Workload,
                          instructions: int = 60_000,
                          warmup: int = 30_000, seed: int = 0,
                          share: float = 0.75) -> Set[int]:
    """Profile run: return the hot migratory-reference PC set."""
    result = run_simulation(params, workload, instructions=instructions,
                            warmup=warmup, seed=seed)
    report = result.sharing()
    return set(report.hot_pcs) if share <= 0.75 else set(
        result.coherence.migratory_refs_by_pc)


def migratory_hints(prefetch: bool, flush: bool,
                    pc_filter: Optional[Set[int]] = None) -> MigratoryHints:
    """Build the instrumentation switches for the OLTP generator."""
    return MigratoryHints(prefetch=prefetch, flush=flush,
                          pc_filter=pc_filter)
