"""Seed sweeps: statistical robustness for scaled simulations.

The paper simulates ~200M instructions, so one run per configuration is
statistically stable.  Our scaled runs are far shorter; when two
configurations land within a few percent, a single seed cannot separate
them.  :func:`seed_sweep` runs a configuration across seeds and reports
mean and spread; :func:`compare` decides whether one configuration
reliably beats another across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.experiment import run_simulation
from repro.core.workloads import Workload
from repro.params import SystemParams
from repro.run import JobSpec, WorkloadSpec, run_many


@dataclass
class SweepResult:
    """Execution times of one configuration across seeds.

    ``failures`` counts seeds whose job exhausted its retries (see
    :class:`repro.run.RetryPolicy`); their cycles are absent from
    ``cycles`` and the statistics are over the surviving seeds.
    """

    label: str
    cycles: List[int]
    failures: int = 0

    @property
    def mean(self) -> float:
        return sum(self.cycles) / len(self.cycles)

    @property
    def spread(self) -> float:
        """Half the min-max range, relative to the mean."""
        if self.mean == 0:
            return 0.0
        return (max(self.cycles) - min(self.cycles)) / (2 * self.mean)

    def __str__(self) -> str:
        text = (f"{self.label}: mean {self.mean:,.0f} cycles "
                f"(+/- {self.spread:.1%} over {len(self.cycles)} seeds)")
        if self.failures:
            text += f" [{self.failures} seed(s) FAILED]"
        return text


def seed_sweep(params: SystemParams,
               make_workload: Callable[[], Workload],
               instructions: int, warmup: int,
               seeds: Sequence[int] = (0, 1, 2),
               label: str = "config",
               jobs: Optional[int] = None) -> SweepResult:
    """Run one configuration across ``seeds``.

    When ``make_workload`` is one of the standard factories
    (``oltp_workload`` / ``dss_workload`` / ``tpcc_workload``), the seeds
    are dispatched through :func:`repro.run.run_many`, gaining process
    fan-out (``jobs`` workers, or the configured default) and result
    caching.  Arbitrary factories cannot be fingerprinted or shipped to a
    worker, so they fall back to the in-process serial loop.
    """
    wspec = WorkloadSpec.from_factory(make_workload)
    if wspec is not None:
        specs = [JobSpec(params, wspec, instructions=instructions,
                         warmup=warmup, seed=seed) for seed in seeds]
        report = run_many(specs, jobs=jobs)
        failures = report.failures
        if len(failures) == len(specs):
            raise RuntimeError(
                f"seed sweep {label!r}: every seed failed "
                f"(last error: {failures[-1].error})")
        return SweepResult(label,
                           [r.cycles for r in report.results
                            if r is not None],
                           failures=len(failures))
    cycles = []
    for seed in seeds:
        result = run_simulation(params, make_workload(),
                                instructions=instructions,
                                warmup=warmup, seed=seed)
        cycles.append(result.cycles)
    return SweepResult(label, cycles)


@dataclass
class Comparison:
    """Outcome of a seeded A-vs-B comparison."""

    a: SweepResult
    b: SweepResult

    @property
    def mean_ratio(self) -> float:
        """b relative to a (< 1: b faster)."""
        return self.b.mean / self.a.mean

    @property
    def consistent(self) -> bool:
        """The faster side wins on every seed."""
        pairs = zip(self.a.cycles, self.b.cycles)
        signs = {(bc < ac) for ac, bc in pairs}
        return len(signs) == 1

    def __str__(self) -> str:
        verdict = "consistent" if self.consistent else "seed-dependent"
        return (f"{self.b.label} vs {self.a.label}: "
                f"{self.mean_ratio:.3f}x ({verdict})")


def compare(params_a: SystemParams, params_b: SystemParams,
            make_workload: Callable[[], Workload],
            instructions: int, warmup: int,
            seeds: Sequence[int] = (0, 1, 2),
            labels: Optional[Sequence[str]] = None,
            jobs: Optional[int] = None) -> Comparison:
    """Seed-paired comparison of two configurations."""
    label_a, label_b = labels or ("A", "B")
    return Comparison(
        seed_sweep(params_a, make_workload, instructions, warmup,
                   seeds, label_a, jobs=jobs),
        seed_sweep(params_b, make_workload, instructions, warmup,
                   seeds, label_b, jobs=jobs))
