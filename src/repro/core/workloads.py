"""Workload definitions binding trace generators to machine configurations.

The paper runs eight server processes per CPU for OLTP and four for DSS
(section 2.3).  A :class:`Workload` owns the shared database layout and
builds one trace generator per process; all generators of one machine
share the layout, so cross-process sharing (SGA metadata, locks) produces
real coherence traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.params import DEFAULT_SCALE
from repro.trace.database import DatabaseLayout, MigratoryHints
from repro.trace.dss import DssParams, DssTraceGenerator
from repro.trace.oltp import OltpParams, OltpTraceGenerator
from repro.trace.tpcc import TpccParams, TpccTraceGenerator


@dataclass
class Workload:
    """A named workload: layout + per-process generator factory."""

    name: str
    layout: DatabaseLayout
    processes_per_cpu: int
    _factory: Callable[[int, int, int], Iterator] = field(repr=False)

    def generators(self, n_cpus: int, seed: int = 0) -> List[Iterator]:
        n_processes = self.processes_per_cpu * n_cpus
        return [self._factory(pid, seed, n_processes)
                for pid in range(n_processes)]


def oltp_workload(scale: int = DEFAULT_SCALE,
                  params: Optional[OltpParams] = None,
                  hints: Optional[MigratoryHints] = None,
                  processes_per_cpu: int = 6) -> Workload:
    """TPC-B-like OLTP (paper sections 2.1.1, 2.3).

    ``scale`` divides footprints to match :func:`repro.params.default_system`;
    ``hints`` enables the section-4.2 software prefetch/flush optimization.
    """
    oltp_params = (params or OltpParams()).scaled(scale)
    layout = DatabaseLayout().scaled(scale)

    def factory(pid: int, seed: int, _n_processes: int) -> Iterator:
        return OltpTraceGenerator(pid, layout, oltp_params, seed=seed,
                                  hints=hints)

    return Workload("oltp", layout, processes_per_cpu, factory)


def tpcc_workload(scale: int = DEFAULT_SCALE,
                  params: Optional[OltpParams] = None,
                  tpcc: Optional[TpccParams] = None,
                  hints: Optional[MigratoryHints] = None,
                  processes_per_cpu: int = 6) -> Workload:
    """TPC-C-like OLTP mix (paper section 2.1.1's comparison point)."""
    oltp_params = (params or OltpParams()).scaled(scale)
    tpcc_params = (tpcc or TpccParams()).scaled(scale)
    layout = DatabaseLayout().scaled(scale)

    def factory(pid: int, seed: int, _n_processes: int) -> Iterator:
        return TpccTraceGenerator(pid, layout, oltp_params,
                                  tpcc=tpcc_params, seed=seed,
                                  hints=hints)

    return Workload("tpcc", layout, processes_per_cpu, factory)


def dss_workload(scale: int = DEFAULT_SCALE,
                 params: Optional[DssParams] = None,
                 processes_per_cpu: int = 4) -> Workload:
    """TPC-D Query-6-like DSS (paper sections 2.1.2, 2.3)."""
    dss_params = (params or DssParams()).scaled(scale)
    layout = DatabaseLayout().scaled(scale)

    def factory(pid: int, seed: int, n_processes: int) -> Iterator:
        return DssTraceGenerator(pid, layout, dss_params, seed=seed,
                                 n_processes=n_processes)

    return Workload("dss", layout, processes_per_cpu, factory)
