"""Simulation runner: build a machine, warm it up, measure, and report.

:func:`run_simulation` is the single entry point used by tests, examples
and benchmarks.  It reproduces the paper's methodology: the machine runs a
warmup period whose statistics are discarded (section 2.2: "warmup
transients were ignored"), then a measurement period; execution time is
the number of machine cycles needed to retire the requested number of
instructions across all processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.workloads import Workload
from repro.mem.coherence import CoherenceStats
from repro.params import SystemParams
from repro.stats.breakdown import ExecutionBreakdown
from repro.stats.mshr import MshrOccupancyGroup
from repro.stats.sharing import SharingReport, sharing_characterization
from repro.system.machine import Machine

#: Default measurement length (dynamic instructions across all CPUs).
DEFAULT_INSTRUCTIONS = 80_000
DEFAULT_WARMUP = 40_000


@dataclass
class SimulationResult:
    """Everything the paper's figures need from one run."""

    params: SystemParams
    workload: str
    cycles: int
    instructions: int
    breakdown: ExecutionBreakdown
    miss_rates: Dict[str, float]
    misprediction_rate: float
    coherence: CoherenceStats
    l1d_mshr: MshrOccupancyGroup
    l2_mshr: MshrOccupancyGroup
    stream_buffer_hit_rate: float = 0.0
    idle_fraction: float = 0.0
    #: Which execution backend actually ran (the machine silently falls
    #: back to "reference" when a determinism checker is attached, so
    #: ``params.backend`` alone can lie about what produced the numbers).
    #: Excluded from comparisons and ``to_dict`` because backends are
    #: certified identical: the same run on another backend must still
    #: compare equal, and cached result dicts stay backend-agnostic.
    effective_backend: str = field(default="reference", compare=False)

    @property
    def execution_time(self) -> int:
        """Cycles to complete the measured work (lower is better)."""
        return self.cycles

    @property
    def ipc(self) -> float:
        """Aggregate instructions per cycle per processor."""
        n = self.params.n_nodes
        return self.instructions / (self.cycles * n) if self.cycles else 0.0

    def sharing(self) -> SharingReport:
        return sharing_characterization(self.coherence)

    def normalized_to(self, base: "SimulationResult") -> float:
        return self.execution_time / base.execution_time

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the full result.

        The encoding is exact (raw counters and cycle lists, no derived
        ratios), so ``from_dict(to_dict(r))`` reproduces every figure
        table byte-for-byte.  This is what the result cache stores and
        what worker processes ship back to the parent.
        """
        from repro.params_io import params_to_dict
        return {
            "params": params_to_dict(self.params),
            "workload": self.workload,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "breakdown": self.breakdown.to_dict(),
            "miss_rates": dict(self.miss_rates),
            "misprediction_rate": self.misprediction_rate,
            "coherence": self.coherence.to_dict(),
            "l1d_mshr": self.l1d_mshr.to_dict(),
            "l2_mshr": self.l2_mshr.to_dict(),
            "stream_buffer_hit_rate": self.stream_buffer_hit_rate,
            "idle_fraction": self.idle_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationResult":
        from repro.params_io import params_from_dict
        # Canonical level order: JSON encoders may sort keys, and dump()
        # prints miss rates in insertion order.
        raw_rates = data["miss_rates"]
        miss_rates = {k: raw_rates[k] for k in ("l1i", "l1d", "l2")
                      if k in raw_rates}
        miss_rates.update((k, v) for k, v in raw_rates.items()
                          if k not in miss_rates)
        return cls(
            params=params_from_dict(data["params"]),
            workload=data["workload"],
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            breakdown=ExecutionBreakdown.from_dict(data["breakdown"]),
            miss_rates=miss_rates,
            misprediction_rate=float(data["misprediction_rate"]),
            coherence=CoherenceStats.from_dict(data["coherence"]),
            l1d_mshr=MshrOccupancyGroup.from_dict(data["l1d_mshr"]),
            l2_mshr=MshrOccupancyGroup.from_dict(data["l2_mshr"]),
            stream_buffer_hit_rate=float(data["stream_buffer_hit_rate"]),
            idle_fraction=float(data["idle_fraction"]),
        )

    def dump(self) -> str:
        """Full text report of the run (stats-file style)."""
        from repro.stats.traffic import traffic_report
        lines = [
            f"workload           {self.workload}",
            f"nodes              {self.params.n_nodes}",
            f"instructions       {self.instructions}",
            f"cycles             {self.cycles}",
            f"ipc per processor  {self.ipc:.3f}",
            f"idle fraction      {self.idle_fraction:.3f}",
            f"branch mispredict  {self.misprediction_rate:.3f}",
            "",
            "miss rates:",
        ]
        for level, rate in self.miss_rates.items():
            lines.append(f"  {level:<6s} {rate:.4f}")
        lines.append("")
        lines.append("execution-time breakdown (non-idle shares):")
        for name, share in self.breakdown.shares().items():
            if share > 0.0005:
                lines.append(f"  {name:<16s} {share:.3f}")
        lines.append("")
        lines.append(traffic_report(self.coherence,
                                    self.instructions).format())
        sharing = self.sharing()
        lines.append("")
        lines.append("sharing:")
        lines.append(f"  migratory dirty reads    "
                     f"{sharing.migratory_dirty_read_fraction:.3f}")
        lines.append(f"  migratory shared writes  "
                     f"{sharing.migratory_shared_write_fraction:.3f}")
        lines.append(f"  migratory lines          "
                     f"{sharing.migratory_lines}")
        if self.stream_buffer_hit_rate:
            lines.append(f"  stream buffer hit rate   "
                         f"{self.stream_buffer_hit_rate:.3f}")
        return "\n".join(lines)


def assemble_result(machine: Machine, workload_name: str, cycles: int,
                    instructions: int) -> SimulationResult:
    """Collect a :class:`SimulationResult` from a finished machine.

    Shared by :func:`run_simulation` and the checkpointing runner
    (:mod:`repro.run.checkpoint`): both must derive every figure input
    from the machine the same way so a resumed run is byte-identical to
    a monolithic one.
    """
    breakdown = machine.breakdown()
    idle = breakdown.cycles[-1]  # IDLE is the last category
    total_with_idle = sum(breakdown.cycles)
    sb_hits = sum(n.stream_buffer.hits for n in machine.nodes)
    sb_total = sb_hits + sum(n.stream_buffer.misses for n in machine.nodes)
    return SimulationResult(
        params=machine.params,
        workload=workload_name,
        cycles=cycles,
        instructions=instructions,
        breakdown=breakdown,
        miss_rates=machine.miss_rates(),
        misprediction_rate=machine.misprediction_rate(),
        coherence=machine.memory.stats,
        l1d_mshr=machine.l1d_mshr_stats,
        l2_mshr=machine.l2_mshr_stats,
        stream_buffer_hit_rate=sb_hits / sb_total if sb_total else 0.0,
        idle_fraction=idle / total_with_idle if total_with_idle else 0.0,
        effective_backend=getattr(machine, "effective_backend",
                                  "reference"),
    )


def run_simulation(params: SystemParams, workload: Workload,
                   instructions: int = DEFAULT_INSTRUCTIONS,
                   warmup: int = DEFAULT_WARMUP,
                   seed: int = 0) -> SimulationResult:
    """Simulate ``workload`` on ``params`` and collect statistics.

    ``instructions`` counts retired instructions summed over all CPUs; the
    same total work is simulated for every configuration so execution
    times are directly comparable (as in the paper's normalized charts).
    """
    generators = workload.generators(params.n_nodes, seed=seed)
    machine = Machine(params, generators)
    if warmup:
        machine.run(warmup)
        machine.reset_stats()
    cycles = machine.run(instructions)
    return assemble_result(machine, workload.name, cycles, instructions)
