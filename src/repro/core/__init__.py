"""Experiment framework: workload definitions, simulation runner, the
paper's figure/table reproductions, and the software migratory-data
optimization pass."""

from repro.core.workloads import (
    Workload,
    dss_workload,
    oltp_workload,
    tpcc_workload,
)
from repro.core.experiment import SimulationResult, run_simulation
from repro.core.optimizations import migratory_hints, profile_migratory_pcs

__all__ = [
    "Workload", "oltp_workload", "dss_workload", "tpcc_workload",
    "SimulationResult", "run_simulation",
    "profile_migratory_pcs", "migratory_hints",
]
