"""Simulation validation, in the spirit of paper section 2.3.

The authors validated their trace-driven simulator by checking cache
behaviour, locking characteristics and speedup against the real
AlphaServer and against published studies.  We have no hardware, but the
same *internal* consistency checks apply and are exposed here (and
exercised by the test suite):

* :func:`check_determinism` -- identical runs produce identical cycle
  counts (a prerequisite for every comparison in the paper).
* :func:`check_scaling` -- four processors complete the same total work
  faster than one (the workload actually parallelizes).
* :func:`check_lock_correctness` -- mutual exclusion holds: every
  critical section observed the lock held by its own process.
* :func:`check_stall_accounting` -- the execution-time breakdown
  conserves simulated time (the paper's attribution convention accounts
  for every cycle exactly once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.experiment import run_simulation
from repro.core.workloads import Workload, dss_workload, oltp_workload
from repro.params import SystemParams, default_system
from repro.system.machine import Machine


@dataclass
class ValidationResult:
    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def check_determinism(params: SystemParams = None,
                      workload: Workload = None,
                      instructions: int = 10_000) -> ValidationResult:
    """Two identical simulations must agree cycle for cycle."""
    params = params or default_system()
    runs = []
    for _ in range(2):
        wl = workload or oltp_workload()
        runs.append(run_simulation(params, wl,
                                   instructions=instructions,
                                   warmup=instructions))
    passed = runs[0].cycles == runs[1].cycles
    return ValidationResult(
        "determinism", passed,
        f"cycles {runs[0].cycles} vs {runs[1].cycles}")


def check_scaling(instructions: int = 24_000) -> ValidationResult:
    """Four CPUs complete the same total work in fewer cycles than one
    (paper 2.3: verified the speedup of the simulated system)."""
    up = run_simulation(default_system(n_nodes=1, mesh_width=1),
                        oltp_workload(), instructions=instructions,
                        warmup=instructions)
    mp = run_simulation(default_system(), oltp_workload(),
                        instructions=instructions, warmup=instructions)
    speedup = up.cycles / mp.cycles
    return ValidationResult(
        "scaling", speedup > 1.5,
        f"1->4 CPU speedup {speedup:.2f}x for equal total work")


def check_lock_correctness(instructions: int = 30_000
                           ) -> ValidationResult:
    """Mutual exclusion: the lock table never assigns one lock to two
    holders, and every release comes from the current holder."""
    machine = Machine(default_system(),
                      oltp_workload().generators(4))
    violations = []
    original = dict.__setitem__  # sanity: we just observe the table

    class _WatchedLocks(dict):
        def __setitem__(self, key, value):
            if key in self and self[key] != value:
                violations.append((key, self[key], value))
            original(self, key, value)

    watched = _WatchedLocks()
    machine.lock_table = watched
    for core in machine.cores:
        for physical in core.physical_cores():
            physical.lock_table = watched
    machine.run(instructions)
    return ValidationResult(
        "lock-correctness", not violations,
        f"{len(violations)} double-grant(s) observed")


def check_stall_accounting(instructions: int = 10_000
                           ) -> ValidationResult:
    """Busy + stall + idle must equal cores x cycles (within the tick
    granularity)."""
    machine = Machine(default_system(),
                      oltp_workload().generators(4))
    cycles = machine.run(instructions)
    accounted = sum(machine.breakdown().cycles)
    expected = cycles * machine.params.n_nodes
    error = abs(accounted - expected) / expected
    return ValidationResult(
        "stall-accounting", error < 0.02,
        f"accounted {accounted:.0f} vs {expected} core-cycles "
        f"({error:.2%} error)")


def check_sanitizer_neutrality(workload: str = "oltp",
                               instructions: int = 10_000
                               ) -> ValidationResult:
    """The runtime sanitizer (``SystemParams.check``) must be a pure
    observer: a sanitized run passes every invariant *and* reproduces
    the plain run's cycle count exactly."""
    from repro.check.invariants import InvariantViolation
    factory = oltp_workload if workload == "oltp" else dss_workload
    params = default_system()
    plain = run_simulation(params, factory(), instructions=instructions,
                           warmup=instructions)
    try:
        checked = run_simulation(params.replace(check=True), factory(),
                                 instructions=instructions,
                                 warmup=instructions)
    except InvariantViolation as violation:
        return ValidationResult(f"sanitizer-{workload}", False,
                                f"invariant violated: {violation}")
    passed = plain.cycles == checked.cycles
    return ValidationResult(
        f"sanitizer-{workload}", passed,
        f"cycles {plain.cycles} plain vs {checked.cycles} sanitized")


ALL_CHECKS: Dict[str, Callable[[], ValidationResult]] = {
    "determinism": check_determinism,
    "scaling": check_scaling,
    "lock-correctness": check_lock_correctness,
    "stall-accounting": check_stall_accounting,
    "sanitizer-oltp": check_sanitizer_neutrality,
    "sanitizer-dss": lambda: check_sanitizer_neutrality("dss"),
}


def run_all(verbose: bool = True) -> List[ValidationResult]:
    """Run every validation check; returns the results."""
    results = []
    for name, check in ALL_CHECKS.items():
        result = check()
        results.append(result)
        if verbose:
            print(result)
    return results
