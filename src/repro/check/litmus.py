"""Consistency litmus traces replayed on small simulated machines.

The simulator models no data values, so litmus outcomes are decided from
*perform times*: a load "sees" a store to the same address iff the
store's global-perform cycle is at or before the load's final perform
cycle.  A :class:`MemTap` wraps each node's ``access_data`` and records
the last non-stalled completion per ``(cpu, address, is_write)`` -- the
last record is the one whose value the retiring instruction would
consume (speculative loads that roll back re-perform later, store
buffers drain after retirement).

Traces (two threads pinned to a 2-node machine; delays are dependence
chains of long-latency ALU ops, and the interesting latency asymmetries
are engineered with prologues that plant dirty cache-to-cache transfers
on one address while the other stays a fast miss):

* **message passing** -- P0: ST data; ST flag.  P1: LD flag; LD data.
  Seeing the flag but not the data is forbidden under SC and PC; the
  store-reorder witness (flag performing before data) must appear under
  RC's store-buffer overlap.
* **store buffering (Dekker)** -- P0: ST x; LD y.  P1: ST y; LD x.
  Both loads reading "before" the other thread's store is forbidden
  under SC (speculative loads must roll back when their line is
  invalidated), and must be observable under PC and RC where loads
  bypass buffered stores.
* **migratory handoff** -- alternating read-then-write by two threads
  must trigger the directory's migratory-sharing heuristic, and (with
  the adaptive protocol on) grant exclusive ownership on the dirty read.

Each trace runs with the runtime sanitizer attached, so a protocol bug
surfaces either as an :class:`InvariantViolation` or a wrong outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.params import ConsistencyImpl, ConsistencyModel, default_system
from repro.system.machine import Machine
from repro.trace.instr import Instruction, OP_INT, OP_LOAD, OP_STORE

# Litmus variables on distinct pages (so they occupy distinct lines and
# get distinct home nodes from first-touch assignment).
ADDR_X = 0x0100_0000
ADDR_Y = 0x0200_0000
ADDR_DATA = 0x0300_0000
ADDR_FLAG = 0x0400_0000
ADDR_M = 0x0500_0000

_PC_BASE = 0x4000_0000
_PC_STRIDE = 0x0010_0000

MODELS = (ConsistencyModel.SC, ConsistencyModel.PC, ConsistencyModel.RC)
IMPLS = (ConsistencyImpl.STRAIGHTFORWARD, ConsistencyImpl.PREFETCH,
         ConsistencyImpl.SPECULATIVE)


@dataclass
class LitmusResult:
    name: str
    model: ConsistencyModel
    impl: ConsistencyImpl
    observed: bool          # the relaxed outcome / witness occurred
    allowed: bool           # the model permits (and should exhibit) it
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (f"[{status}] {self.name:<16s} {self.model.name}/"
                f"{self.impl.name.lower():<15s} "
                f"observed={self.observed} allowed={self.allowed} "
                f"({self.detail})")


class MemTap:
    """Records the final perform time of watched data accesses."""

    def __init__(self, machine: Machine, watch: Sequence[int]):
        self._watch = frozenset(watch)
        self.last_done: Dict[Tuple[int, int, bool], int] = {}
        for node in machine.nodes:
            self._wrap(node)

    def _wrap(self, node) -> None:
        orig = node.access_data
        node_id = node.node_id
        watch = self._watch
        last_done = self.last_done

        def access_data(now, vaddr, is_write, pc=0):
            result = orig(now, vaddr, is_write, pc)
            if vaddr in watch and not result.stalled:
                last_done[(node_id, vaddr, is_write)] = result.done_at
            return result

        node.access_data = access_data

    def done(self, cpu: int, vaddr: int, is_write: bool) -> Optional[int]:
        return self.last_done.get((cpu, vaddr, is_write))

    def sees(self, load_cpu: int, store_cpu: int, vaddr: int) -> bool:
        """Does ``load_cpu``'s load of ``vaddr`` observe ``store_cpu``'s
        store?  True iff the store performed at or before the load."""
        load_at = self.done(load_cpu, vaddr, False)
        store_at = self.done(store_cpu, vaddr, True)
        if load_at is None or store_at is None:
            raise RuntimeError(
                f"litmus access to {vaddr:#x} never performed")
        return store_at <= load_at


def _delay(total: int, pc: int) -> List[Instruction]:
    """A serial dependence chain consuming ~``total`` execution cycles."""
    ops: List[Instruction] = []
    while total > 0:
        latency = min(total, 500)
        ops.append(Instruction(OP_INT, pc, deps=(1,), latency=latency))
        total -= latency
    return ops


def _thread(ops: Sequence[Instruction], pc: int) -> Iterator[Instruction]:
    """The litmus ops followed by infinite single-cycle filler (keeps the
    machine retiring so `Machine.run` instruction budgets are easy)."""
    for instr in ops:
        yield instr
    while True:
        yield Instruction(OP_INT, pc)


def _build_machine(model: ConsistencyModel, impl: ConsistencyImpl,
                   threads: Sequence[Sequence[Instruction]],
                   check: bool = True,
                   migratory_protocol: bool = False,
                   backend: str = "reference") -> Machine:
    params = default_system(
        n_nodes=2, mesh_width=1,
        consistency=model, consistency_impl=impl,
        migratory_protocol=migratory_protocol,
        check=check, backend=backend)
    generators = [
        _thread(ops, _PC_BASE + (i + len(threads)) * _PC_STRIDE)
        for i, ops in enumerate(threads)]
    return Machine(params, generators)


def _run(machine: Machine, tap: MemTap,
         expected: Sequence[Tuple[int, int, bool]],
         chunk: int = 2_000, max_chunks: int = 60) -> None:
    """Run until every expected access performed, then a grace period so
    buffered stores drain and rolled-back loads re-perform."""
    for _ in range(max_chunks):
        machine.run(chunk)
        if all(key in tap.last_done for key in expected):
            break
    else:
        missing = [key for key in expected if key not in tap.last_done]
        raise RuntimeError(f"litmus trace never performed {missing}")
    machine.run(2 * chunk)


# -- traces -----------------------------------------------------------------

def message_passing(model: ConsistencyModel, impl: ConsistencyImpl,
                    check: bool = True,
                    backend: str = "reference") -> LitmusResult:
    """MP: P0 stores data then flag; P1 loads flag then data."""
    pc0, pc1 = _PC_BASE, _PC_BASE + _PC_STRIDE
    # P1 pre-owns the data line dirty, so P0's ST data is a slow
    # cache-to-cache transfer while ST flag is a fast cold miss -- under
    # RC's store overlap the flag store performs first (the witness).
    thread0 = (_delay(600, pc0)
               + [Instruction(OP_STORE, pc0 + 4, ADDR_DATA,
                              deps=(1,), latency=1),
                  Instruction(OP_STORE, pc0 + 8, ADDR_FLAG,
                              deps=(2,), latency=1)])
    thread1 = ([Instruction(OP_STORE, pc1, ADDR_DATA, latency=1)]
               + _delay(1000, pc1 + 4)
               + [Instruction(OP_LOAD, pc1 + 8, ADDR_FLAG,
                              deps=(1,), latency=1),
                  Instruction(OP_LOAD, pc1 + 12, ADDR_DATA,
                              deps=(2,), latency=1)])
    machine = _build_machine(model, impl, [thread0, thread1], check,
                             backend=backend)
    tap = MemTap(machine, [ADDR_DATA, ADDR_FLAG])
    _run(machine, tap, [(0, ADDR_DATA, True), (0, ADDR_FLAG, True),
                        (1, ADDR_FLAG, False), (1, ADDR_DATA, False)])

    forbidden = (tap.sees(1, 0, ADDR_FLAG)
                 and not tap.sees(1, 0, ADDR_DATA))
    witness = (tap.done(0, ADDR_FLAG, True)
               < tap.done(0, ADDR_DATA, True))
    allowed = model is ConsistencyModel.RC
    if allowed:
        passed = witness  # stores must visibly reorder under RC overlap
        observed = witness
    else:
        passed = not forbidden and not witness
        observed = forbidden
    detail = (f"ST data@{tap.done(0, ADDR_DATA, True)} "
              f"ST flag@{tap.done(0, ADDR_FLAG, True)} "
              f"LD flag@{tap.done(1, ADDR_FLAG, False)} "
              f"LD data@{tap.done(1, ADDR_DATA, False)}")
    return LitmusResult("message-passing", model, impl, observed, allowed,
                        passed, detail)


def store_buffering(model: ConsistencyModel, impl: ConsistencyImpl,
                    check: bool = True,
                    backend: str = "reference") -> LitmusResult:
    """SB/Dekker: P0 stores x, loads y; P1 stores y, loads x."""
    pc0, pc1 = _PC_BASE, _PC_BASE + _PC_STRIDE
    # Each thread pre-owns the line it will *load*, so the load is a fast
    # L1 hit while the store heads into a slow dirty miss on the line the
    # other thread owns -- the classic store-buffering interleaving.
    thread0 = ([Instruction(OP_STORE, pc0, ADDR_Y, latency=1)]
               + _delay(800, pc0 + 4)
               + [Instruction(OP_STORE, pc0 + 8, ADDR_X,
                              deps=(1,), latency=1),
                  Instruction(OP_LOAD, pc0 + 12, ADDR_Y,
                              deps=(2,), latency=1)])
    thread1 = ([Instruction(OP_STORE, pc1, ADDR_X, latency=1)]
               + _delay(800, pc1 + 4)
               + [Instruction(OP_STORE, pc1 + 8, ADDR_Y,
                              deps=(1,), latency=1),
                  Instruction(OP_LOAD, pc1 + 12, ADDR_X,
                              deps=(2,), latency=1)])
    machine = _build_machine(model, impl, [thread0, thread1], check,
                             backend=backend)
    tap = MemTap(machine, [ADDR_X, ADDR_Y])
    _run(machine, tap, [(0, ADDR_X, True), (0, ADDR_Y, False),
                        (1, ADDR_Y, True), (1, ADDR_X, False)])

    observed = (not tap.sees(0, 1, ADDR_Y)
                and not tap.sees(1, 0, ADDR_X))
    allowed = model is not ConsistencyModel.SC
    passed = observed if allowed else not observed
    detail = (f"LD y@{tap.done(0, ADDR_Y, False)} vs "
              f"ST y@{tap.done(1, ADDR_Y, True)}; "
              f"LD x@{tap.done(1, ADDR_X, False)} vs "
              f"ST x@{tap.done(0, ADDR_X, True)}")
    return LitmusResult("store-buffering", model, impl, observed, allowed,
                        passed, detail)


def migratory_handoff(protocol: bool, check: bool = True,
                      backend: str = "reference") -> LitmusResult:
    """Read-then-write handoff between two threads must be classified as
    migratory by the directory heuristic (paper footnote 2); with the
    adaptive protocol on, the dirty read must hand over exclusive
    ownership."""
    model = ConsistencyModel.RC
    impl = ConsistencyImpl.STRAIGHTFORWARD
    pc0, pc1 = _PC_BASE, _PC_BASE + _PC_STRIDE
    thread0 = ([Instruction(OP_STORE, pc0, ADDR_M, latency=1)]
               + _delay(1600, pc0 + 4)
               + [Instruction(OP_LOAD, pc0 + 8, ADDR_M,
                              deps=(1,), latency=1),
                  Instruction(OP_STORE, pc0 + 12, ADDR_M,
                              deps=(1,), latency=1)])
    thread1 = (_delay(700, pc1)
               + [Instruction(OP_LOAD, pc1 + 4, ADDR_M,
                              deps=(1,), latency=1),
                  Instruction(OP_STORE, pc1 + 8, ADDR_M,
                              deps=(1,), latency=1)])
    machine = _build_machine(model, impl, [thread0, thread1], check,
                             migratory_protocol=protocol,
                             backend=backend)
    tap = MemTap(machine, [ADDR_M])
    _run(machine, tap, [(0, ADDR_M, True), (0, ADDR_M, False),
                        (1, ADDR_M, False), (1, ADDR_M, True)])

    line = machine.page_table.translate_line(
        ADDR_M, machine.nodes[0].line_shift)
    marked = line in machine.memory.stats.migratory_lines
    if protocol:
        observed = marked and machine.memory.migratory_exclusive_grants > 0
        detail = (f"marked={marked} exclusive_grants="
                  f"{machine.memory.migratory_exclusive_grants}")
    else:
        observed = marked
        detail = f"marked={marked}"
    name = "migratory-adpt" if protocol else "migratory"
    return LitmusResult(name, model, impl, observed, True, observed,
                        detail)


def run_litmus_suite(check: bool = True,
                     backend: str = "reference") -> List[LitmusResult]:
    """The full matrix: MP and SB under SC/PC/RC x all three
    implementations, plus the migratory-handoff directory cases.

    ``backend`` selects the machine main loop (sanitized runs decline
    the fast path, so pass ``check=False`` to actually exercise it);
    the ``backend-identity`` CI job runs the suite on both backends
    and requires identical witnesses."""
    results: List[LitmusResult] = []
    for model in MODELS:
        for impl in IMPLS:
            results.append(message_passing(model, impl, check, backend))
            results.append(store_buffering(model, impl, check, backend))
    results.append(migratory_handoff(protocol=False, check=check,
                                     backend=backend))
    results.append(migratory_handoff(protocol=True, check=check,
                                     backend=backend))
    return results
