"""Runtime invariant sanitizer for the simulated machine.

Validated on every transition while enabled (``SystemParams.check``):

* **Directory well-formedness** -- at most one DIR_EXCLUSIVE owner and
  no sharers alongside it; shared entries have a non-empty sharer set
  and no owner; invalid entries track nobody.
* **Presence agreement** -- any line found in a node's caches is listed
  for that node by the directory (the converse is allowed: a requester
  is registered before its fill completes, and a node may silently drop
  a clean copy).
* **Single writer** -- a dirty copy or a write-permitted line
  (``_writable``) exists only at the exclusive owner.
* **Event-time monotonicity** -- directory transactions never complete
  before they are requested, and a core's next-event time never runs
  backwards (``system/machine.py`` skip-ahead depends on it).
* **FIFO store drain** -- the store buffer never issues a younger store
  before an older one; under PC at most one store is outstanding
  (checked against the *model*, not the configured overlap, so a
  mis-configured buffer is caught); under RC the configured overlap is
  respected.
* **Speculative-load rollback** -- after an invalidation hits a line
  with in-window speculatively-performed loads, the core must have a
  rollback scheduled at least as old as the oldest such load.
* **Stall-accounting conservation** -- at the end of every
  :meth:`Machine.run`, busy + stall + idle time equals
  ``cores x cycles`` within the tick-granularity tolerance.

The checker attaches by wrapping *bound methods on instances* after the
machine is fully constructed; with ``check`` off nothing is wrapped, so
sanitized runs must produce cycle counts identical to plain runs (the
test suite asserts this).  All checks are read-only: presence probes use
``lookup(touch=False)`` so LRU state is never perturbed.
"""

from __future__ import annotations

from typing import Optional

from repro.mem.coherence import DIR_EXCLUSIVE, DIR_INVALID, DIR_SHARED
from repro.params import ConsistencyModel


class InvariantViolation(AssertionError):
    """A protocol, ordering or accounting invariant failed."""


class InvariantChecker:
    """Wraps one :class:`~repro.system.machine.Machine`'s components and
    raises :class:`InvariantViolation` on the first broken invariant."""

    def __init__(self, machine):
        self.machine = machine
        self.checks = 0
        self.last_violation: Optional[str] = None

    def _fail(self, message: str) -> None:
        self.last_violation = message
        raise InvariantViolation(message)

    # -- attachment ---------------------------------------------------------

    def attach(self) -> None:
        machine = self.machine
        self._wrap_directory(machine.memory)
        for node_id in range(machine.params.n_nodes):
            self._wrap_invalidate_hook(node_id)
        for core in machine.cores:
            self._wrap_tick(core)
            for physical in core.physical_cores():
                self._wrap_drain(physical)

    def _wrap_directory(self, memory) -> None:
        orig_read = memory.read
        orig_write = memory.write
        orig_flush = memory.flush
        orig_writeback = memory.writeback
        orig_evict = memory.evict_clean
        check_line = self.check_line

        def read(node, line, now, pc=0):
            done, svc, excl = orig_read(node, line, now, pc)
            if done < now:
                self._fail(f"line {line:#x}: read completion {done} "
                           f"precedes request time {now}")
            check_line(line)
            return done, svc, excl

        def write(node, line, now, pc=0):
            done, svc = orig_write(node, line, now, pc)
            if done < now:
                self._fail(f"line {line:#x}: write completion {done} "
                           f"precedes request time {now}")
            check_line(line)
            return done, svc

        def flush(node, line, now):
            orig_flush(node, line, now)
            # The issuing node cleans its cached copy only after this
            # transaction returns; skip cache-side checks for one call.
            check_line(line, include_caches=False)

        def writeback(node, line, now):
            orig_writeback(node, line, now)
            check_line(line)

        def evict_clean(node, line):
            orig_evict(node, line)
            check_line(line)

        memory.read = read
        memory.write = write
        memory.flush = flush
        memory.writeback = writeback
        memory.evict_clean = evict_clean

    def _wrap_invalidate_hook(self, node_id: int) -> None:
        machine = self.machine
        hooks = machine.memory.invalidate_hooks
        orig = hooks[node_id]
        if orig is None:  # pragma: no cover - nodes always register
            return
        node = machine.nodes[node_id]
        core = machine.cores[node_id]

        def invalidate(line: int) -> None:
            orig(line)
            self.checks += 1
            if (node.l1d.lookup(line, touch=False)
                    or node.l2.lookup(line, touch=False)
                    or node.l1i.lookup(line, touch=False)):
                self._fail(f"line {line:#x}: node {node_id} still caches "
                           f"it after an invalidation")
            if line in node._writable:
                self._fail(f"line {line:#x}: node {node_id} keeps write "
                           f"permission after an invalidation")
            for physical in core.physical_cores():
                group = physical.consistency._spec_by_line.get(line)
                if group:
                    rollback = physical._rollback_to
                    if rollback is None or rollback > min(group):
                        self._fail(
                            f"line {line:#x}: speculative load seq "
                            f"{min(group)} at node {node_id} survived an "
                            f"invalidation without a rollback")

        hooks[node_id] = invalidate

    def _wrap_tick(self, core) -> None:
        orig = core.tick

        def tick(now: int) -> int:
            t = orig(now)
            self.checks += 1
            if t < now:
                self._fail(f"core {core.cpu_id}: next-event time {t} runs "
                           f"backwards from cycle {now}")
            return t

        core.tick = tick

    def _wrap_drain(self, physical) -> None:
        buffer = physical.storebuf
        orig = buffer.drain
        model = physical.consistency.model
        cpu = physical.cpu_id

        def drain(now: int):
            ret = orig(now)
            self.checks += 1
            outstanding = 0
            seen_unissued = False
            for entry in buffer._entries:
                if entry.is_barrier:
                    continue
                if entry.issued:
                    if seen_unissued:
                        self._fail(
                            f"core {cpu}: store buffer issued a younger "
                            f"store before an older one (FIFO violation)")
                    if entry.done_at > now:
                        outstanding += 1
                else:
                    seen_unissued = True
            if model is ConsistencyModel.PC and outstanding > 1:
                self._fail(f"core {cpu}: {outstanding} overlapping stores "
                           f"under PC (stores must drain one at a time)")
            if outstanding > buffer.overlap:
                self._fail(f"core {cpu}: {outstanding} outstanding stores "
                           f"exceed the configured overlap "
                           f"{buffer.overlap}")
            return ret

        buffer.drain = drain

    # -- per-line protocol checks -------------------------------------------

    def check_line(self, line: int, include_caches: bool = True) -> None:
        """Validate the directory entry for ``line`` and its agreement
        with every node's cache/dirty/write-permission state."""
        machine = self.machine
        entry = machine.memory._entries.get(line)
        if entry is None:
            return
        self.checks += 1
        n = machine.params.n_nodes
        if entry.state == DIR_EXCLUSIVE:
            if not 0 <= entry.owner < n:
                self._fail(f"line {line:#x}: exclusive with invalid owner "
                           f"{entry.owner}")
            if entry.sharers:
                self._fail(f"line {line:#x}: exclusive at node "
                           f"{entry.owner} but sharers "
                           f"{sorted(entry.sharers)} remain registered")
        elif entry.state == DIR_SHARED:
            if entry.owner != -1:
                self._fail(f"line {line:#x}: shared but owner field still "
                           f"{entry.owner}")
            if not entry.sharers:
                self._fail(f"line {line:#x}: shared with an empty sharer "
                           f"set")
            bad = [s for s in sorted(entry.sharers) if not 0 <= s < n]
            if bad:
                self._fail(f"line {line:#x}: sharer ids {bad} out of range")
        elif entry.state == DIR_INVALID:
            if entry.sharers:
                self._fail(f"line {line:#x}: invalid but sharers "
                           f"{sorted(entry.sharers)} remain registered")
        else:
            self._fail(f"line {line:#x}: unknown directory state "
                       f"{entry.state}")
        if not include_caches:
            return
        for node_id, node in enumerate(machine.nodes):
            member = ((entry.state == DIR_EXCLUSIVE
                       and entry.owner == node_id)
                      or (entry.state == DIR_SHARED
                          and node_id in entry.sharers))
            if not member:
                if (node.l2.lookup(line, touch=False)
                        or node.l1d.lookup(line, touch=False)
                        or node.l1i.lookup(line, touch=False)):
                    self._fail(f"line {line:#x}: cached at node {node_id} "
                               f"but the directory does not list that "
                               f"node")
            owner_here = (entry.state == DIR_EXCLUSIVE
                          and entry.owner == node_id)
            if not owner_here:
                if node.line_dirty(line):
                    self._fail(f"line {line:#x}: dirty at node {node_id} "
                               f"without exclusive ownership")
                if line in node._writable:
                    self._fail(f"line {line:#x}: write-permitted at node "
                               f"{node_id} without exclusive ownership")

    # -- end-of-run accounting ----------------------------------------------

    def check_run_end(self) -> None:
        """Stall-accounting conservation: busy + stall + idle time must
        equal ``cores x cycles`` for the measured window."""
        machine = self.machine
        if machine.params.processor.smt_contexts > 1:
            return  # contexts share one pipeline; accounting overlaps
        self.checks += 1
        cycles = machine.now - machine._measure_started_at
        if cycles <= 0:
            return
        n = machine.params.n_nodes
        accounted = sum(machine.breakdown().cycles)
        expected = cycles * n
        # The final skip-ahead may advance the clock past the last ticked
        # cycle, so allow one maximum-latency jump per core on top of the
        # 2% per-tick fractional tolerance used by `repro validate`.
        tolerance = max(400 * n, 0.02 * expected)
        if abs(accounted - expected) > tolerance:
            self._fail(f"stall accounting leaks time: {accounted:.0f} "
                       f"core-cycles accounted vs {expected} elapsed "
                       f"({n} cores x {cycles} cycles)")
