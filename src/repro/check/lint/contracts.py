"""Whole-program contract passes: R010, R011, R012.

Each pass audits a convention the repo's headline claims rest on:

* **R010** -- byte-identical checkpoint resume requires ``snapshot()``
  to capture (or ``restore()`` to recompute) every attribute the tick
  path mutates;
* **R011** -- fingerprint-stable caching requires ephemeral
  ``SystemParams`` fields to stay out of simulation behaviour;
* **R012** -- backend identity requires ``tick``/``tick_fast`` (and
  ``run``/``_run_fast``) to touch the same attribute surface.

The deliberate exceptions are declared here, next to the passes, each
with its justification: an auditor reading this module sees the whole
trust surface in one place.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.check.lint.registry import LintViolation
from repro.check.lint.symbols import ClassInfo, MethodInfo, ModuleInfo, \
    ProgramIndex

#: The ephemeral registry (R011): SystemParams fields that configure
#: tooling rather than the simulated machine.  Must match
#: ``repro.params.EPHEMERAL_FIELDS`` exactly -- the pass cross-checks.
EPHEMERAL_REGISTRY: FrozenSet[str] = frozenset({
    "check", "watchdog_cycles", "watchdog_node_cycles", "backend"})

#: Approved readers of ephemeral fields (path suffix -> function names).
#: Everything here is a *gate*: code that dispatches on the knob before
#: simulation starts (backend/checker selection, watchdog arming) or
#: that records it in host-side artifacts (triage bundles, checkpoint
#: eligibility).  A read anywhere else is how an ephemeral would leak
#: into cycle math.
EPHEMERAL_READ_GATES: Dict[str, FrozenSet[str]] = {
    "params.py": frozenset({"__post_init__"}),      # value validation
    "system/machine.py": frozenset({
        "__init__",        # attaches the sanitizer when check=True
        "run",             # backend dispatch + watchdog arming
        "_run_fast",       # watchdog arming on the fast loop
        "_run_batch",      # watchdog arming on the batch loop (armed
                           # runs degrade to the fast-loop clone)
    }),
    "run/triage.py": frozenset({"write_bundle"}),   # bundles re-arm the
                                                    # watchdog on replay
    "run/checkpoint.py": frozenset({
        "supports_checkpointing",                   # checker wrappers
    }),                                             # can't be snapshotted
}

#: Deliberately un-snapshotted scratch (R010), (class, attribute) ->
#: justification.  Everything here is run-local state that never
#: survives into a checkpoint *by design*.
SNAPSHOT_SCRATCH: Dict[Tuple[str, str], str] = {
    ("ProcessorCore", "tick_quiet"):
        "no-op certification flag; consumed by the fast loop within the "
        "same grid step and recomputed on the next tick",
    ("SmtCore", "tick_quiet"):
        "same certification flag, aggregated over SMT contexts",
    ("StoreBuffer", "drain_activity"):
        "per-tick drain-activity probe for no-op certification; never "
        "read across ticks",
    ("CoherentMemory", "_ping"):
        "forward-progress watchdog scratch; disarmed unless a watchdog "
        "is configured and never affects timing",
    ("ProcessorCore", "lock_table"):
        "machine-wide shared table; captured once by Machine.snapshot "
        "and reinstalled in place by Machine.restore",
    ("Machine", "effective_backend"):
        "host-side record of which loop implementation the last run() "
        "used (surfaced in result payloads); never read by simulation "
        "and meaningless across a checkpoint boundary",
}

#: Backend write-surface pairs (R012).  ``allowed_fast_extra`` lists the
#: certification scratch only the fast path writes; the reference loop
#: never reads it and snapshots never capture it (see SNAPSHOT_SCRATCH).
#: ``allowed_reference_extra`` is the converse: dispatch-wrapper writes
#: (``Machine.run`` records ``effective_backend`` before delegating)
#: that no inner loop needs to repeat.
_BACKEND_RECORD = frozenset({"effective_backend"})
_SPAN_SCRATCH = frozenset({"_span_nums", "_span_instr", "_span_dirty"})
SURFACE_PAIRS = (
    {"class": "ProcessorCore",
     "reference": ("tick",),
     "fast": ("tick_fast", "settle"),
     "allowed_fast_extra": frozenset({"tick_quiet",
                                      "storebuf.drain_activity"})},
    # The batch backend's dense in-round cycle: identical state effects,
    # retire statistics batched into the span accumulators (flushed by
    # span_flush) instead of written through per cycle.
    # The in-order issue pointer and SMT seat accounting are written on
    # branches the planner's eligibility gate excludes (tick_span is
    # only reached for single-context out-of-order cores), so the span
    # path legitimately lacks them.
    {"class": "ProcessorCore",
     "reference": ("tick",),
     "fast": ("tick_span", "span_flush", "settle"),
     "allowed_fast_extra": _SPAN_SCRATCH,
     "allowed_reference_extra": frozenset({"_inorder_ptr",
                                           "shared.retire_slots"})},
    {"class": "Machine",
     "reference": ("run",),
     "fast": ("_run_fast",),
     "allowed_fast_extra": frozenset(),
     "allowed_reference_extra": _BACKEND_RECORD},
    {"class": "Machine",
     "reference": ("run",),
     "fast": ("_run_batch",),
     "allowed_fast_extra": frozenset(),
     "allowed_reference_extra": _BACKEND_RECORD},
)

#: Methods that run outside the tick path (R010 ignores their writes):
#: construction, checkpointing itself, and once-per-run reporting.
_COLD_METHOD = re.compile(
    r"^(__\w+__|snapshot|restore|reset\w*|format\w*|describe\w*|"
    r"dump\w*|summary\w*|to_dict|from_dict|stats\w*|report\w*)$")


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


# --------------------------------------------------------------------- R010

def _check_snapshot_completeness(index: ProgramIndex,
                                 cls: ClassInfo) -> List[LintViolation]:
    snapshot = cls.methods.get("snapshot")
    restore = cls.methods.get("restore")
    if snapshot is None or restore is None:
        return []
    violations: List[LintViolation] = []

    hot_roots = [name for name in cls.methods
                 if not _COLD_METHOD.match(name)]
    covered = snapshot.attr_reads | set(restore.attr_writes)
    reported: Set[str] = set()
    for method_name in sorted(cls.closure(hot_roots)):
        method = cls.methods[method_name]
        for attr in sorted(method.attr_writes):
            if attr in covered or attr in reported:
                continue
            if (cls.name, attr) in SNAPSHOT_SCRATCH:
                continue
            node = method.attr_writes[attr]
            if index.suppressed(cls.path, node, "R010"):
                continue
            reported.add(attr)
            violations.append(LintViolation(
                cls.path, getattr(node, "lineno", cls.node.lineno),
                "R010",
                f"{cls.name}.{method_name} mutates self.{attr} on the "
                f"tick path, but {cls.name}.snapshot() never captures "
                f"it and restore() never reinstalls it -- checkpoint "
                f"resume would silently lose the value"))

    # Key symmetry: restore() must only read keys snapshot() writes.
    # (The converse -- a snapshot key restore ignores -- is legal:
    # e.g. Process stores "pid" for external re-linking.)
    if not snapshot.opaque_return and snapshot.dict_keys:
        for key in sorted(set(restore.state_keys) - snapshot.dict_keys):
            node = restore.state_keys[key]
            if index.suppressed(cls.path, node, "R010"):
                continue
            violations.append(LintViolation(
                cls.path, getattr(node, "lineno", cls.node.lineno),
                "R010",
                f"{cls.name}.restore() reads state[{key!r}] but "
                f"snapshot() never writes that key -- the "
                f"snapshot/restore key sets have diverged"))
    return violations


# --------------------------------------------------------------------- R011

def _literal_str_set(node: ast.AST) -> Optional[Set[str]]:
    """String constants inside a set/frozenset literal or call, or None
    if the value is not a visible literal collection."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        if not node.args:
            return set()
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: Set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) and \
                    isinstance(element.value, str):
                out.add(element.value)
            else:
                return None
        return out
    return None


def _module_assignment(module: ModuleInfo,
                       name: str) -> Optional[ast.Assign]:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
    return None


def _imports_from_params(module: ModuleInfo, symbol: str) -> bool:
    for stmt in ast.walk(module.tree):
        if isinstance(stmt, ast.ImportFrom) and \
                stmt.module == "repro.params" and \
                any(alias.name == symbol for alias in stmt.names):
            return True
    return False


def _check_ephemeral_registry(module: ModuleInfo
                              ) -> List[LintViolation]:
    """Cross-check the declared registries against EPHEMERAL_REGISTRY."""
    violations: List[LintViolation] = []
    path = _norm(module.path)

    system_params = module.classes.get("SystemParams")
    if system_params is not None and path.endswith("params.py"):
        fields = {stmt.target.id for stmt in system_params.node.body
                  if isinstance(stmt, ast.AnnAssign) and
                  isinstance(stmt.target, ast.Name)}
        stray = EPHEMERAL_REGISTRY - fields
        if stray:
            violations.append(LintViolation(
                module.path, system_params.node.lineno, "R011",
                f"ephemeral registry names non-existent SystemParams "
                f"field(s) {sorted(stray)}"))
        declared = _module_assignment(module, "EPHEMERAL_FIELDS")
        if declared is None:
            violations.append(LintViolation(
                module.path, system_params.node.lineno, "R011",
                "params.py must declare EPHEMERAL_FIELDS (the explicit "
                "ephemeral registry) next to SystemParams"))
        else:
            values = _literal_str_set(declared.value)
            if values is None or values != set(EPHEMERAL_REGISTRY):
                violations.append(LintViolation(
                    module.path, declared.lineno, "R011",
                    f"EPHEMERAL_FIELDS must be the literal registry "
                    f"{sorted(EPHEMERAL_REGISTRY)} (the lint pass, "
                    f"serialization and fingerprinting all key off it)"))

    if path.endswith("params_io.py") and \
            any(isinstance(stmt, ast.FunctionDef) and
                stmt.name == "params_to_dict"
                for stmt in module.tree.body):
        declared = _module_assignment(module, "_EPHEMERAL")
        if declared is not None:
            values = _literal_str_set(declared.value)
            if values is not None:
                if values != set(EPHEMERAL_REGISTRY):
                    violations.append(LintViolation(
                        module.path, declared.lineno, "R011",
                        f"fingerprint exclusion set _EPHEMERAL "
                        f"{sorted(values)} diverges from the ephemeral "
                        f"registry {sorted(EPHEMERAL_REGISTRY)}"))
            elif not _imports_from_params(module, "EPHEMERAL_FIELDS"):
                violations.append(LintViolation(
                    module.path, declared.lineno, "R011",
                    "_EPHEMERAL must alias repro.params.EPHEMERAL_FIELDS "
                    "(or restate it literally) so fingerprints and the "
                    "registry cannot drift apart"))
    return violations


def _check_ephemeral_reads(index: ProgramIndex,
                           module: ModuleInfo) -> List[LintViolation]:
    violations: List[LintViolation] = []
    path = _norm(module.path)
    for read in module.ephemeral_reads:
        gated = any(path.endswith(suffix) and read.function in functions
                    for suffix, functions in
                    EPHEMERAL_READ_GATES.items())
        if gated:
            continue
        if index.suppressed(module.path, read.node, "R011"):
            continue
        where = read.function or "<module>"
        if read.class_name and read.function:
            where = f"{read.class_name}.{read.function}"
        violations.append(LintViolation(
            module.path, getattr(read.node, "lineno", 0), "R011",
            f"read of ephemeral SystemParams field '{read.field}' in "
            f"{where}, outside the approved gate list -- ephemeral "
            f"fields are excluded from fingerprints and must never "
            f"influence simulated behaviour"))
    return violations


# --------------------------------------------------------------------- R012

def _surface(cls: ClassInfo, roots: Sequence[str]) -> Set[str]:
    writes: Set[str] = set()
    for name in cls.closure(roots):
        writes |= set(cls.methods[name].dotted_writes)
    return writes


def _check_backend_surfaces(index: ProgramIndex,
                            classes: Dict[str, ClassInfo]
                            ) -> List[LintViolation]:
    violations: List[LintViolation] = []
    for pair in SURFACE_PAIRS:
        cls = classes.get(pair["class"])
        if cls is None:
            continue
        # A pair only binds when its whole surface exists: a class
        # implementing just a subset (another repo layout, a synthetic
        # test double) has nothing meaningful to compare.
        ref_roots = list(pair["reference"])
        fast_roots = list(pair["fast"])
        if not all(r in cls.methods for r in ref_roots) or \
                not all(r in cls.methods for r in fast_roots):
            continue
        ref_surface = _surface(cls, ref_roots)
        fast_surface = _surface(cls, fast_roots)
        anchor = cls.methods[fast_roots[0]].node
        if index.suppressed(cls.path, anchor, "R012"):
            continue
        ref_label = "/".join(pair["reference"])
        fast_label = "/".join(pair["fast"])
        extra = fast_surface - ref_surface - pair["allowed_fast_extra"]
        if extra:
            violations.append(LintViolation(
                cls.path, anchor.lineno, "R012",
                f"{cls.name}.{fast_label} writes "
                f"{sorted(extra)} which the reference path "
                f"({ref_label}) never writes -- the backends' write "
                f"surfaces have diverged"))
        missing = ref_surface - fast_surface \
            - pair.get("allowed_reference_extra", frozenset())
        if missing:
            violations.append(LintViolation(
                cls.path, anchor.lineno, "R012",
                f"{cls.name}.{ref_label} writes {sorted(missing)} "
                f"but the fast path ({fast_label}) never does -- "
                f"certified skipping would lose those updates"))
    return violations


# ------------------------------------------------------------------ driver

def run_contracts(index: ProgramIndex) -> List[LintViolation]:
    """All whole-program passes over one :class:`ProgramIndex`."""
    violations: List[LintViolation] = []
    classes_by_name: Dict[str, ClassInfo] = {}
    for module in index.files.values():
        violations.extend(_check_ephemeral_registry(module))
        violations.extend(_check_ephemeral_reads(index, module))
        for cls in module.classes.values():
            classes_by_name.setdefault(cls.name, cls)
            violations.extend(_check_snapshot_completeness(index, cls))
    violations.extend(_check_backend_surfaces(index, classes_by_name))
    violations.sort(key=lambda v: (v.path, v.line, v.code, v.message))
    return violations
