"""Static-analysis teeth test: seeded contract violations.

Runtime mutation self-tests (``repro.check.mutations``) prove the
*dynamic* checkers catch injected bugs.  This module does the same for
the contract passes: each entry rewrites one real source file in
memory (never on disk), lints the whole tree with that override, and
asserts the expected rule fires on the mutated file.  A pass that stays
silent on its own seeded violation has no teeth and must not gate CI.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Dict, List, Optional, Tuple


class StaticMutationResult:
    __slots__ = ("name", "description", "detected", "detail")

    def __init__(self, name: str, description: str, detected: bool,
                 detail: str):
        self.name = name
        self.description = description
        self.detected = detected
        self.detail = detail

    def __str__(self) -> str:
        status = "DETECTED" if self.detected else "MISSED"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.name}: {self.description}{suffix}"


def _drop_snapshot_field(source: str) -> str:
    """Remove the ``"retired"`` entry from ProcessorCore.snapshot()."""
    pattern = re.compile(r'^\s*"retired": self\.retired,\s*\n',
                         re.MULTILINE)
    mutated, count = pattern.subn("", source, count=1)
    if count != 1:
        raise AssertionError(
            "mutation anchor '\"retired\": self.retired,' not found in "
            "cpu/core.py -- update the static teeth test")
    return mutated


def _ephemeral_read_in_tick(source: str) -> str:
    """Insert a ``params.check`` read into ProcessorCore.tick()."""
    pattern = re.compile(r"^(    def tick\(self\b[^\n]*\n)",
                         re.MULTILINE)
    mutated, count = pattern.subn(
        r"\1        _ephemeral_probe = self.params.check\n",
        source, count=1)
    if count != 1:
        raise AssertionError(
            "mutation anchor 'def tick(self' not found in cpu/core.py "
            "-- update the static teeth test")
    return mutated


def _numpy_import_in_core(source: str) -> str:
    """Insert a numpy import at the top of cpu/core.py."""
    pattern = re.compile(r"^(from __future__ import annotations\n)",
                         re.MULTILINE)
    mutated, count = pattern.subn(
        r"\1import numpy\n", source, count=1)
    if count != 1:
        raise AssertionError(
            "mutation anchor 'from __future__ import annotations' not "
            "found in cpu/core.py -- update the static teeth test")
    return mutated


def _fabric_socket_no_timeout(source: str) -> str:
    """Append a helper that blocks on a socket with no timeout armed."""
    return source + (
        "\n\ndef _r008_probe(sock):\n"
        "    return sock.recv(4)\n")


def _raw_durable_write(source: str) -> str:
    """Append a helper that publishes a cache file with bare open()."""
    return source + (
        "\n\ndef _r013_probe(path, text):\n"
        "    with open(path, \"w\") as fh:\n"
        "        fh.write(text)\n")


def _fast_only_write(source: str) -> str:
    """Insert a fast-path-only attribute write into tick_fast()."""
    pattern = re.compile(r"^(    def tick_fast\(self\b[^\n]*\n)",
                         re.MULTILINE)
    mutated, count = pattern.subn(
        r"\1        self._fast_scratch = 0\n", source, count=1)
    if count != 1:
        raise AssertionError(
            "mutation anchor 'def tick_fast(self' not found in "
            "cpu/core.py -- update the static teeth test")
    return mutated


#: name -> (description, target path relative to the lint root,
#:          source transformer, rule code expected to fire)
STATIC_MUTATIONS: Dict[str, Tuple[str, str, Callable[[str], str], str]] = {
    "snapshot-field-dropped": (
        "drop 'retired' from ProcessorCore.snapshot() -- checkpoint "
        "resume would lose the retirement count",
        os.path.join("cpu", "core.py"),
        _drop_snapshot_field,
        "R010"),
    "ephemeral-read-in-tick": (
        "read params.check inside ProcessorCore.tick() -- an ephemeral "
        "knob leaking into per-cycle behaviour",
        os.path.join("cpu", "core.py"),
        _ephemeral_read_in_tick,
        "R011"),
    "fast-only-write": (
        "write self._fast_scratch only in tick_fast() -- a backend "
        "write-surface divergence",
        os.path.join("cpu", "core.py"),
        _fast_only_write,
        "R012"),
    "numpy-import-outside-batch": (
        "import numpy in cpu/core.py -- array semantics escaping the "
        "batch backend's scan kernels",
        os.path.join("cpu", "core.py"),
        _numpy_import_in_core,
        "R009"),
    "fabric-socket-no-timeout": (
        "add a socket recv with no settimeout to the fabric protocol "
        "-- a lost peer would wedge the wait forever",
        os.path.join("run", "fabric", "protocol.py"),
        _fabric_socket_no_timeout,
        "R008"),
    "raw-durable-write": (
        "publish a cache file with bare open(..., 'w') in run/cache.py "
        "-- a durable write dodging atomicio's tmp + rename dance",
        os.path.join("run", "cache.py"),
        _raw_durable_write,
        "R013"),
}


def run_static_mutation(name: str) -> str:
    """Apply one seeded violation and lint the tree.

    Returns a non-empty detail string when the expected rule fired on
    the mutated file (detected) and ``""`` when the pass missed it --
    the same convention the runtime mutation detectors use.
    """
    from repro.check.lint import default_lint_root, lint_paths

    description, rel_target, mutate, expected_code = \
        STATIC_MUTATIONS[name]
    root = default_lint_root()
    target = os.path.join(root, rel_target)
    with open(target, "r", encoding="utf-8") as fh:
        original = fh.read()
    mutated = mutate(original)
    violations, _ = lint_paths([root], overrides={target: mutated})
    hits = [v for v in violations
            if v.code == expected_code and
            os.path.abspath(v.path) == os.path.abspath(target)]
    if not hits:
        return ""
    return f"{expected_code} fired: {hits[0].message}"


def run_static_teeth_test(
        names: Optional[List[str]] = None) -> List[StaticMutationResult]:
    """Run every seeded contract violation; all must be detected."""
    results: List[StaticMutationResult] = []
    for name in (names if names is not None
                 else sorted(STATIC_MUTATIONS)):
        description = STATIC_MUTATIONS[name][0]
        detail = run_static_mutation(name)
        results.append(StaticMutationResult(
            name, description, bool(detail), detail))
    return results
