"""Report rendering (JSON / SARIF) and baseline support.

The JSON document is the machine-readable twin of the text output; the
SARIF document is the minimal SARIF 2.1.0 subset code-scanning UIs
ingest (tool driver + rule metadata + one result per violation).

Baselines grandfather existing findings: ``--write-baseline`` records
the current violation set, ``--baseline`` filters matching findings on
later runs so only *new* findings fail the build.  Matching is by
(relative path, code, message) -- line numbers are deliberately left
out so unrelated edits above a grandfathered finding don't resurrect
it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from repro.check.lint.registry import LintViolation, RULE_INFO, RULES


def _rel(path: str, root: str) -> str:
    """Path relative to ``root`` when underneath it (stable baselines),
    else unchanged."""
    try:
        rel = os.path.relpath(path, root)
    except ValueError:      # different drive (Windows)
        return path.replace(os.sep, "/")
    if rel.startswith(".."):
        return path.replace(os.sep, "/")
    return rel.replace(os.sep, "/")


def baseline_key(violation: LintViolation,
                 root: str) -> Tuple[str, str, str]:
    return (_rel(violation.path, root), violation.code,
            violation.message)


def render_baseline(violations: Sequence[LintViolation],
                    root: str) -> str:
    return json.dumps({"version": 1, "findings": [
        {"path": p, "code": c, "message": m}
        for p, c, m in sorted({baseline_key(v, root)
                               for v in violations})
    ]}, indent=2) + "\n"


def load_baseline(path: str) -> set:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return {(entry["path"], entry["code"], entry["message"])
            for entry in doc.get("findings", [])}


def apply_baseline(violations: Sequence[LintViolation], root: str,
                   baseline: set) -> List[LintViolation]:
    return [v for v in violations
            if baseline_key(v, root) not in baseline]


def render_json(violations: Sequence[LintViolation],
                checked: int, root: str) -> str:
    by_code: Dict[str, int] = {}
    for violation in violations:
        by_code[violation.code] = by_code.get(violation.code, 0) + 1
    doc = {
        "tool": "repro-lint",
        "checked_files": checked,
        "violation_count": len(violations),
        "violations_by_code": dict(sorted(by_code.items())),
        "violations": [
            {"path": _rel(v.path, root), "line": v.line,
             "code": v.code, "message": v.message}
            for v in violations
        ],
    }
    return json.dumps(doc, indent=2) + "\n"


def render_sarif(violations: Sequence[LintViolation],
                 checked: int, root: str) -> str:
    rules = [
        {
            "id": code,
            "shortDescription": {"text": RULES[code]},
            "fullDescription": {"text": RULE_INFO[code].explanation},
        }
        for code in sorted(RULES)
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": _rel(v.path, root)},
                    "region": {"startLine": max(v.line, 1)},
                },
            }],
        }
        for v in violations
    ]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro-lint",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2) + "\n"
