"""AST-based determinism and contract auditor for the simulator.

The simulator's claims rest on bit-exact reproducibility: identical
configurations must produce identical cycle counts on any host, any
Python build, any process.  The single-file rules catch the ways Python
lets nondeterminism creep in; the whole-program contract passes audit
the conventions the checkpointing, caching and fast-backend subsystems
rely on:

======  ==================================================================
code    rule
======  ==================================================================
R001    no unseeded randomness: module-level ``random.*`` calls and
        ``random.Random()`` without a seed draw from global, process-
        dependent state
R002    no wall-clock reads (``time.time``, ``perf_counter``,
        ``datetime.now``, ...) -- simulated time is the only clock
R003    no iteration over bare ``set``/``frozenset`` values where order
        can leak into behaviour (wrap in ``sorted(...)``; membership
        tests and order-insensitive reductions are fine)
R004    integer-only cycle arithmetic: true division assigned to a
        cycle-carrying name loses exactness (use ``//`` or wrap in
        ``int()``/``round()``)
R005    ``JobSpec``/``WorkloadSpec`` fields must keep picklable,
        JSON-able types -- worker processes and the result cache both
        serialize them
R006    no per-instruction object allocation on the tick hot path:
        list/dict/set literals and comprehensions inside loops of the
        hot modules (``cpu/core.py``, ``mem/cache.py``) or anywhere in
        a ``tick()`` body churn the allocator millions of times per
        simulated second -- hoist them or reuse scratch structures
R007    no membership tests (``x in d``) or attribute-chain lookups
        (``a.b.c``) inside the fast backend's active-cycle loop
        (``_run_fast`` in ``system/machine.py``): the loop runs once
        per simulated event, so every repeated lookup must be bound to
        a local before the loop
R008    no blocking socket operation (``accept``, ``connect``,
        ``recv*``, ``send``/``sendall``, ``makefile``) inside
        ``run/fabric/`` without an explicit ``settimeout`` armed in the
        enclosing function -- a lost peer must expire a lease, never
        wedge a coordinator thread
R010    snapshot completeness: every attribute the tick path mutates is
        captured by ``snapshot()`` or reinstalled by ``restore()``, and
        restore never reads a state key snapshot doesn't write
R011    ephemeral-parameter purity: ``SystemParams`` fields are either
        fingerprinted configuration or on the explicit ephemeral
        registry, and ephemeral fields are only read at approved gates
R012    backend-surface equivalence: ``tick`` and ``tick_fast``+
        ``settle`` (and ``run`` / ``_run_fast``) write the same
        attribute surface, modulo declared certification scratch
R013    durable writes go through :mod:`repro.run.atomicio`: no bare
        ``open(..., "w")``, ``os.replace``/``os.rename`` or
        ``Path.write_text``/``write_bytes`` inside ``repro/run/`` or
        ``repro/trace/`` -- raw writes dodge the atomic tmp + rename
        dance, disk-fault injection and the recovery audit
======  ==================================================================

Files that fail to parse are reported as ``E001`` diagnostics (path,
line, message) rather than a traceback; E001 cannot be suppressed.

Suppressions::

    x = a / b          # repro-lint: disable=R004
    # repro-lint: disable-file=R002   (anywhere in the file)

``repro lint`` runs this over ``src/repro`` and exits nonzero on any
finding; CI enforces a clean run plus the static teeth test
(``repro.check.lint.selftest``), which seeds one violation per contract
pass and asserts it is detected.  ``repro lint --explain R010`` prints
a rule's long-form contract; ``--format json|sarif``, ``--baseline``
and ``--write-baseline`` support tooling integration.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.lint.registry import LintViolation, RULES, RULE_INFO, \
    SYNTAX_ERROR_CODE, explain_rule
from repro.check.lint.rules_file import _FileLinter
from repro.check.lint.symbols import ProgramIndex
from repro.check.lint.contracts import EPHEMERAL_REGISTRY, run_contracts
from repro.check.lint import output as _output

__all__ = [
    "RULES", "RULE_INFO", "SYNTAX_ERROR_CODE", "LintViolation",
    "explain_rule", "lint_file", "iter_python_files", "lint_paths",
    "default_lint_root", "run_lint",
]


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d not in ("__pycache__",)
                             and not d.endswith(".egg-info"))
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _lint_one(path: str, source: str,
              index: ProgramIndex) -> List[LintViolation]:
    """Per-file pass: parse once, run file rules, feed the symbol
    table.  Unparseable files yield an E001 diagnostic instead of a
    traceback (and never reach the contract passes)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintViolation(
            path, exc.lineno or 0, SYNTAX_ERROR_CODE,
            f"syntax error: {exc.msg}")]
    index.add_file(path, source, tree)
    return _FileLinter(path, source).run(tree)


def lint_paths(paths: Sequence[str],
               overrides: Optional[Dict[str, str]] = None
               ) -> Tuple[List[LintViolation], int]:
    """Lint every Python file under ``paths``: per-file rules plus the
    whole-program contract passes over the same file set.  Returns
    (violations, files_checked).

    ``overrides`` maps absolute paths to replacement source text; the
    static teeth test uses it to lint seeded mutations without touching
    the working tree.
    """
    violations: List[LintViolation] = []
    index = ProgramIndex(set(EPHEMERAL_REGISTRY))
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        if overrides and path in overrides:
            source = overrides[path]
        else:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        violations.extend(_lint_one(path, source, index))
    violations.extend(run_contracts(index))
    return violations, checked


def lint_file(path: str) -> List[LintViolation]:
    """Single-file entry point (file rules only -- contract passes need
    the whole program and run via :func:`lint_paths`)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintViolation(
            path, exc.lineno or 0, SYNTAX_ERROR_CODE,
            f"syntax error: {exc.msg}")]
    return _FileLinter(path, source).run(tree)


def default_lint_root() -> str:
    """The simulator package directory (``src/repro``) of this checkout."""
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def run_lint(paths: Optional[Sequence[str]] = None,
             verbose: bool = True,
             fmt: str = "text",
             output: Optional[str] = None,
             baseline: Optional[str] = None,
             write_baseline: Optional[str] = None) -> int:
    """CLI entry: lint ``paths`` (default: the repro package); returns
    the number of violations (after baseline filtering).

    ``fmt`` selects the report format (``text``/``json``/``sarif``);
    with ``output`` the report is written there and stdout keeps the
    text diagnostics, without it the document replaces stdout text.
    ``baseline`` filters findings recorded by a prior
    ``write_baseline`` run so only new findings count.
    """
    targets = list(paths) if paths else [default_lint_root()]
    violations, checked = lint_paths(targets)
    root = default_lint_root()
    if baseline:
        violations = _output.apply_baseline(
            violations, root, _output.load_baseline(baseline))
    if write_baseline:
        with open(write_baseline, "w", encoding="utf-8") as handle:
            handle.write(_output.render_baseline(violations, root))
        if verbose:
            print(f"repro lint: baseline with {len(violations)} "
                  f"finding(s) written to {write_baseline}")
        return 0
    if fmt == "json":
        document = _output.render_json(violations, checked, root)
    elif fmt == "sarif":
        document = _output.render_sarif(violations, checked, root)
    else:
        document = None
    if document is not None and output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(document)
    if document is None or output:
        for violation in violations:
            print(violation)
        if verbose:
            status = "clean" if not violations else \
                f"{len(violations)} violation(s)"
            print(f"repro lint: {checked} file(s) checked, {status}")
            if document is not None and output:
                print(f"repro lint: {fmt} report written to {output}")
    else:
        print(document, end="")
    return len(violations)
