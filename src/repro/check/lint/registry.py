"""Rule catalog: codes, one-line summaries, and long explanations.

``RULES`` (code -> summary) is the stable public surface consumed by
``repro lint --list-rules`` and by the pragma parser (``disable=all``
expands to it).  ``RULE_INFO`` carries the per-rule metadata shown by
``repro lint --explain RXXX``: the scope of the pass (single-file AST
walk vs whole-program symbol table), the contract the rule guards, and
the escape hatches available when a finding is a documented exception.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Dict


@dataclass
class LintViolation:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


#: Diagnostic code emitted for files the linter cannot parse.  It is
#: deliberately *not* in ``RULES``: no pragma (not even ``disable=all``)
#: can hide a syntax error, and the rule catalog stays the set of
#: suppressible rules.
SYNTAX_ERROR_CODE = "E001"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, scope and the long-form rationale."""

    code: str
    summary: str
    scope: str          # "file": single-file AST pass; "program": contract
                        # pass over the whole-program symbol table
    explanation: str


def _explain(text: str) -> str:
    return textwrap.dedent(text).strip()


RULE_TABLE = (
    Rule(
        "R001",
        "unseeded randomness (global random module state)",
        "file",
        _explain("""
        Module-level ``random.*`` calls and ``random.Random()`` without a
        seed draw from global, process-dependent state, so two runs of
        the same configuration can diverge.  Use a ``random.Random(seed)``
        instance threaded through the component that needs it.
        """)),
    Rule(
        "R002",
        "wall-clock read in simulation code",
        "file",
        _explain("""
        ``time.time``, ``perf_counter``, ``monotonic``, ``datetime.now``
        and friends read the host clock; simulated time is the only
        clock the simulator may observe.  Host-side timing (benchmarks,
        the profiler) lives outside ``src/repro``'s simulation modules
        or carries an explicit pragma.
        """)),
    Rule(
        "R003",
        "iteration over a bare set (order leaks into behaviour)",
        "file",
        _explain("""
        Set iteration order depends on insertion history and hash
        randomization.  Iterating a bare ``set``/``frozenset`` (for-loop,
        comprehension, ``list(s)``, ``str.join``) lets that order leak
        into simulated behaviour.  Wrap the iterable in ``sorted(...)``;
        membership tests and order-insensitive reductions (``len``,
        ``min``, ``sum``, ``any``...) are fine.
        """)),
    Rule(
        "R004",
        "float division assigned to a cycle-carrying name",
        "file",
        _explain("""
        Cycle arithmetic must stay integer-exact: true division feeding
        a cycle-carrying name (``now``, ``done``, ``latency``,
        ``next_free``...) introduces floats whose rounding varies with
        magnitude.  Use ``//`` or wrap the expression in ``int()`` /
        ``round()``.
        """)),
    Rule(
        "R005",
        "unpicklable field type on JobSpec/WorkloadSpec",
        "file",
        _explain("""
        ``JobSpec``/``WorkloadSpec`` cross process boundaries (worker
        pools) and enter the result cache, so every field must keep a
        picklable, JSON-able type.  A field holding a live simulator
        object would silently break fingerprinting and the fork-server
        pool.
        """)),
    Rule(
        "R006",
        "object allocation inside a tick-path loop (hot modules)",
        "file",
        _explain("""
        List/dict/set literals and comprehensions inside loops of the
        hot modules (``cpu/core.py``, ``mem/cache.py``) or anywhere in a
        ``tick()`` body churn the allocator millions of times per
        simulated second.  Hoist the structure or reuse a scratch one;
        rare branches may carry a pragma.
        """)),
    Rule(
        "R007",
        "unhoisted lookup inside the fast backend's cycle loop",
        "file",
        _explain("""
        The certified-skip loop (``_run_fast`` in ``system/machine.py``)
        runs once per simulated event; membership tests and
        attribute-chain lookups inside it repeat dictionary probes the
        reference loop amortizes.  Bind lookups to locals before the
        loop.
        """)),
    Rule(
        "R008",
        "blocking socket operation without an explicit timeout (fabric)",
        "file",
        _explain("""
        Every blocking socket call inside ``run/fabric/`` (``accept``,
        ``connect``, ``recv``/``recv_into``/``recvfrom``, ``send``/
        ``sendall``, ``makefile``) must live in a function that arms an
        explicit deadline with ``settimeout(...)`` first.  A socket
        defaulting to block-forever turns any lost peer -- a worker
        killed mid-job, a dropped frame, a network partition -- into a
        silently wedged coordinator thread, defeating the lease/
        heartbeat failover machinery the fabric exists to provide.
        Block-forever semantics, where genuinely wanted, are built from
        bounded slices (see ``Channel.recv_json``), which keeps every
        wait interruptible and observable.
        """)),
    Rule(
        "R009",
        "numpy import outside the batch backend's scan kernels",
        "file",
        _explain("""
        numpy is an accelerator for the batch backend's round planner
        (vectorized window classification in ``cpu/batch.py``) and
        nothing else.  Importing it anywhere else in ``src/repro`` would
        let array semantics (dtype promotion, float accumulation,
        platform-dependent BLAS behaviour) creep into simulated state,
        and would break the pure-python fallback the simulator
        guarantees when numpy is absent.  The allowed modules are listed
        in ``repro.check.lint.rules_file._NUMPY_SUFFIXES``; they must
        guard the import with a ``try``/``except ImportError`` fallback.
        """)),
    Rule(
        "R010",
        "snapshot()/restore() misses a tick-path mutable attribute",
        "program",
        _explain("""
        Contract: byte-identical checkpoint resume.  For every class
        defining both ``snapshot()`` and ``restore()``, each ``self.X``
        assigned on the tick path (any method not clearly cold:
        ``__init__``, ``snapshot``/``restore``, ``reset*``, ``to_dict``,
        formatting/reporting helpers) must either be read by
        ``snapshot()`` (captured) or assigned by ``restore()`` (a
        derived cache legitimately recomputed on restore, like
        ``MshrFile._min_done``).  The pass also checks key symmetry:
        ``restore()`` reading a ``state["key"]`` that ``snapshot()``'s
        dict literal never writes means resume would KeyError or install
        stale defaults.

        Escape hatches: run-local scratch that deliberately never enters
        a checkpoint (watchdog ping tables, no-op certification flags)
        is listed with a justification in
        ``repro.check.lint.contracts.SNAPSHOT_SCRATCH``; a
        ``# repro-lint: disable=R010`` pragma on the ``snapshot`` def
        line works for per-class waivers, and ``--baseline`` grandfathers
        existing findings.
        """)),
    Rule(
        "R011",
        "ephemeral SystemParams field read outside its gate list",
        "program",
        _explain("""
        Contract: fingerprint-stable result caching.  ``SystemParams``
        fields are either part of the simulated configuration (and enter
        serialized configs and cache fingerprints) or on the explicit
        ephemeral registry (``check``, ``watchdog_cycles``,
        ``watchdog_node_cycles``, ``backend``) -- tooling knobs that
        must never change simulated results.  The pass cross-checks the
        registry against ``repro.params.EPHEMERAL_FIELDS`` and the
        fingerprint exclusion set in ``repro.params_io``, and flags any
        read of an ephemeral field outside the approved gate list
        (machine construction/main-loop dispatch, watchdog arming,
        triage bundle capture, checkpoint eligibility).  A read anywhere
        else is exactly how ``backend`` or ``check`` would leak into
        cycle math.

        Escape hatches: extend
        ``repro.check.lint.contracts.EPHEMERAL_READ_GATES`` (with
        review) for a new legitimate gate; pragmas and ``--baseline``
        as usual.
        """)),
    Rule(
        "R012",
        "backend write-surfaces diverge (tick vs tick_fast, run vs _run_fast)",
        "program",
        _explain("""
        Contract: the fast backend is certified byte-identical to the
        reference loop.  The attribute-write surface (every plain
        ``self.X`` / ``self.X.Y`` assignment, aliases resolved, closed
        over intra-class calls) of ``ProcessorCore.tick`` must equal
        that of ``tick_fast`` + ``settle``, and ``Machine.run``'s must
        equal ``_run_fast``'s.  A fast-only write (or a reference write
        the fast path lost) is a divergence waiting for an input that
        exercises it -- caught here without running a simulation.

        Known asymmetries are declared next to the pass
        (``repro.check.lint.contracts.SURFACE_PAIRS``): the fast side
        may additionally write its certification scratch
        (``tick_quiet``, ``storebuf.drain_activity``), which the
        reference loop never reads and snapshots never capture.
        """)),
    Rule(
        "R013",
        "durable write bypassing repro.run.atomicio",
        "file",
        _explain("""
        Every durable artifact the runner persists (cache entries, the
        sweep manifest, checkpoints, arenas, triage bundles, the gc
        journal) must be published through
        :mod:`repro.run.atomicio` -- the audited tmp + fsync + rename
        primitive that also hosts deterministic disk-fault injection.
        A bare ``open(..., "w")``, ``os.replace``/``os.rename`` or
        ``Path.write_text``/``write_bytes`` inside ``repro/run/`` or
        ``repro/trace/`` creates a durable file the crash-consistency
        harness cannot tear, fault, or audit: a writer dying mid-call
        leaves a torn artifact no recovery path knows about.
        ``run/atomicio.py`` itself is the only exempt module.  Host-
        side scratch that genuinely is not a durable artifact may carry
        a ``# repro-lint: disable=R013`` pragma with a justification.
        """)),
)

RULES: Dict[str, str] = {rule.code: rule.summary for rule in RULE_TABLE}
RULE_INFO: Dict[str, Rule] = {rule.code: rule for rule in RULE_TABLE}


def explain_rule(code: str) -> str:
    """Long-form description for ``repro lint --explain CODE``."""
    rule = RULE_INFO.get(code.upper())
    if rule is None:
        known = ", ".join(sorted(RULES))
        return f"unknown rule {code!r} (known: {known})"
    scope = ("single-file AST pass" if rule.scope == "file"
             else "whole-program contract pass")
    return (f"{rule.code}: {rule.summary}\n"
            f"scope: {scope}\n\n{rule.explanation}")
