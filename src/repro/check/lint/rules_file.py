"""Single-file AST rules (R001-R009, R013) and the pragma grammar.

``_FileLinter`` walks one module's AST and reports the per-file
determinism rules; the whole-program contract passes live in
:mod:`repro.check.lint.contracts`.  The pragma grammar is shared by
both layers through :func:`parse_pragmas` / :func:`suppressed`.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.lint.registry import RULES, LintViolation

#: Files holding the fast backends' cycle loops (R007) and the function
#: names the rule applies to inside them.
_FAST_SUFFIXES = ("system/machine.py",)
_FAST_FUNCS = ("_run_fast", "run_fast", "_run_batch")

#: The only modules allowed to import numpy (R009): the batch planner's
#: vectorized scan kernels.  Everything else stays pure python so the
#: simulator runs -- and certifies -- without the accelerator dep.
_NUMPY_SUFFIXES = ("cpu/batch.py",)

#: Modules whose loops are the simulator's per-instruction hot path
#: (R006).  Matched by normalized path suffix.
_HOT_SUFFIXES = ("cpu/core.py", "mem/cache.py")

#: Path fragment marking the sweep-fabric transport modules (R008).
_FABRIC_FRAGMENT = "run/fabric/"

#: Path fragments marking the durable-artifact tree (R013): everything
#: under the runner and trace packages persists through
#: :mod:`repro.run.atomicio` or not at all.
_DURABLE_FRAGMENTS = ("repro/run/", "repro/trace/")

#: The one module allowed to touch raw write primitives (R013): the
#: atomic-I/O implementation itself.
_DURABLE_EXEMPT_SUFFIXES = ("run/atomicio.py",)

#: ``os`` functions that publish or clobber a path in place (R013).
_RAW_REPLACE = {"replace", "rename"}

#: ``pathlib`` write helpers that bypass the tmp + rename dance (R013).
_RAW_PATH_WRITE = {"write_text", "write_bytes"}

#: Socket methods that block indefinitely unless a timeout is armed
#: (R008).  ``settimeout`` in the enclosing function is the exemption.
_BLOCKING_SOCKET = {"accept", "connect", "recv", "recvfrom",
                    "recv_into", "sendall", "makefile", "send"}

#: Functions in hot modules that are allowed to allocate: setup,
#: teardown and reporting run once per simulation, not per instruction.
_COLD_FUNC = re.compile(
    r"^(__\w+__|reset\w*|format\w*|describe\w*|dump\w*|summary\w*|"
    r"to_dict|from_dict|stats\w*|report\w*)$")

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)=([A-Za-z0-9_,\s]+)")

# Names whose values carry simulated time; R004 guards their exactness.
_CYCLE_NAME = re.compile(
    r"(^|_)(now|cycles?|done|ready|retry|start|deadline|latency|wake|"
    r"next_free|inject|issue)(_|$)")

# Wall-clock callables per module (R002).
_WALL_CLOCK = {
    "time": {"time", "time_ns", "perf_counter", "perf_counter_ns",
             "monotonic", "monotonic_ns", "clock"},
    "datetime": {"now", "today", "utcnow"},
}

# Order-insensitive consumers a bare set may flow into (R003 exemption).
_ORDER_FREE = {"sorted", "len", "min", "max", "sum", "any", "all",
               "set", "frozenset"}

# Order-sensitive consumers that trigger R003 when fed a bare set.
_ORDER_SENSITIVE = {"list", "tuple", "enumerate", "iter", "zip"}

# Picklable / JSON-friendly annotation vocabulary for spec dataclasses
# (R005).  Everything a worker process or the result cache must encode.
_SPEC_TYPES = {
    "int", "float", "str", "bool", "bytes", "None",
    "Optional", "Union", "Tuple", "tuple", "List", "list",
    "Dict", "dict", "Mapping", "Any", "ClassVar",
    "SystemParams", "WorkloadSpec", "MigratoryHints",
}
_SPEC_CLASSES = {"JobSpec", "WorkloadSpec"}


def parse_pragmas(lines: Sequence[str]
                  ) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """``(file_disabled, line -> disabled codes)`` for one source file."""
    file_disabled: Set[str] = set()
    line_disabled: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if not match:
            continue
        kind, codes = match.groups()
        parsed = {code.strip().upper()
                  for code in codes.split(",") if code.strip()}
        if "ALL" in parsed:
            parsed = set(RULES)
        if kind == "disable-file":
            file_disabled |= parsed
        else:
            line_disabled.setdefault(lineno, set()).update(parsed)
    return file_disabled, line_disabled


def suppressed(node: ast.AST, code: str, file_disabled: Set[str],
               line_disabled: Dict[int, Set[str]]) -> bool:
    """Pragma check shared by the file rules and the contract passes:
    a code is suppressed when disabled file-wide or on any line the
    reported node spans."""
    if code in file_disabled:
        return True
    first = getattr(node, "lineno", 0)
    last = getattr(node, "end_lineno", first) or first
    return any(code in line_disabled.get(line, ())
               for line in range(first, last + 1))


class _FileLinter(ast.NodeVisitor):
    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.violations: List[LintViolation] = []
        self.file_disabled, self.line_disabled = parse_pragmas(self.lines)
        self._random_aliases: Set[str] = set()     # modules aliased to random
        self._random_funcs: Set[str] = set()       # from random import X
        self._time_aliases: Dict[str, str] = {}    # alias -> module
        self._wall_funcs: Dict[str, str] = {}      # from-imported name -> mod
        self._set_names: Set[str] = set()
        self._set_attrs: Set[str] = set()
        normalized = path.replace(os.sep, "/")
        self._hot_file = any(normalized.endswith(suffix)
                             for suffix in _HOT_SUFFIXES)
        self._fast_file = any(normalized.endswith(suffix)
                              for suffix in _FAST_SUFFIXES)
        self._fabric_file = _FABRIC_FRAGMENT in normalized
        self._durable_file = any(fragment in normalized
                                 for fragment in _DURABLE_FRAGMENTS) \
            and not any(normalized.endswith(suffix)
                        for suffix in _DURABLE_EXEMPT_SUFFIXES)
        self._numpy_ok = any(normalized.endswith(suffix)
                             for suffix in _NUMPY_SUFFIXES)
        self._func_stack: List[str] = []
        self._loop_depth = 0

    # -- pragmas -------------------------------------------------------------

    def _suppressed(self, node: ast.AST, code: str) -> bool:
        return suppressed(node, code, self.file_disabled,
                          self.line_disabled)

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if not self._suppressed(node, code):
            self.violations.append(LintViolation(
                self.path, getattr(node, "lineno", 0), code, message))

    # -- entry ---------------------------------------------------------------

    def run(self, tree: Optional[ast.AST] = None) -> List[LintViolation]:
        if tree is None:
            tree = ast.parse(self.source, filename=self.path)
        self._collect_set_symbols(tree)
        if self._fabric_file:
            self._check_fabric_sockets(tree)
        self.visit(tree)
        return self.violations

    # -- R008: unbounded socket waits in the fabric ----------------------------

    def _check_fabric_sockets(self, tree: ast.AST) -> None:
        """R008: blocking socket call with no ``settimeout`` in scope.

        Ownership is the innermost enclosing function: a function that
        arms any ``settimeout(...)`` is trusted for all of its blocking
        calls (the bounded-slice pattern), everything else -- including
        module level -- is flagged.
        """
        def scan(node: ast.AST, guarded: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    scan(child, self._arms_timeout(child))
                    continue
                if not guarded and isinstance(child, ast.Call) and \
                        isinstance(child.func, ast.Attribute) and \
                        child.func.attr in _BLOCKING_SOCKET:
                    self._report(
                        child, "R008",
                        f"blocking socket operation .{child.func.attr}"
                        f"(...) without an explicit settimeout in the "
                        f"enclosing function -- a lost peer would wedge "
                        f"this wait forever")
                scan(child, guarded)

        scan(tree, False)

    @staticmethod
    def _arms_timeout(func: ast.AST) -> bool:
        return any(isinstance(sub, ast.Call)
                   and isinstance(sub.func, ast.Attribute)
                   and sub.func.attr == "settimeout"
                   for sub in ast.walk(func))

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name
            if alias.name == "random":
                self._random_aliases.add(name)
            if alias.name in _WALL_CLOCK:
                self._time_aliases[name] = alias.name
            self._check_numpy_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self._random_funcs.add(bound)
            if node.module in _WALL_CLOCK and \
                    alias.name in _WALL_CLOCK[node.module]:
                self._wall_funcs[bound] = node.module
            if node.module == "datetime" and alias.name == "datetime":
                self._time_aliases[bound] = "datetime"
        if node.module:
            self._check_numpy_import(node, node.module)
        self.generic_visit(node)

    def _check_numpy_import(self, node: ast.AST, module: str) -> None:
        """R009: numpy stays confined to the batch scan kernels."""
        if not self._numpy_ok and \
                (module == "numpy" or module.startswith("numpy.")):
            self._report(
                node, "R009",
                f"import of {module} outside the batch backend's scan "
                f"kernels ({', '.join(_NUMPY_SUFFIXES)}) -- array "
                f"semantics must not reach simulated state, and the "
                f"pure-python fallback must keep working")

    # -- R001 / R002: calls ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if owner in self._random_aliases:
                if attr == "Random":
                    if not node.args and not node.keywords:
                        self._report(node, "R001",
                                     "random.Random() without a seed")
                elif attr != "seed":
                    self._report(
                        node, "R001",
                        f"call to module-level random.{attr} (uses global "
                        f"process-dependent state; use a seeded "
                        f"random.Random instance)")
            module = self._time_aliases.get(owner)
            if module and attr in _WALL_CLOCK[module]:
                self._report(node, "R002",
                             f"wall-clock call {owner}.{attr}() "
                             f"(simulated time is the only clock)")
        elif isinstance(func, ast.Name):
            if func.id in self._random_funcs:
                self._report(node, "R001",
                             f"call to random-module function "
                             f"{func.id}() imported at module level")
            if func.id in self._wall_funcs:
                self._report(node, "R002",
                             f"wall-clock call {func.id}() imported from "
                             f"{self._wall_funcs[func.id]}")
            if func.id in _ORDER_SENSITIVE and node.args and \
                    self._is_setish(node.args[0]):
                self._report(node, "R003",
                             f"{func.id}() over a bare set -- wrap the "
                             f"set in sorted(...)")
        if isinstance(func, ast.Attribute) and func.attr == "join" and \
                node.args and self._is_setish(node.args[0]):
            self._report(node, "R003",
                         "str.join over a bare set -- wrap in sorted(...)")
        if self._durable_file:
            self._check_raw_durable_write(node)
        self.generic_visit(node)

    # -- R013: durable writes must go through atomicio -------------------------

    def _check_raw_durable_write(self, node: ast.Call) -> None:
        """R013: raw write primitive in the durable-artifact tree."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = self._open_mode(node)
            if mode is not None and any(c in mode for c in "wax+"):
                self._report(
                    node, "R013",
                    f"open(..., {mode!r}) in the durable tree -- publish "
                    f"through repro.run.atomicio so the write is atomic, "
                    f"fault-covered and auditable")
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _RAW_REPLACE and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "os":
            self._report(
                node, "R013",
                f"os.{func.attr}(...) in the durable tree -- publish "
                f"through repro.run.atomicio (or quarantine via "
                f"atomicio.quarantine)")
        elif func.attr in _RAW_PATH_WRITE:
            self._report(
                node, "R013",
                f".{func.attr}(...) in the durable tree -- publish "
                f"through repro.run.atomicio so the write is atomic, "
                f"fault-covered and auditable")

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        """The literal mode string of an ``open`` call, if present."""
        mode: Optional[ast.AST] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    # -- R003: iteration -------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_setish(node.iter):
            self._report(node, "R003",
                         "for-loop over a bare set -- wrap the iterable "
                         "in sorted(...)")
        # target/iter evaluate once per loop entry, the body (and, for
        # an async generator, nothing else) once per iteration -- only
        # the body counts toward R006 loop depth.
        self.visit(node.target)
        self.visit(node.iter)
        self._loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self._loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.visit(node.test)
        for stmt in node.body:
            self.visit(stmt)
        self._loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_setish(gen.iter):
                self._report(node, "R003",
                             "comprehension over a bare set -- wrap the "
                             "iterable in sorted(...)")
        if not isinstance(node, ast.GeneratorExp):
            self._check_hot_allocation(node, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    # -- R006: hot-path allocation ---------------------------------------------

    def _visit_function(self, node) -> None:
        self._func_stack.append(node.name)
        saved, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = saved
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _check_hot_allocation(self, node: ast.AST, what: str) -> None:
        """R006: literal allocation inside a hot-module tick loop."""
        if not self._hot_file:
            return
        ctx = getattr(node, "ctx", None)
        if ctx is not None and not isinstance(ctx, ast.Load):
            return
        in_tick = any(name in ("tick", "_tick")
                      for name in self._func_stack)
        if self._loop_depth == 0 and not in_tick:
            return
        current = self._func_stack[-1] if self._func_stack else ""
        if _COLD_FUNC.match(current):
            return
        self._report(node, "R006",
                     f"{what} allocated on the tick hot path -- hoist "
                     f"it, reuse a scratch structure, or suppress with "
                     f"a pragma if this branch is rare")

    # -- R007: fast-backend cycle-loop lookups ---------------------------------

    def _in_fast_loop(self) -> bool:
        return self._fast_file and self._loop_depth > 0 and \
            any(name in _FAST_FUNCS for name in self._func_stack)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._in_fast_loop() and \
                any(isinstance(op, (ast.In, ast.NotIn))
                    for op in node.ops):
            self._report(node, "R007",
                         "membership test inside the fast backend's "
                         "cycle loop -- the loop runs once per simulated "
                         "event; use a flat array or hoist the lookup")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._in_fast_loop() and \
                isinstance(node.value, ast.Attribute):
            self._report(node, "R007",
                         f"attribute-chain lookup ...{node.value.attr}."
                         f"{node.attr} inside the fast backend's cycle "
                         f"loop -- bind intermediates to locals before "
                         f"the loop")
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        self._check_hot_allocation(node, "list literal")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._check_hot_allocation(node, "set literal")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._check_hot_allocation(node, "dict literal")
        self.generic_visit(node)

    # -- R004: cycle arithmetic ------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_cycle_division(target, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_cycle_division(node.target, node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_name(node.target)
        if name and _CYCLE_NAME.search(name):
            if isinstance(node.op, ast.Div) or \
                    self._has_unguarded_div(node.value):
                self._report(node, "R004",
                             f"float division feeding cycle variable "
                             f"{name!r} (use // or int(...))")
        self.generic_visit(node)

    @staticmethod
    def _target_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    def _check_cycle_division(self, target: ast.AST, value: ast.AST,
                              node: ast.AST) -> None:
        name = self._target_name(target)
        if name and _CYCLE_NAME.search(name) and \
                self._has_unguarded_div(value):
            self._report(node, "R004",
                         f"float division feeding cycle variable "
                         f"{name!r} (use // or int(...))")

    def _has_unguarded_div(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            guard = (func.id if isinstance(func, ast.Name)
                     else func.attr if isinstance(func, ast.Attribute)
                     else "")
            if guard in ("int", "round", "floor", "ceil"):
                return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        return any(self._has_unguarded_div(child)
                   for child in ast.iter_child_nodes(node))

    # -- R005: spec dataclass fields -------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name in _SPEC_CLASSES:
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and \
                        isinstance(item.target, ast.Name):
                    bad = self._foreign_types(item.annotation)
                    if bad:
                        self._report(
                            item, "R005",
                            f"field {item.target.id!r} uses "
                            f"non-serializable type(s) {sorted(bad)}")
        self.generic_visit(node)

    def _foreign_types(self, annotation: ast.AST) -> Set[str]:
        bad: Set[str] = set()
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Name) and sub.id not in _SPEC_TYPES:
                bad.add(sub.id)
            elif isinstance(sub, ast.Attribute) and \
                    sub.attr not in _SPEC_TYPES:
                bad.add(sub.attr)
        return bad

    # -- set-symbol inference --------------------------------------------------

    def _collect_set_symbols(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if self._is_setish_literal(node.value):
                    for target in node.targets:
                        self._record_set_target(target)
            elif isinstance(node, ast.AnnAssign):
                if self._annotation_is_set(node.annotation) or (
                        node.value is not None
                        and self._is_setish_literal(node.value)):
                    self._record_set_target(node.target)

    def _record_set_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self._set_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self._set_attrs.add(target.attr)

    @staticmethod
    def _annotation_is_set(annotation: ast.AST) -> bool:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Name) and \
                    sub.id in ("Set", "set", "FrozenSet", "frozenset"):
                return True
        return False

    def _is_setish_literal(self, node: ast.AST) -> bool:
        """Syntactically a set value (no symbol lookup)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
            # dataclasses.field(default_factory=set)
            if node.func.id == "field":
                for kw in node.keywords:
                    if kw.arg == "default_factory" and \
                            isinstance(kw.value, ast.Name) and \
                            kw.value.id in ("set", "frozenset"):
                        return True
        return False

    def _is_setish(self, node: ast.AST) -> bool:
        """Is this expression (recursively) a bare set value?"""
        if self._is_setish_literal(node):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_setish(node.left) or \
                self._is_setish(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self._set_attrs
        return False
