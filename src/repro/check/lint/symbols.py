"""Whole-program symbol table feeding the contract passes (R010-R012).

The :class:`ProgramIndex` holds one :class:`ModuleInfo` per linted file;
each records, per class and per method, the facts the contracts reason
about:

* ``attr_writes`` -- names ``X`` assigned via ``self.X = ...``,
  ``self.X op= ...`` or ``self.X[...] = ...`` (subscript stores count as
  a mutation of ``X`` for snapshot completeness);
* ``dotted_writes`` -- plain attribute-assignment targets as dotted
  paths (``self.X`` -> ``X``, ``self.X.Y`` -> ``X.Y``), with local
  aliases resolved (``sb = self.storebuf; sb.flag = ...`` ->
  ``storebuf.flag``); subscript stores are deliberately excluded, so
  both backends' in-place container updates don't create noise;
* ``attr_reads`` -- names ``X`` loaded via ``self.X`` (snapshot coverage);
* ``calls`` -- intra-class ``self.m(...)`` edges (contract passes close
  write sets over them);
* ``state_keys`` -- constant keys ``restore()`` reads off its state
  parameter (``state["k"]`` / ``state.get("k", ...)``);
* ``dict_keys`` / ``opaque_return`` -- constant keys of the dict
  literal(s) ``snapshot()`` returns, or the fact that the return value
  is not a visible literal.

Ephemeral-parameter reads (R011) are collected module-wide: every
``<something>.params.<field>`` / ``params.<field>`` load of a field on
the ephemeral registry, tagged with its enclosing function and class.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.check.lint.rules_file import parse_pragmas, suppressed


def _self_chain(node: ast.AST) -> Optional[List[str]]:
    """``self.a.b`` -> ``["a", "b"]``; anything else -> None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return list(reversed(parts))
    return None


class MethodInfo:
    """Facts about one method body (nested defs included: anything a
    method does at runtime belongs to its write/read surface)."""

    def __init__(self, name: str, node: ast.AST):
        self.name = name
        self.node = node
        self.attr_writes: Dict[str, ast.AST] = {}
        self.dotted_writes: Dict[str, ast.AST] = {}
        self.attr_reads: Set[str] = set()
        self.calls: Set[str] = set()
        self.state_keys: Dict[str, ast.AST] = {}
        self.dict_keys: Set[str] = set()
        self.opaque_return = False

    def merge(self, other: "MethodInfo") -> None:
        """Property getter/setter pairs share a name; union their facts."""
        self.attr_writes.update(other.attr_writes)
        self.dotted_writes.update(other.dotted_writes)
        self.attr_reads |= other.attr_reads
        self.calls |= other.calls
        self.state_keys.update(other.state_keys)
        self.dict_keys |= other.dict_keys
        self.opaque_return |= other.opaque_return


class _MethodVisitor(ast.NodeVisitor):
    def __init__(self, info: MethodInfo, state_param: Optional[str]):
        self.info = info
        self.state_param = state_param
        self.aliases: Dict[str, List[str]] = {}

    # -- assignment targets --------------------------------------------------

    def _record_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value, node)
            return
        if isinstance(target, ast.Attribute):
            chain = self._target_chain(target)
            if chain is None:
                return
            self.info.dotted_writes.setdefault(".".join(chain), node)
            if len(chain) == 1:
                self.info.attr_writes.setdefault(chain[0], node)
            return
        if isinstance(target, ast.Subscript):
            chain = self._target_chain(target.value) \
                if isinstance(target.value, ast.Attribute) else None
            if chain is not None and len(chain) == 1:
                # self.X[...] = ... mutates X for checkpoint purposes,
                # but stays off the R012 surface (both backends update
                # containers in place through method calls too).
                self.info.attr_writes.setdefault(chain[0], node)

    def _target_chain(self, target: ast.AST) -> Optional[List[str]]:
        """Dotted path of an attribute target, aliases resolved."""
        parts: List[str] = []
        node = target
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        if node.id == "self":
            return list(reversed(parts))
        alias = self.aliases.get(node.id)
        if alias is not None:
            return alias + list(reversed(parts))
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        if len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            chain = _self_chain(node.value)
            if chain is not None:
                self.aliases[name] = chain
            else:
                self.aliases.pop(name, None)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)
        self.generic_visit(node)

    # -- reads, calls, state keys --------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            self.info.attr_reads.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            if func.value.id == "self":
                self.info.calls.add(func.attr)
            elif func.value.id == self.state_param and \
                    func.attr == "get" and node.args and \
                    isinstance(node.args[0], ast.Constant) and \
                    isinstance(node.args[0].value, str):
                self.info.state_keys.setdefault(node.args[0].value, node)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Name) and \
                node.value.id == self.state_param and \
                isinstance(node.slice, ast.Constant) and \
                isinstance(node.slice.value, str):
            self.info.state_keys.setdefault(node.slice.value, node)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str):
                    self.info.dict_keys.add(key.value)
                else:
                    self.info.opaque_return = True
        elif value is not None:
            self.info.opaque_return = True
        self.generic_visit(node)


class ClassInfo:
    def __init__(self, name: str, path: str, node: ast.ClassDef):
        self.name = name
        self.path = path
        self.node = node
        self.methods: Dict[str, MethodInfo] = {}

    def closure(self, roots: Sequence[str]) -> Set[str]:
        """Method names reachable from ``roots`` over ``self.m()`` edges."""
        seen: Set[str] = set()
        frontier = [name for name in roots if name in self.methods]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(
                callee for callee in sorted(self.methods[name].calls)
                if callee in self.methods and callee not in seen)
        return seen


class EphemeralRead:
    __slots__ = ("node", "field", "function", "class_name")

    def __init__(self, node: ast.AST, field: str,
                 function: Optional[str], class_name: Optional[str]):
        self.node = node
        self.field = field
        self.function = function
        self.class_name = class_name


class _ModuleVisitor(ast.NodeVisitor):
    """Collects classes/methods and ephemeral-field reads in one walk."""

    def __init__(self, module: "ModuleInfo", ephemeral_fields: Set[str]):
        self.module = module
        self.ephemeral_fields = ephemeral_fields
        self._class_stack: List[ClassInfo] = []
        self._func_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(node.name, self.module.path, node)
        self.module.classes[node.name] = info
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        if self._class_stack and len(self._func_stack) == 0:
            # A direct method of the innermost class: analyze its whole
            # body (nested defs included) with the method visitor.
            owner = self._class_stack[-1]
            info = MethodInfo(node.name, node)
            args = node.args.posonlyargs + node.args.args
            state_param = None
            if node.name == "restore" and len(args) >= 2:
                state_param = args[1].arg
            _MethodVisitor(info, state_param).visit(node)
            if node.name in owner.methods:
                owner.methods[node.name].merge(info)
            else:
                owner.methods[node.name] = info
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and \
                node.attr in self.ephemeral_fields:
            receiver = node.value
            hit = False
            if isinstance(receiver, ast.Name) and receiver.id == "params":
                hit = True
            elif isinstance(receiver, ast.Attribute) and \
                    receiver.attr == "params":
                hit = True
            elif isinstance(receiver, ast.Name) and \
                    receiver.id == "self" and self._class_stack and \
                    self._class_stack[-1].name == "SystemParams":
                hit = True
            if hit:
                self.module.ephemeral_reads.append(EphemeralRead(
                    node, node.attr,
                    self._func_stack[-1] if self._func_stack else None,
                    self._class_stack[-1].name
                    if self._class_stack else None))
        self.generic_visit(node)


class ModuleInfo:
    def __init__(self, path: str, source: str, tree: ast.AST):
        self.path = path
        self.tree = tree
        self.classes: Dict[str, ClassInfo] = {}
        self.ephemeral_reads: List[EphemeralRead] = []
        self.file_disabled, self.line_disabled = \
            parse_pragmas(source.splitlines())


class ProgramIndex:
    """Symbol table over every file of one lint invocation."""

    def __init__(self, ephemeral_fields: Set[str]):
        self.ephemeral_fields = ephemeral_fields
        self.files: Dict[str, ModuleInfo] = {}

    def add_file(self, path: str, source: str, tree: ast.AST) -> None:
        module = ModuleInfo(path, source, tree)
        _ModuleVisitor(module, self.ephemeral_fields).visit(tree)
        self.files[path] = module

    def iter_classes(self) -> List[ClassInfo]:
        return [cls for module in self.files.values()
                for cls in module.classes.values()]

    def suppressed(self, path: str, node: ast.AST, code: str) -> bool:
        module = self.files.get(path)
        if module is None:
            return False
        return suppressed(node, code, module.file_disabled,
                          module.line_disabled)
