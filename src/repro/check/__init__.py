"""Correctness tooling for the simulator (the ``repro check`` layer).

Three cooperating pieces, all opt-in and all zero-cost when disabled:

* :mod:`repro.check.invariants` -- a runtime sanitizer
  (:class:`~repro.check.invariants.InvariantChecker`) that wraps a
  machine's coherence directory, caches, store buffers and cores and
  validates protocol/ordering/accounting invariants on every transition.
  Enabled via ``SystemParams.check``.
* :mod:`repro.check.litmus` -- hand-written consistency litmus traces
  (message passing, Dekker/store buffering, migratory handoff) replayed
  on small machines, asserting each consistency model forbids or allows
  the right outcomes.
* :mod:`repro.check.lint` -- static analysis for the simulator sources
  (``repro lint``): per-file determinism rules plus whole-program
  contract passes (snapshot completeness, ephemeral-parameter purity,
  backend-surface equivalence).

:mod:`repro.check.mutations` seeds deliberate protocol bugs and proves
the sanitizer and litmus harness detect every one of them (the
"has teeth" self-test run by ``repro check``).
"""

from __future__ import annotations

from typing import List

from repro.check.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "run_check_suite",
]


def run_check_suite(verbose: bool = True, self_test: bool = True,
                    durability: bool = False) -> bool:
    """Full correctness suite: litmus matrix, sanitizer-enabled smoke
    runs, and (optionally) the mutation self-test.  Returns overall
    pass/fail; ``repro check`` turns that into the exit status.

    With ``durability=True`` (``repro check --durability``) the
    durable-state recovery audit (:func:`repro.run.audit.audit_state`)
    also runs against the default cache directory; any durability-
    contract violation fails the suite.
    """
    from repro.check.litmus import run_litmus_suite
    from repro.check.mutations import run_mutation_self_test
    from repro.core.validation import check_sanitizer_neutrality

    ok = True

    if durability:
        from repro.run.audit import audit_state
        from repro.run.cache import default_cache_dir
        report = audit_state(default_cache_dir())
        ok &= report.ok
        if verbose:
            print("== durability audit ==")
            print(report.format_report())

    if verbose:
        print("== litmus suite ==")
    results = run_litmus_suite(check=True)
    for r in results:
        ok &= r.passed
        if verbose:
            print(f"  {r}")

    if verbose:
        print("== sanitizer smoke (checker on == checker off) ==")
    smoke: List = [check_sanitizer_neutrality(workload)
                   for workload in ("oltp", "dss")]
    for result in smoke:
        ok &= result.passed
        if verbose:
            print(f"  {result}")

    if self_test:
        if verbose:
            print("== mutation self-test ==")
        mutations = run_mutation_self_test()
        for m in mutations:
            ok &= m.detected
            if verbose:
                print(f"  {m}")

    if verbose:
        print("check suite:", "PASS" if ok else "FAIL")
    return ok
