"""Seeded protocol/ordering bugs proving the sanitizer has teeth.

Each mutation is a context manager that monkeypatches a *class* method
with a subtly broken variant, mimicking a realistic simulator bug.  The
self-test builds a sanitized machine inside the mutation context and
asserts the bug is detected -- by an
:class:`~repro.check.invariants.InvariantViolation` or by a litmus
failure.  A mutation that survives undetected means a checker regression
and fails ``repro check``.

Mutations must be applied *before* machine construction: the checker
captures bound methods at attach time, so only class-level patches made
beforehand are seen through the wrappers.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.check.invariants import InvariantViolation
from repro.check.litmus import store_buffering
from repro.core.experiment import run_simulation
from repro.core.workloads import oltp_workload
from repro.cpu.consistency import ConsistencyUnit
from repro.cpu.core import ProcessorCore
from repro.mem.coherence import CoherentMemory
from repro.params import ConsistencyImpl, ConsistencyModel, default_system
from repro.stats.breakdown import ExecutionBreakdown
from repro.system.machine import WedgeError


@contextlib.contextmanager
def mutate_stale_sharer():
    """GETX forgets to clear the sharer set: stale copies survive a
    write (breaks the single-owner invariant)."""
    orig = CoherentMemory.write

    def write(self, node, line, now, pc=0):
        entry = self.entry(line)
        before = set(entry.sharers)
        result = orig(self, node, line, now, pc)
        entry.sharers |= before - {node}
        return result

    CoherentMemory.write = write
    try:
        yield
    finally:
        CoherentMemory.write = orig


@contextlib.contextmanager
def mutate_skip_invalidate():
    """The directory counts invalidations but never delivers them:
    remote caches keep copies the directory no longer tracks."""
    orig = CoherentMemory._invalidate_node

    def skip(self, node, line):
        self.stats.invalidations_sent += 1

    CoherentMemory._invalidate_node = skip
    try:
        yield
    finally:
        CoherentMemory._invalidate_node = orig


@contextlib.contextmanager
def mutate_pc_store_overlap():
    """The PC store buffer drains with RC-style overlap, letting stores
    perform out of the one-at-a-time order PC requires."""
    orig = ConsistencyUnit.store_buffer_overlap
    ConsistencyUnit.store_buffer_overlap = property(lambda self: 8)
    try:
        yield
    finally:
        ConsistencyUnit.store_buffer_overlap = orig


@contextlib.contextmanager
def mutate_no_rollback():
    """Speculative loads ignore invalidations of their lines (stale
    values reach retirement -- the R10000-style rollback is gone)."""
    orig = ConsistencyUnit.check_violation

    def check_violation(self, line):
        return None

    ConsistencyUnit.check_violation = check_violation
    try:
        yield
    finally:
        ConsistencyUnit.check_violation = orig


@contextlib.contextmanager
def mutate_time_warp():
    """Directory reads complete thousands of cycles before they were
    requested (event-time monotonicity broken)."""
    orig = CoherentMemory.read

    def read(self, node, line, now, pc=0):
        done, svc, excl = orig(self, node, line, now, pc)
        return done - 5_000, svc, excl

    CoherentMemory.read = read
    try:
        yield
    finally:
        CoherentMemory.read = orig


@contextlib.contextmanager
def mutate_lost_stall_time():
    """Half of every stall cycle vanishes from the execution-time
    breakdown (the paper's accounting no longer conserves time)."""
    orig = ExecutionBreakdown.stall

    def stall(self, category, cycles):
        orig(self, category, cycles * 0.5)

    ExecutionBreakdown.stall = stall
    try:
        yield
    finally:
        ExecutionBreakdown.stall = orig


@contextlib.contextmanager
def mutate_lost_lock_release():
    """Lock releases retire but the lock table keeps the old holder:
    every other process spins on the acquire forever.  Invisible to the
    coherence/consistency sanitizer (no protocol rule is broken) -- only
    the forward-progress watchdog can catch it."""
    orig = ProcessorCore._retire

    def retire(self, now):
        before = dict(self.lock_table)
        orig(self, now)
        for addr, pid in before.items():
            if addr not in self.lock_table:
                self.lock_table[addr] = pid   # the release is lost

    ProcessorCore._retire = retire
    try:
        yield
    finally:
        ProcessorCore._retire = orig


def _wedge_detector() -> str:
    """Watchdog-armed OLTP run; returns the wedge classification or ''.

    OLTP's lock contention guarantees a lost release leaves some node
    spinning on an acquire for the rest of the run;
    ``watchdog_node_cycles`` is sized well above any legitimate stall at
    this scale so the unmutated run passes.
    """
    params = default_system(watchdog_node_cycles=8_000)
    try:
        run_simulation(params, oltp_workload(), instructions=12_000,
                       warmup=0)
    except WedgeError as wedge:
        return str(wedge)
    return ""


@dataclass
class MutationResult:
    name: str
    description: str
    detected: bool
    detail: str

    def __str__(self) -> str:
        status = "DETECTED" if self.detected else "MISSED"
        return f"[{status}] {self.name}: {self.detail}"


def _sanitized_oltp(model: ConsistencyModel = ConsistencyModel.RC,
                    impl: ConsistencyImpl =
                    ConsistencyImpl.STRAIGHTFORWARD) -> str:
    """A small sanitizer-enabled OLTP run; returns '' or the violation."""
    params = default_system(consistency=model, consistency_impl=impl,
                            check=True)
    try:
        run_simulation(params, oltp_workload(), instructions=6_000,
                       warmup=3_000)
    except InvariantViolation as violation:
        return str(violation)
    return ""


def _oltp_detector(model=ConsistencyModel.RC,
                   impl=ConsistencyImpl.STRAIGHTFORWARD
                   ) -> Callable[[], str]:
    return lambda: _sanitized_oltp(model, impl)


def _sb_litmus_detector() -> str:
    """SC+speculative store-buffering litmus: a missing rollback shows
    up as the forbidden outcome (or as an invariant violation first)."""
    try:
        result = store_buffering(ConsistencyModel.SC,
                                 ConsistencyImpl.SPECULATIVE, check=True)
    except InvariantViolation as violation:
        return str(violation)
    if not result.passed:
        return f"litmus store-buffering failed: {result.detail}"
    return ""


#: name -> (context manager, description, detector returning '' if missed).
MUTATIONS: Dict[str, tuple] = {
    "stale-sharer": (
        mutate_stale_sharer,
        "GETX leaves stale sharers registered under an exclusive owner",
        _oltp_detector()),
    "skip-invalidate": (
        mutate_skip_invalidate,
        "invalidations are counted but never delivered to caches",
        _oltp_detector()),
    "pc-store-overlap": (
        mutate_pc_store_overlap,
        "PC store buffer drains with RC-style overlap",
        _oltp_detector(model=ConsistencyModel.PC)),
    "no-rollback": (
        mutate_no_rollback,
        "speculative loads survive invalidations without rolling back",
        _sb_litmus_detector),
    "time-warp": (
        mutate_time_warp,
        "directory reads complete before they are requested",
        _oltp_detector()),
    "lost-stall": (
        mutate_lost_stall_time,
        "half of every stall cycle vanishes from the breakdown",
        _oltp_detector()),
    "lost-lock-release": (
        mutate_lost_lock_release,
        "lock releases retire without freeing the lock table entry",
        _wedge_detector),
}


def _static_detector(name: str) -> Callable[[], str]:
    def detect() -> str:
        from repro.check.lint.selftest import run_static_mutation
        return run_static_mutation(name)
    return detect


def _register_static_mutations() -> None:
    """Seeded *source* mutations caught by the contract passes of
    ``repro lint`` (R010-R012) rather than by running a simulation.
    The mutation context is a no-op: the seeded violation lives in an
    in-memory source override inside the detector, never on disk."""
    from repro.check.lint.selftest import STATIC_MUTATIONS
    for name in sorted(STATIC_MUTATIONS):
        description = STATIC_MUTATIONS[name][0]
        MUTATIONS[f"static-{name}"] = (
            contextlib.nullcontext,
            f"[static] {description}",
            _static_detector(name))


_register_static_mutations()


def run_mutation_self_test(names=None) -> List[MutationResult]:
    """Apply each mutation and assert the checker/litmus catches it."""
    results: List[MutationResult] = []
    for name, (mutation, description, detector) in MUTATIONS.items():
        if names is not None and name not in names:
            continue
        with mutation():
            detail = detector()
        results.append(MutationResult(
            name, description, detected=bool(detail),
            detail=detail or "no violation raised"))
    return results
