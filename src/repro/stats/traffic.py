"""Coherence-protocol and interconnect traffic profile.

Condenses the directory and mesh counters of a run into the per-1000-
instruction rates architects compare across workloads: how often the
protocol reads/writes/upgrades/invalidates, how much of the traffic is
communication (dirty) vs capacity (memory-serviced), and how busy the
network was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mem.coherence import CoherenceStats


@dataclass
class TrafficReport:
    """Protocol action rates, all per 1000 retired instructions."""

    reads: float
    writes: float
    upgrades: float
    invalidations: float
    writebacks: float
    flushes: float
    dirty_transfers: float
    communication_fraction: float   # dirty / all directory reads
    network_messages: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "upgrades": self.upgrades,
            "invalidations": self.invalidations,
            "writebacks": self.writebacks,
            "flushes": self.flushes,
            "dirty_transfers": self.dirty_transfers,
            "communication_fraction": self.communication_fraction,
            "network_messages": self.network_messages,
        }

    def format(self) -> str:
        lines = ["Protocol traffic (per 1000 instructions):"]
        for key, value in self.as_dict().items():
            if key == "communication_fraction":
                lines.append(f"  {key:<24s} {value:8.1%}")
            else:
                lines.append(f"  {key:<24s} {value:8.2f}")
        return "\n".join(lines)


def traffic_report(coherence: CoherenceStats, instructions: int,
                   network_messages: int = 0) -> TrafficReport:
    """Build a :class:`TrafficReport` from a run's counters."""
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    per_k = 1000.0 / instructions
    reads = (coherence.reads_local + coherence.reads_remote
             + coherence.reads_dirty)
    writes = (coherence.writes_local + coherence.writes_remote
              + coherence.writes_dirty)
    dirty = coherence.reads_dirty + coherence.writes_dirty
    return TrafficReport(
        reads=reads * per_k,
        writes=writes * per_k,
        upgrades=coherence.upgrades * per_k,
        invalidations=coherence.invalidations_sent * per_k,
        writebacks=coherence.writebacks * per_k,
        flushes=coherence.flushes * per_k,
        dirty_transfers=dirty * per_k,
        communication_fraction=(
            coherence.reads_dirty / reads if reads else 0.0),
        network_messages=network_messages * per_k,
    )
