"""MSHR occupancy distributions (Figure 2(d)-(g) and 3(d)-(g)).

The paper plots, for each cache, the fraction of *miss-busy* time (time
with at least one miss outstanding) during which at least ``n`` MSHRs are
in use -- once for all misses and once for read misses only.

MSHR files report ``(start, end, is_read)`` intervals as misses are
registered; the distribution is computed by an event sweep at the end of
the run.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class MshrOccupancy:
    """Time-weighted occupancy histogram built from miss intervals."""

    def __init__(self, max_n: int = 8):
        self.max_n = max_n
        self._events_all: List[Tuple[int, int]] = []
        self._events_read: List[Tuple[int, int]] = []

    def add_interval(self, start: int, end: int, is_read: bool) -> None:
        if end <= start:
            return
        self._events_all.append((start, 1))
        self._events_all.append((end, -1))
        if is_read:
            self._events_read.append((start, 1))
            self._events_read.append((end, -1))

    def reset(self) -> None:
        self._events_all.clear()
        self._events_read.clear()

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"events_all": list(self._events_all),
                "events_read": list(self._events_read)}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot` (in place, so
        :class:`~repro.mem.cache.MshrFile` references stay valid)."""
        self._events_all = list(state["events_all"])
        self._events_read = list(state["events_read"])

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot: the raw (time, delta) event lists,
        so distributions recompute exactly after a round trip."""
        return {"max_n": self.max_n,
                "events_all": [list(e) for e in self._events_all],
                "events_read": [list(e) for e in self._events_read]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MshrOccupancy":
        out = cls(max_n=int(data["max_n"]))
        out._events_all = [(int(t), int(d)) for t, d in data["events_all"]]
        out._events_read = [(int(t), int(d)) for t, d in data["events_read"]]
        return out

    @staticmethod
    def _sweep(events: List[Tuple[int, int]], max_n: int) -> List[float]:
        """time spent at each occupancy level, index 0 unused."""
        time_at = [0.0] * (max_n + 2)
        if not events:
            return time_at
        events.sort()
        level = 0
        prev_t = events[0][0]
        for t, delta in events:
            if t > prev_t and level > 0:
                time_at[min(level, max_n + 1)] += t - prev_t
            level += delta
            prev_t = t
        return time_at

    def distribution(self, reads_only: bool = False) -> Dict[int, float]:
        """``{n: fraction of miss-busy time with >= n outstanding}``.

        ``distribution()[1]`` is 1.0 by construction whenever any miss
        occurred.
        """
        events = self._events_read if reads_only else self._events_all
        time_at = self._sweep(list(events), self.max_n)
        busy = sum(time_at[1:])
        if busy <= 0:
            return {n: 0.0 for n in range(1, self.max_n + 1)}
        out = {}
        for n in range(1, self.max_n + 1):
            out[n] = sum(time_at[n:]) / busy
        return out

    def mean_occupancy(self, reads_only: bool = False) -> float:
        """Average number of MSHRs in use over miss-busy time."""
        events = self._events_read if reads_only else self._events_all
        time_at = self._sweep(list(events), self.max_n)
        busy = sum(time_at[1:])
        if busy <= 0:
            return 0.0
        weighted = sum(n * t for n, t in enumerate(time_at))
        return weighted / busy


class MshrOccupancyGroup:
    """Per-cache occupancy collectors aggregated by time-weighted
    averaging (MSHRs are per cache; summing events across caches would
    fabricate overlap that no single MSHR file ever saw)."""

    def __init__(self, n_caches: int, max_n: int = 8):
        self.max_n = max_n
        self.collectors = [MshrOccupancy(max_n) for _ in range(n_caches)]

    def __getitem__(self, index: int) -> MshrOccupancy:
        return self.collectors[index]

    def reset(self) -> None:
        for collector in self.collectors:
            collector.reset()

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"collectors": [c.snapshot(memo) for c in self.collectors]}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot` onto the existing
        collectors (identity preserved: MSHR files hold references)."""
        for collector, sub in zip(self.collectors, state["collectors"]):
            collector.restore(sub)

    def to_dict(self) -> Dict[str, object]:
        return {"max_n": self.max_n,
                "collectors": [c.to_dict() for c in self.collectors]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MshrOccupancyGroup":
        out = cls(n_caches=0, max_n=int(data["max_n"]))
        out.collectors = [MshrOccupancy.from_dict(c)
                          for c in data["collectors"]]
        return out

    def distribution(self, reads_only: bool = False) -> Dict[int, float]:
        """Busy-time-weighted average of the per-cache distributions."""
        weighted = {n: 0.0 for n in range(1, self.max_n + 1)}
        total_busy = 0.0
        for collector in self.collectors:
            events = collector._events_read if reads_only \
                else collector._events_all
            time_at = MshrOccupancy._sweep(list(events), self.max_n)
            busy = sum(time_at[1:])
            if busy <= 0:
                continue
            dist = collector.distribution(reads_only)
            for n, frac in dist.items():
                weighted[n] += frac * busy
            total_busy += busy
        if total_busy <= 0:
            return {n: 0.0 for n in range(1, self.max_n + 1)}
        return {n: v / total_busy for n, v in weighted.items()}

    def mean_occupancy(self, reads_only: bool = False) -> float:
        dist = self.distribution(reads_only)
        return sum(dist.values())
