"""Sharing-pattern characterization of section 4.2.

The paper reports, for OLTP:

* 88% of shared write accesses and 79% of dirty read misses target
  migratory data,
* 70% of migratory write misses refer to 3% of the migratory lines,
* 75% of migratory references come from <10% of the static instructions
  that ever issue one (~100 instructions),
* most migratory accesses occur within identifiable critical sections.

:func:`sharing_characterization` condenses a run's
:class:`~repro.mem.coherence.CoherenceStats` into those headline numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mem.coherence import CoherenceStats


@dataclass
class SharingReport:
    """Headline migratory-sharing statistics for one run."""

    dirty_reads: int
    shared_writes: int
    migratory_dirty_read_fraction: float
    migratory_shared_write_fraction: float
    migratory_lines: int
    write_concentration: List[Tuple[float, float]]  # (line frac, miss frac)
    pc_concentration: List[Tuple[float, float]]     # (pc frac, ref frac)
    hot_pcs: List[int]

    def top_line_fraction(self, miss_share: float = 0.70) -> float:
        """Smallest fraction of migratory lines covering ``miss_share`` of
        migratory write misses (paper: 3% of lines cover 70%)."""
        for line_frac, miss_frac in self.write_concentration:
            if miss_frac >= miss_share:
                return line_frac
        return 1.0

    def top_pc_fraction(self, ref_share: float = 0.75) -> float:
        """Smallest fraction of migratory-reference PCs covering
        ``ref_share`` of migratory references (paper: <10% cover 75%)."""
        for pc_frac, ref_frac in self.pc_concentration:
            if ref_frac >= ref_share:
                return pc_frac
        return 1.0


def _concentration(counts: Dict[int, int]) -> List[Tuple[float, float]]:
    """Cumulative (fraction of keys, fraction of counts), hottest first."""
    if not counts:
        return []
    total = sum(counts.values())
    ordered = sorted(counts.values(), reverse=True)
    out = []
    run = 0
    for i, c in enumerate(ordered, start=1):
        run += c
        out.append((i / len(ordered), run / total))
    return out


def sharing_characterization(stats: CoherenceStats,
                             top_pc_share: float = 0.75) -> SharingReport:
    """Build the section-4.2 characterization from coherence counters."""
    pc_counts = stats.migratory_refs_by_pc
    pc_conc = _concentration(pc_counts)
    # The hot PC set used for profile-guided software hints: fewest PCs
    # covering ``top_pc_share`` of migratory references.
    hot_pcs: List[int] = []
    if pc_counts:
        total = sum(pc_counts.values())
        run = 0
        for pc, count in sorted(pc_counts.items(), key=lambda kv: -kv[1]):
            hot_pcs.append(pc)
            run += count
            if run / total >= top_pc_share:
                break
    return SharingReport(
        dirty_reads=stats.reads_dirty,
        shared_writes=stats.shared_writes,
        migratory_dirty_read_fraction=stats.dirty_read_fraction_migratory,
        migratory_shared_write_fraction=stats.shared_write_fraction_migratory,
        migratory_lines=len(stats.migratory_lines),
        write_concentration=_concentration(stats.migratory_write_by_line),
        pc_concentration=pc_conc,
        hot_pcs=hot_pcs,
    )
