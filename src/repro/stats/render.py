"""ASCII rendering of the paper's stacked-bar figures.

The paper presents normalized execution times as stacked bars with CPU,
read, write, synchronization and instruction segments.  This module draws
the same bars in plain text so a terminal run of the benchmark harness
(or the CLI) shows the figures, not just numbers.

Example output::

    inorder-1w  1.00 |CCCCCCCCRRRRRRRRRRRRRRRRRRRRRRIIIIIIIIIIII|
    ooo-4w      0.76 |CCCCCRRRRRRRRRRRRRRRRRRIIIIIIII|
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

#: (summary-row key, fill character) in drawing order.
SEGMENTS: Tuple[Tuple[str, str], ...] = (
    ("cpu", "C"),
    ("read", "R"),
    ("write", "W"),
    ("sync", "S"),
    ("instr", "I"),
)

LEGEND = "C=CPU R=read W=write S=sync I=instruction"


def render_bar(components: Dict[str, float], width: int = 60) -> str:
    """One stacked bar; ``components`` are absolute segment heights
    (their sum is the bar length relative to 1.0 == ``width`` chars)."""
    cells: List[str] = []
    carry = 0.0
    for key, char in SEGMENTS:
        value = components.get(key, 0.0) * width + carry
        count = int(round(value))
        carry = value - count
        cells.append(char * max(0, count))
    return "".join(cells)


def render_figure(rows: Iterable[Tuple[str, float, Dict[str, float]]],
                  width: int = 60, label_width: int = 22) -> str:
    """Render (label, normalized_time, summary_row) tuples as bars.

    ``summary_row`` holds component *shares* of that bar's own time; bars
    are scaled by ``normalized_time`` so their lengths compare.
    """
    lines = []
    for label, normalized, shares in rows:
        components = {k: v * normalized for k, v in shares.items()}
        bar = render_bar(components, width)
        lines.append(f"{label:<{label_width}s} {normalized:5.2f} |{bar}|")
    lines.append(f"{'':<{label_width}s}       {LEGEND}")
    return "\n".join(lines)


def render_figure_result(figure, width: int = 60) -> str:
    """Render a :class:`repro.core.figures.FigureResult`."""
    rows = [(row.label, row.normalized,
             row.result.breakdown.summary_row())
            for row in figure.rows]
    header = f"== {figure.figure_id}: {figure.title} =="
    return header + "\n" + render_figure(rows, width)


def render_distribution(dist: Dict[int, float], width: int = 40,
                        title: str = "") -> str:
    """Render an MSHR occupancy distribution as a histogram."""
    lines = [title] if title else []
    for n in sorted(dist):
        bar = "#" * int(round(dist[n] * width))
        lines.append(f"  >={n}: {dist[n]:5.2f} |{bar:<{width}s}|")
    return "\n".join(lines)
