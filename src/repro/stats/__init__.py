"""Statistics: execution-time breakdown, MSHR occupancy, sharing analysis."""

from repro.stats.breakdown import (
    BUSY,
    CPU_STALL,
    IDLE,
    INSTR,
    READ_DIRTY,
    READ_DTLB,
    READ_L1,
    READ_L2,
    READ_LOCAL,
    READ_REMOTE,
    SYNC,
    WRITE,
    CATEGORY_NAMES,
    READ_CATEGORIES,
    ExecutionBreakdown,
)
from repro.stats.mshr import MshrOccupancy
from repro.stats.sharing import sharing_characterization

__all__ = [
    "ExecutionBreakdown", "MshrOccupancy", "sharing_characterization",
    "BUSY", "CPU_STALL", "READ_L1", "READ_L2", "READ_LOCAL", "READ_REMOTE",
    "READ_DIRTY", "READ_DTLB", "WRITE", "SYNC", "INSTR", "IDLE",
    "CATEGORY_NAMES", "READ_CATEGORIES",
]
