"""Execution-time breakdown with the paper's stall-attribution convention.

Section 3 of the paper: *"At every cycle, we calculate the ratio of the
instructions retired that cycle to the maximum retire rate and attribute
this fraction of the cycle to the busy time.  The remaining fraction is
attributed as stall time to the first instruction that could not be retired
that cycle."*

Components match the paper's figures: CPU (busy + functional-unit stalls),
data read (subdivided into L1 hits + miscellaneous, L2 hits, local memory,
remote memory, dirty/cache-to-cache, and data TLB), data write,
synchronization, and instruction stall (I-cache + I-TLB).  Idle time is
factored out, as in the paper (footnote 1).
"""

from __future__ import annotations

from typing import Dict, Iterable

BUSY = 0
CPU_STALL = 1      # FU stalls, non-memory latency, pipeline restarts
READ_L1 = 2        # L1 hits + miscellaneous (address generation, restarts)
READ_L2 = 3
READ_LOCAL = 4
READ_REMOTE = 5
READ_DIRTY = 6
READ_DTLB = 7
WRITE = 8
SYNC = 9
INSTR = 10
IDLE = 11

N_CATEGORIES = 12

CATEGORY_NAMES = {
    BUSY: "busy", CPU_STALL: "cpu_stall", READ_L1: "read_l1_misc",
    READ_L2: "read_l2", READ_LOCAL: "read_local", READ_REMOTE: "read_remote",
    READ_DIRTY: "read_dirty", READ_DTLB: "read_dtlb", WRITE: "write",
    SYNC: "sync", INSTR: "instr", IDLE: "idle",
}

READ_CATEGORIES = (READ_L1, READ_L2, READ_LOCAL, READ_REMOTE, READ_DIRTY,
                   READ_DTLB)


class ExecutionBreakdown:
    """Per-core (or aggregated) execution-time components in cycles."""

    def __init__(self) -> None:
        self.cycles = [0.0] * N_CATEGORIES
        self.instructions = 0

    def busy(self, fraction: float) -> None:
        self.cycles[BUSY] += fraction

    def stall(self, category: int, cycles: float) -> None:
        self.cycles[category] += cycles

    def accumulate(self, cycles, instructions: int) -> None:
        """Bulk-add a per-category cycle vector plus an instruction count
        (the batch backend's per-round flush).

        Bit-identical to making the same charges through busy()/stall()
        cycle by cycle as long as every charge is exactly representable
        (the batch backend only batches integer multiples of
        1/issue_width with a power-of-two width): exact float additions
        commute and associate, and adding 0.0 is the identity on a
        non-negative accumulator.
        """
        own = self.cycles
        for i in range(N_CATEGORIES):
            c = cycles[i]
            if c:
                own[i] += c
        self.instructions += instructions

    def reset(self) -> None:
        self.cycles = [0.0] * N_CATEGORIES
        self.instructions = 0

    def snapshot(self, memo=None) -> Dict[str, object]:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"cycles": list(self.cycles),
                "instructions": self.instructions}

    def restore(self, state: Dict[str, object]) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.cycles = list(state["cycles"])
        self.instructions = state["instructions"]

    # -- aggregation & reporting --------------------------------------------

    @property
    def total(self) -> float:
        """Total accounted cycles excluding idle (paper factors idle out)."""
        return sum(self.cycles) - self.cycles[IDLE]

    @property
    def cpu(self) -> float:
        """Paper's 'CPU' component: busy + functional-unit stalls."""
        return self.cycles[BUSY] + self.cycles[CPU_STALL]

    @property
    def read(self) -> float:
        return sum(self.cycles[c] for c in READ_CATEGORIES)

    @property
    def write(self) -> float:
        return self.cycles[WRITE]

    @property
    def sync(self) -> float:
        return self.cycles[SYNC]

    @property
    def instr(self) -> float:
        return self.cycles[INSTR]

    @property
    def ipc(self) -> float:
        return self.instructions / self.total if self.total else 0.0

    def merge(self, other: "ExecutionBreakdown") -> None:
        for i in range(N_CATEGORIES):
            self.cycles[i] += other.cycles[i]
        self.instructions += other.instructions

    @classmethod
    def merged(cls, parts: Iterable["ExecutionBreakdown"]
               ) -> "ExecutionBreakdown":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def as_dict(self) -> Dict[str, float]:
        return {CATEGORY_NAMES[i]: self.cycles[i]
                for i in range(N_CATEGORIES)}

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (exact: cycles are kept as the raw
        per-category list, not derived shares)."""
        return {"cycles": list(self.cycles),
                "instructions": self.instructions}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExecutionBreakdown":
        out = cls()
        cycles = list(data["cycles"])
        if len(cycles) != N_CATEGORIES:
            raise ValueError(
                f"expected {N_CATEGORIES} breakdown categories, "
                f"got {len(cycles)}")
        out.cycles = cycles
        out.instructions = int(data["instructions"])
        return out

    def shares(self) -> Dict[str, float]:
        """Each component as a fraction of non-idle execution time."""
        total = self.total or 1.0
        return {CATEGORY_NAMES[i]: self.cycles[i] / total
                for i in range(N_CATEGORIES) if i != IDLE}

    def summary_row(self) -> Dict[str, float]:
        """The paper's top-level bar segments, as fractions."""
        total = self.total or 1.0
        return {
            "cpu": self.cpu / total,
            "read": self.read / total,
            "write": self.write / total,
            "sync": self.sync / total,
            "instr": self.instr / total,
        }

    def format_bar(self, label: str, scale: float = 1.0) -> str:
        """One printable row of a normalized-execution-time figure."""
        row = self.summary_row()
        return (f"{label:<28s} total={scale:6.3f} | "
                f"CPU={row['cpu'] * scale:5.3f} "
                f"read={row['read'] * scale:5.3f} "
                f"write={row['write'] * scale:5.3f} "
                f"sync={row['sync'] * scale:5.3f} "
                f"instr={row['instr'] * scale:5.3f}")
