"""Pipeline trace: per-cycle text dump of a core's instruction window.

A debugging tool in the tradition of SimpleScalar's "pipetrace": attach a
:class:`PipeTracer` to a core, run, and get a per-cycle listing of what
occupied the window and why the head could not retire.  Invaluable when a
stall attribution looks wrong.

Usage::

    tracer = PipeTracer(machine.cores[0], max_cycles=200)
    machine.run(1000)
    print(tracer.format())
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import (
    ST_DONE,
    ST_EXEC,
    ST_MEMACC,
    ST_MEMQ,
    ST_READY,
    ST_WAIT,
    ProcessorCore,
)
from repro.trace.instr import OP_NAMES

_STATE_CHARS = {
    ST_WAIT: "w",     # waiting for operands
    ST_READY: "r",    # ready to issue
    ST_EXEC: "X",     # in a functional unit
    ST_MEMQ: "q",     # in the memory queue
    ST_MEMACC: "M",   # memory access outstanding
    ST_DONE: "D",     # complete, awaiting retirement
}


class PipeTracer:
    """Records a window snapshot after every core tick."""

    def __init__(self, core: ProcessorCore, max_cycles: int = 1000,
                 window_chars: int = 48):
        self.core = core
        self.max_cycles = max_cycles
        self.window_chars = window_chars
        self.lines: List[str] = []
        self._original_tick = core.tick
        core.tick = self._traced_tick  # type: ignore[assignment]

    def detach(self) -> None:
        self.core.tick = self._original_tick  # type: ignore[assignment]

    def _traced_tick(self, now: int) -> int:
        result = self._original_tick(now)
        if len(self.lines) < self.max_cycles:
            self.lines.append(self._snapshot(now))
        return result

    def _snapshot(self, now: int) -> str:
        core = self.core
        window = list(core._window)[:self.window_chars]
        picture = "".join(_STATE_CHARS.get(e.state, "?") for e in window)
        head = window[0] if window else None
        if head is None:
            detail = "(window empty)"
        else:
            op = OP_NAMES.get(head.instr.op, "?")
            detail = (f"head seq={head.seq} {op} "
                      f"{_STATE_CHARS.get(head.state, '?')}")
        return (f"{now:>10d} |{picture:<{self.window_chars}s}| "
                f"retired={core.retired} {detail}")

    def format(self, last: Optional[int] = None) -> str:
        title = "window (head left)"
        header = (f"{'cycle':>10s} |{title:<{self.window_chars}s}| "
                  "legend: w=wait r=ready X=exec q=memq M=mem D=done")
        body = self.lines if last is None else self.lines[-last:]
        return "\n".join([header] + body)
