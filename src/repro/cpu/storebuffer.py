"""Post-retirement store buffer.

Under PC and RC, stores retire into a FIFO buffer and perform later,
hiding write latency (section 3.4: the base RC results show little or no
write latency).  The drain policy realizes the model:

* **PC**: strictly in order, one outstanding store at a time.
* **RC**: multiple outstanding stores (write overlap -- the source of the
  MSHR occupancy beyond 1-2 entries in Figures 2(d)-(e) and 3(d)-(e));
  WMB fences insert barriers that earlier stores must drain past.

Under SC the buffer is unused: stores perform from the instruction window
and block retirement until globally performed.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

_BARRIER = None  # sentinel entry type marker


class _BufferedStore:
    __slots__ = ("addr", "pc", "issued", "done_at", "retry_at",
                 "is_barrier", "prefetched")

    def __init__(self, addr: int, pc: int, is_barrier: bool = False):
        self.addr = addr
        self.pc = pc
        self.issued = False
        self.done_at = 0
        self.retry_at = 0
        self.is_barrier = is_barrier
        self.prefetched = False


class StoreBuffer:
    """FIFO store buffer draining through the node memory system."""

    def __init__(self, capacity: int, memsys, overlap: int = 4,
                 wants_prefetch: bool = False):
        self.capacity = capacity
        self.memsys = memsys
        self.overlap = overlap
        self.wants_prefetch = wants_prefetch
        self._entries: deque = deque()
        self.stores_pushed = 0
        self.barriers_pushed = 0
        # Set by drain() when a pass changed state (pops, issues, retry
        # reschedules, prefetches).  The fast backend resets it before
        # calling drain and reads it afterwards to certify no-op ticks;
        # it is scratch, never checkpointed.
        self.drain_activity = False

    def __len__(self) -> int:
        return sum(1 for e in self._entries if not e.is_barrier)

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push_store(self, addr: int, pc: int) -> bool:
        """Append a retired store; False if the buffer is full."""
        if self.full:
            return False
        self._entries.append(_BufferedStore(addr, pc))
        self.stores_pushed += 1
        return True

    def push_barrier(self) -> None:
        """WMB: later stores may not perform until earlier ones have."""
        if self._entries and self._entries[-1].is_barrier:
            return  # coalesce adjacent barriers
        if self._entries:
            self._entries.append(_BufferedStore(0, 0, is_barrier=True))
            self.barriers_pushed += 1

    def drain(self, now: int) -> Optional[int]:
        """Issue eligible stores and pop completed ones.

        Returns the next cycle at which the buffer state can change (for
        machine skip-ahead), or ``None`` if empty.
        """
        # Pop completed stores / satisfied barriers from the front.
        while self._entries:
            head = self._entries[0]
            if head.is_barrier:
                self._entries.popleft()
                self.drain_activity = True
                continue
            if head.issued and head.done_at <= now:
                self._entries.popleft()
                self.drain_activity = True
                continue
            break
        if not self._entries:
            return None

        outstanding = sum(1 for e in self._entries
                          if e.issued and e.done_at > now)
        next_event = min((e.done_at for e in self._entries
                          if e.issued and e.done_at > now), default=None)

        for e in self._entries:
            if e.is_barrier:
                if outstanding:
                    break  # earlier stores must drain past the barrier
                continue
            if e.issued:
                continue
            if outstanding >= self.overlap:
                if self.wants_prefetch and not e.prefetched:
                    self.memsys.prefetch_data(now, e.addr, exclusive=True,
                                              pc=e.pc)
                    e.prefetched = True
                    self.drain_activity = True
                break
            if e.retry_at > now:
                next_event = e.retry_at if next_event is None else \
                    min(next_event, e.retry_at)
                break
            # The access itself mutates memory-system state (ports, TLB
            # LRU, MSHR expiry) even when it stalls.
            self.drain_activity = True
            result = self.memsys.access_data(now, e.addr, is_write=True,
                                             pc=e.pc)
            if result.stalled:
                e.retry_at = result.retry_at
                next_event = result.retry_at if next_event is None else \
                    min(next_event, result.retry_at)
                break
            e.issued = True
            e.done_at = result.done_at
            outstanding += 1
            next_event = e.done_at if next_event is None else \
                min(next_event, e.done_at)
        return next_event

    def reset(self) -> None:
        self._entries.clear()

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        entries = []
        for e in self._entries:
            entries.append((e.addr, e.pc, e.issued, e.done_at, e.retry_at,
                            e.is_barrier, e.prefetched))
        return {"entries": entries,
                "stores_pushed": self.stores_pushed,
                "barriers_pushed": self.barriers_pushed}

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._entries.clear()
        for addr, pc, issued, done_at, retry_at, is_barrier, prefetched \
                in state["entries"]:
            e = _BufferedStore(addr, pc, is_barrier=is_barrier)
            e.issued = issued
            e.done_at = done_at
            e.retry_at = retry_at
            e.prefetched = prefetched
            self._entries.append(e)
        self.stores_pushed = state["stores_pushed"]
        self.barriers_pushed = state["barriers_pushed"]
