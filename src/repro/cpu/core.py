"""Unified in-order / out-of-order processor core (paper section 2.4).

The core models fetch, dispatch into an instruction window, issue to
functional units (2 integer ALUs, 2 FP units, 2 address-generation units
by default), non-blocking memory access through the node memory system,
and in-order retirement at the issue width.  A mode flag selects between:

* **out-of-order**: any ready instruction in the window may issue;
* **in-order**: instructions issue strictly in program order and issue
  stalls at the first instruction whose operands are not ready -- the
  paper's in-order baseline.

Trace-driven restrictions match the paper: on a branch misprediction no
instructions are fetched until the branch resolves (wrong-path execution
is not modelled), and the OS scheduler switches processes at blocking
system calls.

Stall accounting implements the paper's retire-based convention (see
:mod:`repro.stats.breakdown`).
"""

from __future__ import annotations

import copy
import heapq
from collections import deque
from typing import Dict, Iterator, List, Optional

from repro.cpu.bpred import BranchPredictor
from repro.cpu.consistency import ConsistencyUnit
from repro.cpu.storebuffer import StoreBuffer
from repro.mem.memsys import (
    CAT_DIRTY,
    CAT_DTLB,
    CAT_L1_HIT,
    CAT_L2_HIT,
    CAT_LOCAL,
    CAT_REMOTE,
    NodeMemorySystem,
)
from repro.params import ConsistencyModel, SystemParams
from repro.stats.breakdown import (
    BUSY,
    CPU_STALL,
    IDLE,
    INSTR,
    N_CATEGORIES,
    READ_DIRTY,
    READ_DTLB,
    READ_L1,
    READ_L2,
    READ_LOCAL,
    READ_REMOTE,
    SYNC,
    WRITE,
    ExecutionBreakdown,
)
from repro.trace.instr import (
    OP_BRANCH,
    OP_FLUSH,
    OP_FP,
    OP_INT,
    OP_LOAD,
    OP_LOCK_ACQ,
    OP_LOCK_REL,
    OP_MB,
    OP_PREFETCH,
    OP_STORE,
    OP_SYSCALL,
    OP_WMB,
)

# Window entry states.
ST_WAIT = 0      # operands pending
ST_READY = 1     # may issue
ST_EXEC = 2      # in a functional unit (address generation for memory ops)
ST_MEMQ = 3      # memory op awaiting permission/resources to perform
ST_MEMACC = 4    # memory access outstanding
ST_DONE = 5

_CAT_TO_READ = {
    CAT_L1_HIT: READ_L1, CAT_L2_HIT: READ_L2, CAT_LOCAL: READ_LOCAL,
    CAT_REMOTE: READ_REMOTE, CAT_DIRTY: READ_DIRTY, CAT_DTLB: READ_DTLB,
}

# Hot-loop op-class sets/maps (frozenset membership and one dict lookup
# beat tuple scans in the dispatch/issue/retire paths).
_MEMQ_OPS = frozenset((OP_LOAD, OP_STORE, OP_LOCK_ACQ, OP_LOCK_REL))
_ORDERING_OPS = frozenset((OP_MB, OP_WMB, OP_SYSCALL))
_LOAD_OPS = frozenset((OP_LOAD, OP_LOCK_ACQ))
_STORE_OPS = frozenset((OP_STORE, OP_LOCK_REL))
_FU_CLASS = {OP_FP: 1, OP_LOAD: 2, OP_STORE: 2, OP_LOCK_ACQ: 2,
             OP_LOCK_REL: 2, OP_PREFETCH: 2, OP_FLUSH: 2}
_EXCLUSIVE_OPS = frozenset((OP_STORE, OP_LOCK_REL, OP_LOCK_ACQ))

FAR_FUTURE = 1 << 60
MISPREDICT_RESTART = 3   # pipeline restart after a resolved misprediction
ROLLBACK_RESTART = 8     # recovery from a consistency violation
LOCK_SPIN_INTERVAL = 120  # retry period for a contended lock


class WindowEntry:
    __slots__ = ("seq", "instr", "state", "done_at", "pending", "dependents",
                 "category", "tlb_miss", "retry_at", "prefetched",
                 "mispredicted", "uid")

    _next_uid = 0  # tie-breaker: heap tuples may compare entries whose
                   # seqs collide across context switches

    def __init__(self, seq: int, instr):
        self.seq = seq
        self.instr = instr
        self.uid = WindowEntry._next_uid
        WindowEntry._next_uid += 1
        self.state = ST_WAIT
        self.done_at = 0
        self.pending = 0
        self.dependents: List[int] = []
        self.category = CAT_L1_HIT
        self.tlb_miss = False
        self.retry_at = 0
        self.prefetched = False
        self.mispredicted = False


class TraceBuffer:
    """Window onto a process's instruction stream supporting re-fetch.

    Instructions are kept from the oldest unretired one onward so the core
    can rewind after consistency-violation rollbacks and context switches.

    ``peek`` (used by the batch backend's round planner) reads ahead of
    the fetch point without consuming: draws pulled from the source for a
    peek are parked in a side queue that :meth:`get` drains before
    touching the source again, so fetch observes exactly the stream it
    would have seen without the lookahead.  A source exhaustion hit while
    peeking is deferred -- the saved exception re-raises at the fetch
    that would have triggered it.
    """

    __slots__ = ("_source", "_base", "_buf", "_peek", "_peek_stop")

    def __init__(self, source: Iterator):
        self._source = source
        self._base = 0
        self._buf: deque = deque()
        self._peek: deque = deque()
        self._peek_stop: Optional[BaseException] = None

    def get(self, seq: int):
        buf = self._buf
        while seq - self._base >= len(buf):
            if self._peek:
                buf.append(self._peek.popleft())
            elif self._peek_stop is not None:
                raise self._peek_stop
            else:
                buf.append(next(self._source))
        return buf[seq - self._base]

    def peek(self, seq: int):
        """The instruction at ``seq`` without consuming it, or ``None``
        when the source ends before reaching it."""
        buf = self._buf
        idx = seq - self._base
        if idx < len(buf):
            return buf[idx]
        idx -= len(buf)
        peeked = self._peek
        while idx >= len(peeked):
            if self._peek_stop is not None:
                return None
            try:
                peeked.append(next(self._source))
            except Exception as exc:
                self._peek_stop = exc
                return None
        return peeked[idx]

    def release_through(self, seq: int) -> None:
        """Instructions up to and including ``seq`` are retired."""
        while self._base <= seq and self._buf:
            self._buf.popleft()
            self._base += 1

    @property
    def consumed(self) -> int:
        """Instructions pulled from the source so far (checkpoint restore
        advances a fresh source by this count before resuming)."""
        return self._base + len(self._buf)

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing.  The source iterator
        is wiring: a restored run re-seeks a fresh stream by ``consumed``.
        ``memo`` must be shared with the owning core's snapshot so buffered
        Instruction objects keep their identity with window entries."""
        return {"base": self._base,
                "buf": copy.deepcopy(self._buf, memo)}

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot` (source untouched).

        The peek cache is dropped: peeked-but-unconsumed draws are not
        part of ``consumed``, so the fresh source a restored run seeks
        by that count re-yields them in order."""
        self._base = state["base"]
        self._buf = state["buf"]
        self._peek = deque()
        self._peek_stop = None


class ProcessorCore:
    """One processor: pipeline + window + retirement + stall accounting."""

    def __init__(self, cpu_id: int, params: SystemParams,
                 memsys: NodeMemorySystem, lock_table: Dict[int, int]):
        self.cpu_id = cpu_id
        self.params = params
        self.proc = params.processor
        self.memsys = memsys
        self.lock_table = lock_table
        self.bpred = BranchPredictor(params.bpred)
        self.consistency = ConsistencyUnit(params.consistency,
                                           params.consistency_impl)
        overlap = self.consistency.store_buffer_overlap
        self.storebuf = StoreBuffer(
            capacity=64, memsys=memsys, overlap=overlap,
            wants_prefetch=(self.consistency.wants_prefetch and
                            params.consistency is ConsistencyModel.PC))
        memsys.violation_hook = self._on_line_removed

        self.stats = ExecutionBreakdown()
        self.retired = 0
        # Optional SMT shared pipeline (set by repro.cpu.smt.SmtCore):
        # when present, fetch/issue/retire bandwidth and functional units
        # are drawn from per-cycle pools shared with sibling contexts.
        self.shared = None

        # Pipeline state.
        self.process = None          # assigned by the machine/scheduler
        self._trace: Optional[TraceBuffer] = None
        self._entries: Dict[int, WindowEntry] = {}
        self._window: deque = deque()
        self._ready: List = []       # heap of (seq, entry)
        self._completions: List = []  # heap of (done_at, seq, entry)
        self._memq: List[int] = []
        self._next_seq = 0
        self._inorder_ptr = 0
        self._fetch_blocked_until = 0
        self._fetch_block_instr = False   # True: I-miss, False: branch
        self._cur_fetch_line = -1
        self._unresolved_branches = 0
        self._last_now = -1
        self._gap_category = IDLE
        self.syscall_retired = False
        self._rollback_to: Optional[int] = None
        self._issue_wake = 0  # 0: idle, 1: poll next cycle, 2: event-driven
        # Memory-queue slots are reserved at dispatch (like a real
        # load/store queue) and released at retirement/squash, so the
        # oldest memory op always owns a slot -- admission in program
        # order is what makes the 32-entry queue deadlock-free under SC.
        self._mem_inflight = 0

        # SC stores perform from the window, not the store buffer.
        self._sc_mode = params.consistency is ConsistencyModel.SC

        # Hot-path scalars hoisted out of the frozen params dataclasses so
        # per-tick code does flat attribute reads instead of chasing
        # params.processor.* chains.
        self._issue_width = self.proc.issue_width
        self._window_size = self.proc.window_size
        self._out_of_order = self.proc.out_of_order
        if self.proc.infinite_functional_units:
            big = 1 << 30
            self._fu_template = [big, big, big]
        else:
            self._fu_template = [self.proc.int_alus, self.proc.fp_alus,
                                 self.proc.addr_gen_units]

        # True iff the most recent tick_fast() was certifiably a no-op
        # (nothing changed beyond the per-cycle stall accounting, which
        # gap crediting reproduces exactly).  The fast backend skips a
        # quiet core's ticks until its reported wake cycle.
        self.tick_quiet = False

        # Batch-backend round scratch (tick_span/_span_retire/span_flush):
        # per-round retire statistics accumulated as integer numerators in
        # units of 1/issue_width.  Every per-cycle charge the reference
        # path makes is an integer multiple of 1/issue_width, so when the
        # width is a power of two each charge is a dyadic rational that
        # float addition handles exactly -- folding a round's charges in
        # one accumulate() is bit-identical to making them cycle by cycle.
        # Always flushed (zero) at round end, so never checkpointed.
        self._span_nums = [0] * N_CATEGORIES
        self._span_instr = 0
        self._span_dirty = False
        self._span_exact = (self._issue_width & (self._issue_width - 1)) == 0
        self._inv_width = 1.0 / self._issue_width

    # ------------------------------------------------------------------ process

    def assign_process(self, process, now: int, switch_cost: int = 0
                       ) -> None:
        """Start (or resume) running ``process`` on this core."""
        self.process = process
        self._trace = process.trace
        self._next_seq = process.resume_seq
        self._inorder_ptr = process.resume_seq
        self._unresolved_branches = 0
        self._rollback_to = None
        self._fetch_blocked_until = now + switch_cost
        self._fetch_block_instr = False
        self._cur_fetch_line = -1
        self._mem_inflight = 0
        self.consistency.reset()
        self.storebuf.reset()

    def preempt(self, now: int):
        """Remove the current process (window flushed, position saved)."""
        process = self.process
        if process is None:
            return None
        head_seq = self._window[0].seq if self._window else self._next_seq
        self._squash_from(head_seq, now, penalty=0)
        process.resume_seq = head_seq
        self.process = None
        self._trace = None
        return process

    @property
    def head_seq(self) -> int:
        return self._window[0].seq if self._window else self._next_seq

    def free_slots(self) -> int:
        """Process slots available (SMT cores override with > 1)."""
        return 0 if self.process is not None else 1

    def blocked_processes(self, now: int):
        """Preempt and return processes that retired a blocking call."""
        if not self.syscall_retired:
            return []
        self.syscall_retired = False
        process = self.preempt(now)
        return [process] if process is not None else []

    def physical_cores(self):
        """The underlying single-context cores (SMT returns several)."""
        return [self]

    def reset_stats(self) -> None:
        self.stats.reset()

    # ------------------------------------------------------------------ checkpoint

    def snapshot(self, memo=None) -> dict:
        """Mutable pipeline state for mid-run checkpointing.

        ``memo`` is the machine-wide deepcopy memo: window entries appear
        in ``_entries``, the window deque and both heaps (lazy cleanup
        relies on object identity), and each entry's ``instr`` is the same
        object held by the process's trace buffer (``bp_outcome`` is cached
        on it in place), so all of them must be copied through one memo.
        """
        if memo is None:
            memo = {}
        dc = copy.deepcopy
        return {
            "bpred": self.bpred.snapshot(memo),
            "consistency": self.consistency.snapshot(memo),
            "storebuf": self.storebuf.snapshot(memo),
            "stats": self.stats.snapshot(memo),
            "retired": self.retired,
            "process": None if self.process is None else self.process.pid,
            "entries": dc(self._entries, memo),
            "window": dc(self._window, memo),
            "ready": dc(self._ready, memo),
            "completions": dc(self._completions, memo),
            "memq": list(self._memq),
            "next_seq": self._next_seq,
            "inorder_ptr": self._inorder_ptr,
            "fetch_blocked_until": self._fetch_blocked_until,
            "fetch_block_instr": self._fetch_block_instr,
            "cur_fetch_line": self._cur_fetch_line,
            "unresolved_branches": self._unresolved_branches,
            "last_now": self._last_now,
            "gap_category": self._gap_category,
            "syscall_retired": self.syscall_retired,
            "rollback_to": self._rollback_to,
            "issue_wake": self._issue_wake,
            "mem_inflight": self._mem_inflight,
        }

    def restore(self, state: dict, processes_by_pid: Dict[int, object]
                ) -> None:
        """Install state captured by :meth:`snapshot` onto a freshly
        constructed core (hooks/wiring come from ``__init__``).  The state
        must already be isolated (Machine.restore deep-copies the whole
        blob once, preserving entry/instr identity)."""
        self.bpred.restore(state["bpred"])
        self.consistency.restore(state["consistency"])
        self.storebuf.restore(state["storebuf"])
        self.stats.restore(state["stats"])
        self.retired = state["retired"]
        pid = state["process"]
        if pid is None:
            self.process = None
            self._trace = None
        else:
            self.process = processes_by_pid[pid]
            self._trace = self.process.trace
        self._entries = state["entries"]
        self._window = state["window"]
        self._ready = state["ready"]
        self._completions = state["completions"]
        self._memq = list(state["memq"])
        self._next_seq = state["next_seq"]
        self._inorder_ptr = state["inorder_ptr"]
        self._fetch_blocked_until = state["fetch_blocked_until"]
        self._fetch_block_instr = state["fetch_block_instr"]
        self._cur_fetch_line = state["cur_fetch_line"]
        self._unresolved_branches = state["unresolved_branches"]
        self._last_now = state["last_now"]
        self._gap_category = state["gap_category"]
        self.syscall_retired = state["syscall_retired"]
        self._rollback_to = state["rollback_to"]
        self._issue_wake = state["issue_wake"]
        self._mem_inflight = state["mem_inflight"]
        # Round accumulators are scratch: span_flush() empties them
        # before _run_batch returns, so no checkpoint ever observes a
        # nonzero value -- reinstall the flushed state.
        self._span_nums = [0] * N_CATEGORIES
        self._span_instr = 0
        self._span_dirty = False

    # ------------------------------------------------------------------ tick

    def tick(self, now: int) -> int:
        """Simulate one cycle at time ``now``.

        The machine may skip cycles: the gap since the previous tick is
        charged to the category that was blocking at the end of that tick.
        Returns the next cycle at which this core can possibly make
        progress (``now + 1`` if it is actively working).
        """
        gap = now - self._last_now - 1
        if gap > 0:
            self.stats.stall(self._gap_category, gap)
        self._last_now = now

        if self.process is None:
            self.stats.stall(IDLE, 1)
            self._gap_category = IDLE
            return FAR_FUTURE

        self._process_completions(now)
        self._process_memq(now)
        sb_event = self.storebuf.drain(now)
        self._issue(now)
        self._fetch(now)
        self._retire(now)
        return self._next_event(now, sb_event)

    def tick_fast(self, now: int) -> int:
        """:meth:`tick` with no-op certification (``tick_quiet``).

        Runs the same pipeline phases, but guards each one with a check
        that is provably equivalent to the phase's own early-exit, and
        tracks whether any phase changed architectural state.  The
        effects on simulation state are byte-identical to :meth:`tick`
        at the same cycle; additionally ``tick_quiet`` is set to True
        iff re-running this tick at any cycle before the returned wake
        would also change nothing (all pending event times are absolute,
        so a certified-idle core's wake stays valid until something
        external -- a rollback or the scheduler -- intervenes).
        """
        gap = now - self._last_now - 1
        if gap > 0:
            self.stats.stall(self._gap_category, gap)
        self._last_now = now

        if self.process is None:
            self.stats.stall(IDLE, 1)
            self._gap_category = IDLE
            self.tick_quiet = True
            return FAR_FUTURE

        active = False
        completions = self._completions
        if completions and completions[0][0] <= now:
            # At least one heap pop is guaranteed, and pops (even of
            # squashed entries) mutate checkpoint state.
            self._process_completions(now)
            active = True
        if self._memq:
            unit = self.consistency
            heaps = len(unit._mem_heap) + len(unit._load_heap)
            if self._process_memq(now):
                active = True
            elif len(unit._mem_heap) + len(unit._load_heap) != heaps:
                active = True  # lazy heap cleanup mutated snapshot state
        storebuf = self.storebuf
        if storebuf._entries:
            storebuf.drain_activity = False
            sb_event = storebuf.drain(now)
            if storebuf.drain_activity:
                active = True
        else:
            sb_event = None  # drain() on an empty buffer returns None
        if self._out_of_order:
            ready = self._ready
            if ready:
                n_ready = len(ready)
                self._issue_ooo(now)
                if self._issue_wake == 1 or len(ready) != n_ready:
                    active = True
            else:
                self._issue_wake = 0  # what _issue_ooo computes when idle
        else:
            ptr = self._inorder_ptr
            self._issue_inorder(now)
            if self._issue_wake == 1 or self._inorder_ptr != ptr:
                active = True
        if now >= self._fetch_blocked_until and \
                len(self._window) < self._window_size:
            trace = self._trace
            consumed = trace._base + len(trace._buf)
            seq = self._next_seq
            blocked = self._fetch_blocked_until
            line = self._cur_fetch_line
            self._fetch(now)
            if self._next_seq != seq or \
                    self._fetch_blocked_until != blocked or \
                    self._cur_fetch_line != line or \
                    trace._base + len(trace._buf) != consumed:
                active = True
        window = self._window
        if self.shared is not None:
            # SMT retire bandwidth interacts with sibling contexts; take
            # the full path (it may legitimately charge nothing when the
            # shared retire slots are exhausted).
            before = self.retired
            locks = len(self.lock_table)
            self._retire(now)
            if self.retired != before or len(self.lock_table) != locks:
                active = True
        elif window and window[0].state == ST_DONE:
            before = self.retired
            locks = len(self.lock_table)
            self._retire(now)
            if self.retired != before or len(self.lock_table) != locks:
                active = True  # a blocked LOCK_REL drops the lock pre-retire
        else:
            # Nothing can retire: charge the cycle to the blocking
            # category exactly as _retire's zero-retirement path would
            # (busy(0.0) is an exact no-op on the accumulator).
            if window:
                category = self._classify_stall(window[0])
            elif now < self._fetch_blocked_until and self._fetch_block_instr:
                category = INSTR
            else:
                category = CPU_STALL
            self.stats.cycles[category] += 1.0
            self._gap_category = category
        self.tick_quiet = not active
        return self._next_event(now, sb_event)

    def settle(self, now: int) -> None:
        """Charge the stall accounting a skipped span up to ``now``.

        The fast backend calls this once at run() exit for cores whose
        last tick predates the final grid point, reproducing exactly the
        per-cycle charges the reference backend made over that span (the
        skipped ticks were certified no-ops, so each would have charged
        1.0 cycle to the unchanged ``_gap_category``).
        """
        lag = now - self._last_now
        if lag <= 0:
            return
        if self.process is None:
            self.stats.stall(IDLE, lag)
            self._gap_category = IDLE
        else:
            self.stats.stall(self._gap_category, lag)
        self._last_now = now

    def tick_span(self, now: int) -> bool:
        """One dense in-round cycle for the batch backend.

        State effects are byte-identical to :meth:`tick` at the same
        cycle, except that retirement statistics are batched into the
        round accumulators (:meth:`span_flush` folds them into ``stats``
        at round end) and the next-event computation is skipped -- the
        round ticks every cycle, so wake times are not needed.  Ticking
        a core at a cycle the reference grid would have skipped is a
        certified no-op plus the exact stall charge gap crediting would
        have made, so dense ticking stays identical (see the batch
        planner's eligibility gate in :mod:`repro.cpu.batch`; only
        called for single-context out-of-order cores with a process,
        under release consistency).

        Returns True when the cycle touched state the round plan did not
        predict -- a cache miss on this node or an op outside the hot
        set at the retire head -- telling the machine to end the round
        after the current cycle.  Classification is a performance
        heuristic only: a mispredicted cycle still executes faithfully
        through the ordinary phase methods.
        """
        gap = now - self._last_now - 1
        if gap > 0:
            self.stats.stall(self._gap_category, gap)
        self._last_now = now

        memsys = self.memsys
        misses = memsys.l1d_misses + memsys.l1i_misses + memsys.l2_misses
        completions = self._completions
        if completions and completions[0][0] <= now:
            self._process_completions(now)
        if self._memq:
            self._process_memq(now)
        storebuf = self.storebuf
        if storebuf._entries:
            storebuf.drain(now)
        if self._ready:
            self._issue_ooo(now)
        else:
            self._issue_wake = 0  # what _issue_ooo computes when idle
        if now >= self._fetch_blocked_until and \
                len(self._window) < self._window_size:
            self._fetch(now)
        nonhot = self._span_retire(now)
        if memsys.l1d_misses + memsys.l1i_misses + memsys.l2_misses \
                != misses:
            return True
        return nonhot

    def span_flush(self) -> None:
        """Fold the round's batched retire statistics into ``stats``.

        Exact: each numerator times 1/width reproduces the rational sum
        of the per-cycle charges it replaces (all dyadic, far below the
        53-bit mantissa limit).  Idempotent; the batch backend calls it
        at round end and on the exception path.
        """
        if not self._span_dirty:
            return
        self._span_dirty = False
        nums = self._span_nums
        inv = self._inv_width
        self.stats.accumulate([n * inv for n in nums], self._span_instr)
        self._span_nums = [0] * N_CATEGORIES
        self._span_instr = 0

    def _span_retire(self, now: int) -> bool:
        """:meth:`_retire` for in-round cycles: identical state effects,
        with the per-cycle busy/stall/instruction charges accumulated
        into the round's integer numerators when the issue width is a
        power of two (charged directly otherwise).  Handles every opcode
        the reference path does, so a misclassified round stays correct.
        Returns True when an op outside the batch hot set (lock, fence,
        syscall, prefetch, flush) reached the retire head.
        """
        width = self._issue_width
        retired = 0
        stall_category: Optional[int] = None
        nonhot = False
        window = self._window
        entries = self._entries
        consistency = self.consistency
        trace = self._trace
        while retired < width:
            if not window:
                if now < self._fetch_blocked_until:
                    stall_category = INSTR if self._fetch_block_instr \
                        else CPU_STALL
                else:
                    stall_category = CPU_STALL
                break
            entry = window[0]
            if entry.state != ST_DONE:
                stall_category = self._classify_stall(entry)
                break
            op = entry.instr.op
            if op > OP_BRANCH:
                nonhot = True
            if op == OP_MB and not self.storebuf.empty:
                stall_category = SYNC
                break
            if op in (OP_STORE, OP_LOCK_REL) and not self._sc_mode:
                if op == OP_LOCK_REL:
                    self.lock_table.pop(entry.instr.addr, None)
                if not self.storebuf.push_store(entry.instr.addr,
                                                entry.instr.pc):
                    stall_category = WRITE
                    break
            elif op == OP_LOCK_REL:  # SC: already performed in order
                self.lock_table.pop(entry.instr.addr, None)
            elif op == OP_WMB:
                self.storebuf.push_barrier()
            elif op == OP_FLUSH:
                self.memsys.flush_line(now, entry.instr.addr)
            window.popleft()
            del entries[entry.seq]
            if op in _MEMQ_OPS:
                self._mem_inflight -= 1
            consistency.note_removed(entry.seq)
            trace.release_through(entry.seq)
            retired += 1
            self.retired += 1
            if op == OP_SYSCALL:
                self.syscall_retired = True
                break
        if self._span_exact:
            nums = self._span_nums
            nums[BUSY] += retired
            self._span_instr += retired
            self._span_dirty = True
            if retired < width and stall_category is not None:
                nums[stall_category] += width - retired
                self._gap_category = stall_category
            else:
                self._gap_category = CPU_STALL
        else:
            stats = self.stats
            stats.instructions += retired
            stats.busy(retired / width)
            if retired < width and stall_category is not None:
                stats.stall(stall_category, 1.0 - retired / width)
                self._gap_category = stall_category
            else:
                self._gap_category = CPU_STALL
        return nonhot

    # ------------------------------------------------------------------ fetch

    def _fetch(self, now: int) -> None:
        if now < self._fetch_blocked_until:
            return
        trace = self._trace
        window = self._window
        limit = self._window_size
        shared = self.shared
        slots = self._issue_width if shared is None \
            else shared.fetch_slots
        while slots > 0 and len(window) < limit:
            instr = trace.get(self._next_seq)
            line = instr.pc >> self.memsys.line_shift
            if line != self._cur_fetch_line:
                ready_at, _cat = self.memsys.access_instr(now, instr.pc)
                self._cur_fetch_line = line
                if ready_at > now:
                    self._fetch_blocked_until = ready_at
                    self._fetch_block_instr = True
                    return
            if instr.op == OP_BRANCH and (
                    self._unresolved_branches >=
                    self.proc.max_spec_branches):
                return
            if instr.op in _MEMQ_OPS and \
                    self._mem_inflight >= self.proc.mem_queue_size:
                return  # no load/store-queue slot; wake on retirement
            entry = self._dispatch(instr, now)
            self.memsys.l1i_accesses += 1  # per-reference I-miss rates
            self._next_seq += 1
            slots -= 1
            if shared is not None:
                shared.fetch_slots -= 1
            if instr.op == OP_BRANCH:
                self._unresolved_branches += 1
                if instr.bp_outcome is None:
                    instr.bp_outcome = self.bpred.observe(
                        instr.pc, instr.branch_kind, instr.taken,
                        instr.target)
                mispredicted = instr.bp_outcome
                if instr.taken:
                    self._cur_fetch_line = -1  # redirect re-checks the line
                if mispredicted:
                    entry.mispredicted = True
                    self._fetch_blocked_until = FAR_FUTURE
                    self._fetch_block_instr = False
                    return

    def _dispatch(self, instr, now: int) -> WindowEntry:
        seq = self._next_seq
        entry = WindowEntry(seq, instr)
        entries = self._entries
        for distance in instr.deps:
            producer = entries.get(seq - distance)
            if producer is not None and producer.state != ST_DONE:
                entry.pending += 1
                producer.dependents.append(seq)
        entries[seq] = entry
        self._window.append(entry)

        op = instr.op
        if op in _MEMQ_OPS:
            self._mem_inflight += 1
        if op in _ORDERING_OPS:
            entry.state = ST_DONE  # ordering enforced at retirement
        elif entry.pending == 0:
            entry.state = ST_READY
            heapq.heappush(self._ready, (seq, entry.uid, entry))
        if op in _LOAD_OPS:
            self.consistency.note_dispatch(seq, is_load=True)
        elif op in _STORE_OPS and self._sc_mode:
            self.consistency.note_dispatch(seq, is_load=False)
        return entry

    # ------------------------------------------------------------------ issue

    def _issue(self, now: int) -> None:
        if self.proc.out_of_order:
            self._issue_ooo(now)
        else:
            self._issue_inorder(now)

    def _fu_budget(self) -> List[int]:
        """[int+branch, fp, agu] slots for this cycle.

        Under SMT this is the *shared* pool object itself, so units a
        context consumes are gone for its siblings this cycle.
        """
        if self.shared is not None:
            return self.shared.fu
        return self._fu_template.copy()

    def _fu_class(self, op: int) -> int:
        return _FU_CLASS.get(op, 0)

    def _issue_ooo(self, now: int) -> None:
        slots = self._issue_width if self.shared is None \
            else self.shared.issue_slots
        fu = self._fu_budget()
        skipped = []
        ready = self._ready
        entries = self._entries
        fu_class = _FU_CLASS.get
        heappop, heappush = heapq.heappop, heapq.heappush
        issued = 0
        fu_starved = False
        while ready and slots > 0:
            seq, _uid, entry = heappop(ready)
            if entries.get(seq) is not entry or \
                    entry.state != ST_READY:
                continue  # stale (squashed or already handled)
            cls = fu_class(entry.instr.op, 0)
            if fu[cls] <= 0:
                fu_starved = True
                skipped.append((seq, entry.uid, entry))
                continue
            fu[cls] -= 1
            slots -= 1
            issued += 1
            if self.shared is not None:
                self.shared.issue_slots -= 1
            self._start_execution(entry, now)
        for item in skipped:
            heappush(ready, item)
        # Wake classification for skip-ahead: FU budgets replenish every
        # cycle, so FU starvation (or remaining issue-bandwidth demand)
        # needs a next-cycle tick; otherwise wakes are event-driven.
        if issued or fu_starved or (ready and slots == 0):
            self._issue_wake = 1   # poll next cycle
        else:
            self._issue_wake = 0   # nothing ready

    def _issue_inorder(self, now: int) -> None:
        """Issue strictly in program order; stall at the first instruction
        whose operands are not ready (the paper's in-order model)."""
        slots = self._issue_width if self.shared is None \
            else self.shared.issue_slots
        fu = self._fu_budget()
        entries = self._entries
        seq = self._inorder_ptr
        issued = 0
        self._issue_wake = 0
        while slots > 0:
            entry = entries.get(seq)
            if entry is None:
                if seq >= self._next_seq:
                    break  # nothing fetched yet
                seq += 1   # retired/squashed gap
                self._inorder_ptr = seq
                continue
            if entry.state in (ST_EXEC, ST_MEMQ, ST_MEMACC, ST_DONE):
                seq += 1
                self._inorder_ptr = seq
                continue
            if entry.state != ST_READY:
                break  # data dependence: in-order issue stalls here
            cls = self._fu_class(entry.instr.op)
            if fu[cls] <= 0:
                self._issue_wake = 1   # fresh units next cycle
                break
            fu[cls] -= 1
            slots -= 1
            issued += 1
            if self.shared is not None:
                self.shared.issue_slots -= 1
            self._start_execution(entry, now)
            seq += 1
            self._inorder_ptr = seq
        if issued:
            self._issue_wake = 1

    def _start_execution(self, entry: WindowEntry, now: int) -> None:
        entry.state = ST_EXEC
        entry.done_at = now + entry.instr.latency
        heapq.heappush(self._completions,
                       (entry.done_at, entry.uid, entry))

    # ------------------------------------------------------------------ completion

    def _process_completions(self, now: int) -> None:
        completions = self._completions
        entries = self._entries
        while completions and completions[0][0] <= now:
            _t, _uid, entry = heapq.heappop(completions)
            seq = entry.seq
            if entries.get(seq) is not entry:
                continue  # squashed
            if entry.state == ST_EXEC:
                self._finish_execution(entry, now)
            elif entry.state == ST_MEMACC:
                entry.state = ST_DONE
                self.consistency.note_complete(seq)
                self._wake_dependents(entry)

    def _finish_execution(self, entry: WindowEntry, now: int) -> None:
        op = entry.instr.op
        if op == OP_BRANCH:
            self._unresolved_branches -= 1
            if entry.mispredicted:
                entry.mispredicted = False
                self._fetch_blocked_until = now + MISPREDICT_RESTART
                self._fetch_block_instr = False
            entry.state = ST_DONE
            self._wake_dependents(entry)
        elif op == OP_PREFETCH:
            self.memsys.prefetch_data(now, entry.instr.addr, exclusive=True,
                                      pc=entry.instr.pc)
            entry.state = ST_DONE
        elif op == OP_FLUSH:
            entry.state = ST_DONE  # effect applied at retirement
        elif op in (OP_LOAD, OP_LOCK_ACQ):
            entry.state = ST_MEMQ  # address generated; awaits permission
            self._memq.append(entry.seq)
        elif op in (OP_STORE, OP_LOCK_REL):
            if self._sc_mode:
                entry.state = ST_MEMQ
                self._memq.append(entry.seq)
            else:
                # PC/RC: stores are done once the address is ready; they
                # perform from the store buffer after retirement.
                entry.state = ST_DONE
                self._wake_dependents(entry)
        else:
            entry.state = ST_DONE
            self._wake_dependents(entry)

    def _wake_dependents(self, entry: WindowEntry) -> None:
        entries = self._entries
        for dseq in entry.dependents:
            dep = entries.get(dseq)
            if dep is None or dep.pending == 0:
                continue
            dep.pending -= 1
            if dep.pending == 0 and dep.state == ST_WAIT:
                dep.state = ST_READY
                heapq.heappush(self._ready, (dseq, dep.uid, dep))

    # ------------------------------------------------------------------ memory queue

    def _process_memq(self, now: int) -> bool:
        """Give queued memory ops a chance to perform.

        Returns True when the pass changed any state (entries dropped,
        accesses or lock probes attempted, prefetches issued) -- the fast
        backend uses this to certify no-op ticks.  Blocked entries are
        re-examined without leaving any trace: ``retry_at`` is never
        rewritten on the consistency-blocked path (it is already <= now
        there, and every comparison is strict), so polling a blocked
        queue at different times produces byte-identical checkpoints.
        """
        if not self._memq:
            return False
        changed = False
        unit = self.consistency
        entries = self._entries
        memsys = self.memsys
        still_queued: List[int] = []
        for seq in self._memq:
            entry = entries.get(seq)
            if entry is None or entry.state != ST_MEMQ:
                changed = True  # stale seq dropped from the queue
                continue
            if entry.retry_at > now:
                still_queued.append(seq)
                continue
            op = entry.instr.op
            if op in _LOAD_OPS:
                allowed = unit.may_perform_load(seq)
            else:
                allowed = unit.may_perform_store(seq)
            if not allowed:
                if unit.wants_prefetch and not entry.prefetched:
                    memsys.prefetch_data(
                        now, entry.instr.addr,
                        exclusive=op in _EXCLUSIVE_OPS,
                        pc=entry.instr.pc)
                    entry.prefetched = True
                    changed = True
                # Consistency-blocked: the op becomes performable only
                # when an older memory op completes, so the next
                # completion event (not per-cycle polling) re-examines it.
                still_queued.append(seq)
                continue
            changed = True  # lock probe / memory access attempted
            if op == OP_LOCK_ACQ:
                holder = self.lock_table.get(entry.instr.addr)
                if holder is not None and holder != self.process.pid:
                    entry.retry_at = now + LOCK_SPIN_INTERVAL
                    still_queued.append(seq)
                    continue
                self.lock_table[entry.instr.addr] = self.process.pid
            is_write = op in _EXCLUSIVE_OPS
            result = memsys.access_data(now, entry.instr.addr,
                                        is_write, entry.instr.pc)
            if result.stalled:
                entry.retry_at = result.retry_at
                if op == OP_LOCK_ACQ:
                    # Retry the whole acquire; drop the provisional grab.
                    if self.lock_table.get(entry.instr.addr) == \
                            self.process.pid:
                        del self.lock_table[entry.instr.addr]
                still_queued.append(seq)
                continue
            entry.state = ST_MEMACC
            entry.done_at = result.done_at
            entry.category = result.category
            entry.tlb_miss = result.tlb_miss
            heapq.heappush(self._completions,
                           (entry.done_at, entry.uid, entry))
            if op == OP_LOAD and unit.load_is_speculative(seq):
                line = self.memsys.page_table.translate_line(
                    entry.instr.addr, self.memsys.line_shift)
                unit.note_speculative_load(seq, line)
        self._memq = still_queued
        return changed

    # ------------------------------------------------------------------ retire

    def _retire(self, now: int) -> None:
        width = self._issue_width
        if self.shared is not None:
            width = min(width, self.shared.retire_slots)
        retired = 0
        stall_category: Optional[int] = None
        window = self._window
        entries = self._entries
        consistency = self.consistency
        trace = self._trace
        stats = self.stats
        while retired < width:
            if not window:
                if now < self._fetch_blocked_until:
                    stall_category = INSTR if self._fetch_block_instr \
                        else CPU_STALL
                else:
                    stall_category = CPU_STALL
                break
            entry = window[0]
            if entry.state != ST_DONE:
                stall_category = self._classify_stall(entry)
                break
            op = entry.instr.op
            if op == OP_MB and not self.storebuf.empty:
                stall_category = SYNC
                break
            if op in (OP_STORE, OP_LOCK_REL) and not self._sc_mode:
                if op == OP_LOCK_REL:
                    self.lock_table.pop(entry.instr.addr, None)
                if not self.storebuf.push_store(entry.instr.addr,
                                                entry.instr.pc):
                    stall_category = WRITE
                    break
            elif op == OP_LOCK_REL:  # SC: already performed in order
                self.lock_table.pop(entry.instr.addr, None)
            elif op == OP_WMB:
                self.storebuf.push_barrier()
            elif op == OP_FLUSH:
                self.memsys.flush_line(now, entry.instr.addr)
            window.popleft()
            del entries[entry.seq]
            if op in _MEMQ_OPS:
                self._mem_inflight -= 1
            consistency.note_removed(entry.seq)
            trace.release_through(entry.seq)
            retired += 1
            self.retired += 1
            stats.instructions += 1
            if self.shared is not None:
                self.shared.retire_slots -= 1
            if op == OP_SYSCALL:
                self.syscall_retired = True
                break
        # Busy fraction is measured against the full machine width so
        # SMT contexts' breakdowns sum like the paper's per-CPU bars.
        machine_width = self._issue_width
        self.stats.busy(retired / machine_width)
        if retired < machine_width and stall_category is not None:
            self.stats.stall(stall_category, 1.0 - retired / machine_width)
            self._gap_category = stall_category
        else:
            self._gap_category = CPU_STALL

    def _classify_stall(self, entry: WindowEntry) -> int:
        op = entry.instr.op
        if op in (OP_LOCK_ACQ, OP_LOCK_REL, OP_MB, OP_WMB):
            return SYNC
        if entry.state == ST_MEMACC:
            if op == OP_STORE:
                return WRITE
            if entry.tlb_miss:
                return READ_DTLB
            return _CAT_TO_READ[entry.category]
        if entry.state == ST_MEMQ:
            return WRITE if op == OP_STORE else READ_L1
        if op == OP_LOAD:
            return READ_L1  # address generation / restart: "L1 + misc"
        if op == OP_STORE:
            return WRITE
        return CPU_STALL

    # ------------------------------------------------------------------ squash

    def _squash_from(self, seq: int, now: int, penalty: int) -> None:
        """Remove all entries with seq >= ``seq`` and refetch from there."""
        window = self._window
        entries = self._entries
        while window and window[-1].seq >= seq:
            entry = window.pop()
            del entries[entry.seq]
            if entry.instr.op in _MEMQ_OPS:
                self._mem_inflight -= 1
            self.consistency.note_removed(entry.seq)
            if entry.instr.op == OP_BRANCH and entry.state != ST_DONE:
                self._unresolved_branches -= 1
        self._memq = [s for s in self._memq if s < seq]
        self._next_seq = seq
        self._inorder_ptr = min(self._inorder_ptr, seq)
        self._fetch_blocked_until = now + penalty
        self._fetch_block_instr = False
        self._cur_fetch_line = -1
        # Ready/completion heaps are cleaned lazily via identity checks.

    def _on_line_removed(self, line: int) -> None:
        """Invalidation/replacement hook: speculative-load violations."""
        seq = self.consistency.check_violation(line)
        if seq is None:
            return
        if self._rollback_to is None or seq < self._rollback_to:
            self._rollback_to = seq

    def apply_pending_rollback(self, now: int) -> None:
        """Called by the machine after memory activity each cycle."""
        if self._rollback_to is None:
            return
        seq = self._rollback_to
        self._rollback_to = None
        if seq not in self._entries:
            return
        self._squash_from(seq, now, penalty=ROLLBACK_RESTART)

    # ------------------------------------------------------------------ skip-ahead

    def _next_event(self, now: int, sb_event: Optional[int]) -> int:
        """Earliest future cycle at which this core can make progress.

        Tracks the minimum directly instead of building a candidate
        list; every real candidate is finite, so ``FAR_FUTURE`` doubles
        as the empty-set sentinel.
        """
        best = FAR_FUTURE if sb_event is None else sb_event
        completions = self._completions
        if completions:
            t = completions[0][0]
            if t < best:
                best = t
        entries = self._entries
        for seq in self._memq:
            entry = entries.get(seq)
            if entry is None:
                return now + 1
            t = entry.retry_at
            if t > now and t < best:
                best = t
            # retry_at <= now: consistency-blocked; it wakes with the
            # next completion, which is already among the candidates.
        if self._issue_wake == 1:
            return now + 1
        fbu = self._fetch_blocked_until
        if fbu != FAR_FUTURE and fbu < best and \
                len(self._window) < self._window_size:
            best = fbu
        if best == FAR_FUTURE:
            return now + 1 if self._window else FAR_FUTURE
        return best if best > now else now + 1
