"""Processor models: branch prediction, consistency implementations,
store buffer, and the unified in-order / out-of-order core."""

from repro.cpu.bpred import BranchPredictor
from repro.cpu.consistency import ConsistencyUnit
from repro.cpu.storebuffer import StoreBuffer
from repro.cpu.core import ProcessorCore

__all__ = ["BranchPredictor", "ConsistencyUnit", "StoreBuffer",
           "ProcessorCore"]
