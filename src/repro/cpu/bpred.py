"""Branch prediction: hybrid PA/g predictor, BTB, and return-address stack.

Figure 1 of the paper: conditional branches use a hybrid predictor
combining PA(4K, 12, 1) (per-address, 4K-entry history table with 12-bit
local histories) and g(12, 12) (GShare-style global, 12-bit history) with a
choice table (Yeh & Patt [26]); computed jumps use a 512-entry 4-way BTB;
call/returns use a 32-element return-address stack.

The simulator is trace-driven so actual outcomes are known at prediction
time; the predictor still runs for real to produce realistic misprediction
rates (the paper reports a cumulative 11% for OLTP).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.params import BranchPredictorParams
from repro.trace.instr import BR_CALL, BR_COND, BR_JUMP, BR_RETURN


def _counter_update(counter: int, taken: bool) -> int:
    """Saturating 2-bit counter."""
    if taken:
        return min(3, counter + 1)
    return max(0, counter - 1)


class BranchPredictor:
    """Hybrid PA/g + BTB + RAS.  ``observe`` predicts, trains, and reports
    whether the (known) outcome was mispredicted."""

    def __init__(self, params: BranchPredictorParams):
        self.params = params
        p = params
        self._pa_hist: List[int] = [0] * p.pa_table_entries
        self._pa_mask = (1 << p.pa_history_bits) - 1
        self._pa_pht: List[int] = [2] * (1 << p.pa_history_bits)
        self._g_hist = 0
        self._g_mask = (1 << p.global_history_bits) - 1
        self._g_pht: List[int] = [2] * (1 << p.global_history_bits)
        self._choice: List[int] = [2] * p.choice_entries
        self._btb: "OrderedDict[int, int]" = OrderedDict()
        self._ras: List[int] = []
        self.predictions = 0
        self.mispredictions = 0

    # -- conditional direction ------------------------------------------------

    def _predict_cond(self, pc: int, taken: bool) -> bool:
        """Returns True if the direction was predicted correctly."""
        p = self.params
        pa_index = (pc >> 2) % p.pa_table_entries
        hist = self._pa_hist[pa_index]
        pa_pred = self._pa_pht[hist] >= 2
        g_index = (self._g_hist ^ (pc >> 2)) & self._g_mask
        g_pred = self._g_pht[g_index] >= 2
        choice_index = (pc >> 2) % p.choice_entries
        use_pa = self._choice[choice_index] >= 2
        prediction = pa_pred if use_pa else g_pred

        # Train.
        self._pa_pht[hist] = _counter_update(self._pa_pht[hist], taken)
        self._pa_hist[pa_index] = ((hist << 1) | taken) & self._pa_mask
        self._g_pht[g_index] = _counter_update(self._g_pht[g_index], taken)
        self._g_hist = ((self._g_hist << 1) | taken) & self._g_mask
        if pa_pred != g_pred:
            self._choice[choice_index] = _counter_update(
                self._choice[choice_index], pa_pred == taken)
        return prediction == taken

    # -- BTB / RAS ---------------------------------------------------------------

    def _btb_lookup_update(self, pc: int, target: int) -> bool:
        """4-way pseudo-LRU BTB modelled as a bounded LRU map."""
        hit = self._btb.get(pc)
        correct = hit == target
        self._btb[pc] = target
        self._btb.move_to_end(pc)
        if len(self._btb) > self.params.btb_entries:
            self._btb.popitem(last=False)
        return correct

    # -- public API -----------------------------------------------------------------

    def observe(self, pc: int, kind: int, taken: bool, target: int) -> bool:
        """Process one branch; returns True if it was MISpredicted."""
        self.predictions += 1
        if self.params.perfect:
            return False
        if kind == BR_COND:
            correct = self._predict_cond(pc, taken)
            # Taken conditionals also need the target; direct targets are
            # available at decode, so direction decides correctness.
        elif kind == BR_JUMP:
            correct = self._btb_lookup_update(pc, target)
        elif kind == BR_CALL:
            correct = self._btb_lookup_update(pc, target)
            self._ras.append(pc + 4)
            if len(self._ras) > self.params.ras_entries:
                self._ras.pop(0)
        else:  # BR_RETURN
            predicted = self._ras.pop() if self._ras else -1
            correct = predicted == target
        if not correct:
            self.mispredictions += 1
        return not correct

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"pa_hist": list(self._pa_hist),
                "pa_pht": list(self._pa_pht),
                "g_hist": self._g_hist,
                "g_pht": list(self._g_pht),
                "choice": list(self._choice),
                "btb": OrderedDict(self._btb),
                "ras": list(self._ras),
                "predictions": self.predictions,
                "mispredictions": self.mispredictions}

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._pa_hist = list(state["pa_hist"])
        self._pa_pht = list(state["pa_pht"])
        self._g_hist = state["g_hist"]
        self._g_pht = list(state["g_pht"])
        self._choice = list(state["choice"])
        self._btb = OrderedDict(state["btb"])
        self._ras = list(state["ras"])
        self.predictions = state["predictions"]
        self.mispredictions = state["mispredictions"]
