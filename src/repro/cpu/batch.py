"""Round planner for the batch execution backend.

``Machine._run_batch`` extends the certified-skip loop with *rounds*:
spans of cycles over which a set of cores (the *span*) is ticked densely
with per-round batched statistics and no per-cycle next-event or
certification bookkeeping.  This module decides when a round is worth
attempting and how long it may run.

A core joins a span when everything it can touch during the round
classifies as *hot* against a read-only mirror of its node's tag state
(:meth:`~repro.mem.memsys.NodeMemorySystem.hot_tag_state`):

* every instruction already in its window is a plain INT/FP/LOAD/STORE/
  BRANCH op, loads that have not yet reached the memory stage and all
  stores target TLB-resident pages with known frames and L1D-resident
  (for stores: writable) lines, and the store buffer holds no barriers
  and no unissued non-hot stores;
* the next ``MAX_ROUND * issue_width`` upcoming instructions pass the
  same test, with each instruction's I-line resident in the L1I.  The
  scan is zero-copy and vectorized (numpy over the arena's
  struct-of-arrays views) when the stream is arena-backed, and falls
  back to a pure-python walk of the views, or -- for generator-backed
  streams -- to non-consuming :meth:`~repro.cpu.core.TraceBuffer.peek`
  lookahead.

The first non-hot instruction at relative index ``g`` caps the core's
round contribution at ``g // issue_width`` cycles (fetch brings in at
most ``issue_width`` instructions per cycle, so the obstacle stays
outside the pipeline for at least that long).  The round length is the
minimum cap over span cores, further limited by sleeping cores' wake
times and idle cpus' scheduler wakes so non-span cores cannot have any
event inside the round.

Classification is deliberately a *performance heuristic only*: in-round
execution uses the ordinary access paths, so a stale or wrong hot set
produces a real (faithfully simulated) miss which poisons the round --
never an incorrect result.  That is also why the mirror can be built
once per plan attempt without invalidation tracking.

Eligibility is restricted to configurations where dense ticking is
provably identical to the reference grid walk: release consistency
(loads are always performable, so queue re-polls at extra cycles are
traceless and speculative-load rollbacks cannot occur; the RC store
buffer never issues consistency prefetches), out-of-order issue, and no
SMT (per-cycle shared pipeline pools assume one tick per core per
cycle).

numpy is optional here and forbidden everywhere else in the simulator
(lint rule R009): the reference path stays dependency-free, and without
numpy this module degrades to the pure-python scans.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is baked into CI images
    np = None

from repro.cpu.core import ST_MEMACC, ProcessorCore
from repro.params import ConsistencyModel, SystemParams
from repro.trace.arena import ArenaStream
from repro.trace.instr import OP_BRANCH, OP_LOAD, OP_STORE

#: Hard cap on round length, in cycles.  Also sizes the lookahead scan
#: (``MAX_ROUND * issue_width`` instructions).
MAX_ROUND = 64

#: Rounds shorter than this are not worth the planning scan.
MIN_ROUND = 8

#: Cycles to wait before re-planning after a failed attempt or a
#: poisoned round (the obstacle usually needs a few grid steps to clear).
PLAN_BACKOFF = 24


def make_planner(machine) -> Optional["BatchPlanner"]:
    """A planner for ``machine``, or ``None`` when the configuration is
    outside the dense-ticking identity envelope (see module docstring)."""
    params: SystemParams = machine.params
    if params.consistency is not ConsistencyModel.RC:
        return None
    if not params.processor.out_of_order:
        return None
    if params.processor.smt_contexts > 1:
        return None
    for core in machine.cores:
        if type(core) is not ProcessorCore:
            return None
    return BatchPlanner(machine)


class BatchPlanner:
    """Plans dense rounds for one machine (see module docstring)."""

    def __init__(self, machine):
        self.cores: List[Tuple[int, object]] = list(enumerate(machine.cores))
        params: SystemParams = machine.params
        self.width = params.processor.issue_width
        self.depth = MAX_ROUND * self.width
        self.page_shift = machine.page_table.page_shift
        self.line_shift = machine.nodes[0].line_shift
        self.lpp = params.page_size >> self.line_shift
        self.perfect_icache = params.perfect_icache
        self.perfect_dcache = params.perfect_dcache

    # -- planning ----------------------------------------------------------

    def plan(self, now: int, wake, quiet, sched_wake, limit: int):
        """A ``(round_end, span)`` pair, or ``None``.

        ``span`` is the list of ``(cpu, core)`` to dense-tick for every
        cycle in ``[now, round_end]``; callers guarantee no other core
        has an event in that window.  ``wake``/``quiet``/``sched_wake``
        are the fast loop's per-cpu event state; ``limit`` caps the
        length (the machine uses it to keep the instruction target
        outside the round).
        """
        span = []
        length = limit if limit < MAX_ROUND else MAX_ROUND
        for cpu, core in self.cores:
            if core.process is None:
                w = sched_wake[cpu]
                if w is not None:
                    gap = w - now
                    if gap <= 0:
                        return None  # a seat is due right now
                    if gap < length:
                        length = gap
                continue
            if core.syscall_retired or core._rollback_to is not None:
                return None
            asleep = quiet[cpu] and wake[cpu] > now
            if asleep and wake[cpu] - now >= MIN_ROUND:
                # Deep sleeper: skipping it is already free; just keep
                # the round clear of its certified wake.
                gap = wake[cpu] - now
                if gap < length:
                    length = gap
                continue
            cap = self._classify(core)
            if cap >= MIN_ROUND:
                if cap < length:
                    length = cap
                span.append((cpu, core))
            elif asleep:
                gap = wake[cpu] - now
                if gap < length:
                    length = gap
            else:
                return None  # an awake core is about to leave the hot path
            if length < MIN_ROUND:
                return None
        if not span or length < MIN_ROUND:
            return None
        return now + length - 1, span

    def _classify(self, core) -> int:
        """Hot-run length of ``core`` in cycles (0: not clean at all)."""
        hot = core.memsys.hot_tag_state()
        if not self._entries_clean(core, hot):
            return 0
        return self._scan_ahead(core, hot) // self.width

    # -- hot predicates ----------------------------------------------------

    def _data_hot(self, addr: int, hot: dict, is_store: bool) -> bool:
        """Would a data access to ``addr`` hit without any table refill?

        Requires a resident TLB entry and an already-allocated frame
        even under a perfect D-cache: translation happens first on the
        real path, and the planner must never pre-walk the page table
        (``frame_of`` allocates on first touch).
        """
        vpage = addr >> self.page_shift
        dpages = hot["dpages"]
        if dpages is not None and vpage not in dpages:
            return False
        frame = hot["frames"].get(vpage)
        if frame is None:
            return False
        if self.perfect_dcache:
            return True
        line = frame * self.lpp + ((addr >> self.line_shift) &
                                   (self.lpp - 1))
        if line not in hot["l1d"]:
            return False
        return not is_store or line in hot["writable"]

    def _instr_hot(self, pc: int, hot: dict) -> bool:
        """L1I residency of ``pc``'s line (not called when the I-cache
        is perfect: that path returns before translating)."""
        vpage = pc >> self.page_shift
        ipages = hot["ipages"]
        if ipages is not None and vpage not in ipages:
            return False
        frame = hot["frames"].get(vpage)
        if frame is None:
            return False
        line = frame * self.lpp + ((pc >> self.line_shift) &
                                   (self.lpp - 1))
        return line in hot["l1i"]

    def _entries_clean(self, core, hot: dict) -> bool:
        """Nothing already in flight can leave the hot path: no barrier
        or unissued non-hot store in the store buffer, no op beyond
        BRANCH in the window, and every load still headed for the memory
        stage (and every store, which performs from the store buffer
        after retiring) targets a hot line."""
        for buffered in core.storebuf._entries:
            if buffered.is_barrier:
                return False
            if not buffered.issued and \
                    not self._data_hot(buffered.addr, hot, True):
                return False
        for entry in core._window:
            ins = entry.instr
            op = ins.op
            if op > OP_BRANCH:
                return False
            if op == OP_LOAD:
                if entry.state < ST_MEMACC and \
                        not self._data_hot(ins.addr, hot, False):
                    return False
            elif op == OP_STORE:
                if not self._data_hot(ins.addr, hot, True):
                    return False
        return True

    # -- lookahead scans ---------------------------------------------------

    def _scan_ahead(self, core, hot: dict) -> int:
        """Relative index of the first upcoming non-hot instruction
        (capped at ``self.depth``), counting from the fetch point."""
        trace = core._trace
        seq = core._next_seq
        source = trace._source
        if isinstance(source, ArenaStream):
            i0 = source.base + seq
            i1 = i0 + self.depth
            if i1 > source.end:
                i1 = source.end
            if i1 <= i0:
                return 0
            if np is not None:
                return self._scan_views_np(source.arena, i0, i1, hot)
            return self._scan_views_py(source.arena, i0, i1, hot)
        return self._scan_peek(trace, seq, hot)

    def _scan_peek(self, trace, seq: int, hot: dict) -> int:
        """Generator-backed fallback: non-consuming peek lookahead."""
        for k in range(self.depth):
            ins = trace.peek(seq + k)
            if ins is None:
                return k  # stream ends: the exhaustion raise is an event
            op = ins.op
            if op > OP_BRANCH:
                return k
            if not self.perfect_icache and not self._instr_hot(ins.pc, hot):
                return k
            if op == OP_LOAD:
                if not self._data_hot(ins.addr, hot, False):
                    return k
            elif op == OP_STORE:
                if not self._data_hot(ins.addr, hot, True):
                    return k
        return self.depth

    def _scan_views_py(self, arena, i0: int, i1: int, hot: dict) -> int:
        """Arena-backed scan without numpy: walk the raw views."""
        ops = arena._op
        pcs = arena._pc
        addrs = arena._addr
        for k in range(i1 - i0):
            i = i0 + k
            op = ops[i]
            if op > OP_BRANCH:
                return k
            if not self.perfect_icache and not self._instr_hot(pcs[i], hot):
                return k
            if op == OP_LOAD:
                if not self._data_hot(addrs[i], hot, False):
                    return k
            elif op == OP_STORE:
                if not self._data_hot(addrs[i], hot, True):
                    return k
        return i1 - i0

    def _scan_views_np(self, arena, i0: int, i1: int, hot: dict) -> int:
        """Vectorized arena scan: struct-of-arrays slices straight off
        the mapped file, hot-set membership via ``np.isin``."""
        ops = np.frombuffer(arena._op, dtype=np.uint8)[i0:i1]
        bad = ops > OP_BRANCH
        if not self.perfect_icache:
            pcs = np.frombuffer(arena._pc, dtype=np.uint64)[i0:i1]
            bad |= ~self._lines_hot_np(pcs, hot["ipages"], hot["l1i"],
                                       None, hot)[0]
        loads = ops == OP_LOAD
        stores = ops == OP_STORE
        if loads.any() or stores.any():
            addrs = np.frombuffer(arena._addr, dtype=np.uint64)[i0:i1]
            load_ok, store_ok = self._lines_hot_np(
                addrs, hot["dpages"], hot["l1d"], hot["writable"], hot)
            bad |= loads & ~load_ok
            bad |= stores & ~store_ok
        first = np.flatnonzero(bad)
        if first.size:
            return int(first[0])
        return i1 - i0

    def _lines_hot_np(self, vaddrs, pages, resident, writable, hot):
        """(hot, hot-and-writable) masks for a u64 address vector.

        Page translation goes through python once per *unique* page
        (dict lookups against the live page table), then broadcasts;
        line membership is one ``np.isin`` against the mirrored set.
        ``writable=None`` skips the second mask (instruction side).
        """
        shift = np.uint64(self.page_shift)
        uniq, inv = np.unique(vaddrs >> shift, return_inverse=True)
        n = uniq.shape[0]
        frames_u = np.zeros(n, dtype=np.int64)
        ok_u = np.zeros(n, dtype=bool)
        get = hot["frames"].get
        for j in range(n):
            vpage = int(uniq[j])
            if pages is not None and vpage not in pages:
                continue
            frame = get(vpage)
            if frame is None:
                continue
            frames_u[j] = frame
            ok_u[j] = True
        ok = ok_u[inv]
        if writable is not None and self.perfect_dcache:
            return ok, ok
        offsets = ((vaddrs >> np.uint64(self.line_shift)) &
                   np.uint64(self.lpp - 1)).astype(np.int64)
        lines = frames_u[inv] * self.lpp + offsets
        hot_mask = ok & np.isin(lines, _as_array(resident))
        if writable is None:
            return hot_mask, hot_mask
        return hot_mask, hot_mask & np.isin(lines, _as_array(writable))


def _as_array(lines: set):
    """A set of line numbers as an int64 array (np.isin operand)."""
    if not lines:
        return np.empty(0, dtype=np.int64)
    return np.fromiter(lines, dtype=np.int64, count=len(lines))
