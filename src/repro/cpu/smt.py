"""Simultaneous multithreading (SMT) extension (paper section 5).

The paper contrasts its intra-thread ILP results with Lo et al. [13],
who ran the same workloads on a simultaneous multithreaded processor and
found large gains for OLTP (up to 3x) because multiple hardware contexts
hide the memory stalls that defeat single-thread ILP.

:class:`SmtCore` realizes that design point on top of this simulator:
``n`` hardware contexts, each a :class:`~repro.cpu.core.ProcessorCore`
with a statically partitioned instruction window, sharing one node
memory system and per-cycle fetch/issue/retire bandwidth and functional
units through a :class:`SharedPipeline`.

The benchmark ``bench_smt.py`` reproduces the comparison: SMT helps OLTP
far more than DSS, because OLTP's stalls leave the shared pipeline idle
for other contexts to use.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.cpu.core import FAR_FUTURE, ProcessorCore
from repro.mem.memsys import NodeMemorySystem
from repro.params import SystemParams
from repro.stats.breakdown import ExecutionBreakdown


class SharedPipeline:
    """Per-cycle execution bandwidth shared by all contexts of one core.

    Budgets are replenished at the first consumption of each new cycle;
    contexts draw fetch slots, issue slots, functional units, and retire
    slots from the same pools, so a stalled context's bandwidth is
    available to the others -- the essence of SMT.
    """

    def __init__(self, params: SystemParams):
        proc = params.processor
        self._issue_width = proc.issue_width
        self._fus = [proc.int_alus, proc.fp_alus, proc.addr_gen_units]
        self._infinite = proc.infinite_functional_units
        self.cycle = -1
        self.fetch_slots = 0
        self.issue_slots = 0
        self.retire_slots = 0
        self.fu = [0, 0, 0]

    def refresh(self, now: int) -> None:
        if self.cycle == now:
            return
        self.cycle = now
        self.fetch_slots = self._issue_width
        self.issue_slots = self._issue_width
        self.retire_slots = self._issue_width
        big = 1 << 30
        self.fu = [big] * 3 if self._infinite else list(self._fus)

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"cycle": self.cycle,
                "fetch_slots": self.fetch_slots,
                "issue_slots": self.issue_slots,
                "retire_slots": self.retire_slots,
                "fu": list(self.fu)}

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self.cycle = state["cycle"]
        self.fetch_slots = state["fetch_slots"]
        self.issue_slots = state["issue_slots"]
        self.retire_slots = state["retire_slots"]
        self.fu = list(state["fu"])


class SmtCore:
    """``n`` hardware contexts multiplexed over one pipeline.

    Presents the same interface to :class:`~repro.system.machine.Machine`
    as a single :class:`ProcessorCore`, plus multi-context process
    management (``free_slots`` / ``blocked_processes``).
    """

    def __init__(self, cpu_id: int, params: SystemParams,
                 memsys: NodeMemorySystem, lock_table: dict):
        self.cpu_id = cpu_id
        self.params = params
        self.memsys = memsys
        n = params.processor.smt_contexts
        per_context = max(
            params.processor.issue_width,
            params.processor.window_size // n)
        context_params = params.replace(
            processor=dataclasses.replace(params.processor,
                                          window_size=per_context))
        self.shared = SharedPipeline(params)
        self.contexts: List[ProcessorCore] = []
        for i in range(n):
            core = ProcessorCore(cpu_id, context_params, memsys,
                                 lock_table)
            core.shared = self.shared
            self.contexts.append(core)
        # Coherence violation hook must fan out to every context.
        memsys.violation_hook = self._on_line_removed

    # -- aggregate accessors (Machine interface) ---------------------------

    @property
    def retired(self) -> int:
        return sum(ctx.retired for ctx in self.contexts)

    @property
    def stats(self) -> ExecutionBreakdown:
        return ExecutionBreakdown.merged(ctx.stats for ctx in self.contexts)

    @property
    def bpred(self):
        return self.contexts[0].bpred

    @property
    def process(self):
        """Non-None if any context is occupied (Machine idle check)."""
        for ctx in self.contexts:
            if ctx.process is not None:
                return ctx.process
        return None

    @property
    def syscall_retired(self) -> bool:
        return any(ctx.syscall_retired for ctx in self.contexts)

    def free_slots(self) -> int:
        return sum(1 for ctx in self.contexts if ctx.process is None)

    def assign_process(self, process, now: int, switch_cost: int = 0
                       ) -> None:
        for ctx in self.contexts:
            if ctx.process is None:
                ctx.assign_process(process, now, switch_cost)
                return
        raise RuntimeError("no free SMT context")

    def blocked_processes(self, now: int):
        """Preempt and return every context that retired a syscall."""
        out = []
        for ctx in self.contexts:
            if ctx.syscall_retired:
                ctx.syscall_retired = False
                process = ctx.preempt(now)
                if process is not None:
                    out.append(process)
        return out

    def preempt(self, now: int):
        """Machine compatibility: preempt the first occupied context."""
        for ctx in self.contexts:
            if ctx.process is not None:
                return ctx.preempt(now)
        return None

    # -- execution ----------------------------------------------------------

    def tick(self, now: int) -> int:
        self.shared.refresh(now)
        next_event = FAR_FUTURE
        for ctx in self.contexts:
            t = ctx.tick(now)
            if t < next_event:
                next_event = t
        return next_event

    # True iff every context's most recent tick_fast() was a no-op, in
    # which case the whole-core tick only refreshed the (unconsumed)
    # shared pools -- which settle() reproduces at the skipped-to cycle.
    tick_quiet = False

    def tick_fast(self, now: int) -> int:
        self.shared.refresh(now)
        next_event = FAR_FUTURE
        quiet = True
        for ctx in self.contexts:
            t = ctx.tick_fast(now)
            if t < next_event:
                next_event = t
            if not ctx.tick_quiet:
                quiet = False
        self.tick_quiet = quiet
        return next_event

    def settle(self, now: int) -> None:
        """Bring a skipped core's accounting and shared-pool state up to
        ``now`` (see ProcessorCore.settle).  Quiet contexts consume no
        shared bandwidth, so refreshing the pools at ``now`` reproduces
        the reference backend's end-of-run pipeline state exactly."""
        self.shared.refresh(now)
        for ctx in self.contexts:
            ctx.settle(now)

    def apply_pending_rollback(self, now: int) -> None:
        for ctx in self.contexts:
            ctx.apply_pending_rollback(now)

    @property
    def _rollback_to(self):
        for ctx in self.contexts:
            if ctx._rollback_to is not None:
                return ctx._rollback_to
        return None

    def _on_line_removed(self, line: int) -> None:
        for ctx in self.contexts:
            ctx._on_line_removed(line)

    def physical_cores(self):
        return list(self.contexts)

    def reset_stats(self) -> None:
        for ctx in self.contexts:
            ctx.stats.reset()

    # -- checkpointing -------------------------------------------------------

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing: the shared pipeline
        pools plus every context (all through one machine-wide memo)."""
        if memo is None:
            memo = {}
        return {"shared": self.shared.snapshot(memo),
                "contexts": [ctx.snapshot(memo) for ctx in self.contexts]}

    def restore(self, state: dict, processes_by_pid: dict) -> None:
        """Install state captured by :meth:`snapshot` onto a freshly
        constructed SMT core."""
        self.shared.restore(state["shared"])
        for ctx, sub in zip(self.contexts, state["contexts"]):
            ctx.restore(sub, processes_by_pid)
