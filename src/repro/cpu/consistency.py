"""Memory consistency model implementations (paper section 3.4).

Three models:

* **SC** (sequential consistency): memory operations perform one at a
  time in program order; stores block retirement until globally performed.
* **PC** (processor consistency): loads perform in order with respect to
  loads; stores drain in order through a FIFO store buffer and may retire
  before performing.
* **RC** (release consistency / Alpha): loads perform as soon as their
  address is ready; stores drain from the buffer with overlap; only MB and
  WMB fences impose order.

Three implementations per model, cumulative:

* **straightforward** -- operations wait until the model allows them.
* **prefetch** -- hardware prefetch from the instruction window
  (Gharachorloo et al. [7]): operations blocked by consistency constraints
  issue non-binding prefetches (exclusive for stores) so they hit in the
  cache once allowed to perform.
* **speculative** -- speculative load execution: loads perform and their
  values are consumed regardless of constraints; coherence invalidations
  and cache replacements of speculatively-read lines before the load
  *retires* force a rollback, as in the MIPS R10000 / Pentium Pro.

The unit tracks in-window memory operations in program order and answers
"may this operation perform now?"; the core owns issue/retire mechanics.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.params import ConsistencyImpl, ConsistencyModel


class ConsistencyUnit:
    """Ordering logic + speculative-load violation tracking for one core.

    Ordering queries reduce to "is there an incomplete memory op (or
    load) older than seq?", answered in O(log n) from lazy min-heaps of
    incomplete seqs -- these queries run for every queued memory op every
    active cycle, so they must be cheap.
    """

    def __init__(self, model: ConsistencyModel, impl: ConsistencyImpl):
        self.model = model
        self.impl = impl
        self._incomplete_mem: Set[int] = set()
        self._incomplete_loads: Set[int] = set()
        self._mem_heap: List[int] = []
        self._load_heap: List[int] = []
        # Speculatively performed loads, by line, until they retire.
        self._spec_by_line: Dict[int, Set[int]] = {}
        self._spec_lines_by_seq: Dict[int, int] = {}
        self.rollbacks = 0
        self.prefetches = 0

    # -- bookkeeping ---------------------------------------------------------

    def reset(self) -> None:
        self._incomplete_mem.clear()
        self._incomplete_loads.clear()
        self._mem_heap.clear()
        self._load_heap.clear()
        self._spec_by_line.clear()
        self._spec_lines_by_seq.clear()

    def note_dispatch(self, seq: int, is_load: bool) -> None:
        self._incomplete_mem.add(seq)
        heapq.heappush(self._mem_heap, seq)
        if is_load:
            self._incomplete_loads.add(seq)
            heapq.heappush(self._load_heap, seq)

    def note_complete(self, seq: int) -> None:
        self._incomplete_mem.discard(seq)
        self._incomplete_loads.discard(seq)

    def note_removed(self, seq: int) -> None:
        """Operation left the window (retired or squashed)."""
        self._incomplete_mem.discard(seq)
        self._incomplete_loads.discard(seq)
        line = self._spec_lines_by_seq.pop(seq, None)
        if line is not None:
            group = self._spec_by_line.get(line)
            if group is not None:
                group.discard(seq)
                if not group:
                    del self._spec_by_line[line]

    # -- ordering decisions ------------------------------------------------------

    @staticmethod
    def _oldest(heap: List[int], live: Set[int]) -> Optional[int]:
        while heap and heap[0] not in live:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _no_older_incomplete_mem(self, seq: int) -> bool:
        oldest = self._oldest(self._mem_heap, self._incomplete_mem)
        return oldest is None or oldest >= seq

    def _no_older_incomplete_load(self, seq: int) -> bool:
        oldest = self._oldest(self._load_heap, self._incomplete_loads)
        return oldest is None or oldest >= seq

    def may_perform_load(self, seq: int) -> bool:
        if self.model is ConsistencyModel.RC:
            return True
        if self.impl is ConsistencyImpl.SPECULATIVE:
            return True  # speculative execution; violations roll back
        if self.model is ConsistencyModel.SC:
            return self._no_older_incomplete_mem(seq)
        # PC: ordered among loads only.
        return self._no_older_incomplete_load(seq)

    def load_is_speculative(self, seq: int) -> bool:
        """Whether a load performing *now* is ahead of the straightforward
        ordering point (and must be tracked for violations)."""
        if self.model is ConsistencyModel.RC:
            return False
        if self.impl is not ConsistencyImpl.SPECULATIVE:
            return False
        if self.model is ConsistencyModel.SC:
            return not self._no_older_incomplete_mem(seq)
        return not self._no_older_incomplete_load(seq)

    def may_perform_store(self, seq: int) -> bool:
        """Whether an in-window store may perform (SC only -- PC and RC
        stores perform from the post-retirement store buffer)."""
        if self.model is not ConsistencyModel.SC:
            return True
        return self._no_older_incomplete_mem(seq)

    @property
    def store_blocks_retire(self) -> bool:
        """SC stores must be globally performed before retiring."""
        return self.model is ConsistencyModel.SC

    @property
    def store_buffer_overlap(self) -> int:
        """How many buffered stores may be outstanding simultaneously."""
        return 8 if self.model is ConsistencyModel.RC else 1

    @property
    def wants_prefetch(self) -> bool:
        return self.impl is not ConsistencyImpl.STRAIGHTFORWARD

    # -- speculative-load violation tracking -----------------------------------

    def note_speculative_load(self, seq: int, line: int) -> None:
        self._spec_by_line.setdefault(line, set()).add(seq)
        self._spec_lines_by_seq[seq] = line

    def check_violation(self, line: int) -> Optional[int]:
        """An invalidation/replacement hit ``line``; returns the oldest
        speculative load seq that must roll back, or ``None``."""
        group = self._spec_by_line.get(line)
        if not group:
            return None
        self.rollbacks += 1
        return min(group)

    # -- checkpointing ----------------------------------------------------------

    def snapshot(self, memo=None) -> dict:
        """Mutable state for mid-run checkpointing (repro.run.checkpoint)."""
        return {"incomplete_mem": set(self._incomplete_mem),
                "incomplete_loads": set(self._incomplete_loads),
                "mem_heap": list(self._mem_heap),
                "load_heap": list(self._load_heap),
                "spec_by_line": {line: set(group) for line, group
                                 in self._spec_by_line.items()},
                "spec_lines_by_seq": dict(self._spec_lines_by_seq),
                "rollbacks": self.rollbacks,
                "prefetches": self.prefetches}

    def restore(self, state: dict) -> None:
        """Install state captured by :meth:`snapshot`."""
        self._incomplete_mem = set(state["incomplete_mem"])
        self._incomplete_loads = set(state["incomplete_loads"])
        self._mem_heap = list(state["mem_heap"])
        self._load_heap = list(state["load_heap"])
        self._spec_by_line = {line: set(group) for line, group
                              in state["spec_by_line"].items()}
        self._spec_lines_by_seq = dict(state["spec_lines_by_seq"])
        self.rollbacks = state["rollbacks"]
        self.prefetches = state["prefetches"]
