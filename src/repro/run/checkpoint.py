"""Mid-simulation checkpoint/restore for experiment jobs.

Long sweep cells can run for minutes; a crash (host fault, OOM kill,
injected ``REPRO_FAULTS`` crash) previously threw away the whole
attempt.  This module checkpoints a running :class:`~repro.system
.machine.Machine` every ``checkpoint_every`` retired instructions and
resumes the next attempt from the newest valid checkpoint, so retries
repeat only the tail of the work.

Correctness bar: a resumed run must be **byte-identical** to an
uninterrupted one.  Three properties make that hold:

* ``Machine.run`` checks its retirement target at the top of each cycle
  iteration, so splitting one run into chunks with absolute targets
  replays exactly the same iteration sequence (including the same
  overshoot at phase ends).
* ``Machine.snapshot()`` deep-copies all mutable state through one
  machine-wide memo, preserving every identity relationship (window
  entries shared across heaps, instructions shared between trace
  buffers and window entries); ``Machine.restore()`` installs it onto a
  freshly constructed machine.
* Trace positions are recorded as per-process *consumed counts*.  On
  restore the generator path re-seeks a fresh stream by discarding that
  prefix; the arena path seeks in O(1) via ``TraceArena.replay(pid,
  skip)``.  Consumed counts are identical on both paths, so a
  checkpoint written against an arena remains valid for a generator
  re-run (and vice versa).

Checkpoints live under ``<cache>/checkpoints/<fingerprint>/`` as
``ck-<retired>.ckpt`` files in the standard framed format
(:func:`repro.run.atomicio.write_framed`: magic, sha256 digest, pickled
payload).  Writes go through :mod:`repro.run.atomicio` (atomic,
fault-injected) and are best-effort; a corrupt checkpoint is
quarantined and the loader falls back to the previous one, then to a
cold start.  Checkpoints are cleared once the job completes (the
result cache takes over).

Checkpointing declines configurations it cannot reproduce exactly:
runs with the invariant checker attached (``params.check`` wraps
components in closures a snapshot cannot capture) and arena-recording
runs (the recorder tees streams into Python lists as they are pulled).
Those simply run monolithically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from collections import deque
from itertools import islice
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.experiment import SimulationResult, assemble_result
from repro.params import SystemParams
from repro.run import atomicio, triage
from repro.run.cache import time_now
from repro.run.faults import FaultPlan
from repro.run.jobs import MODEL_VERSION, JobSpec
from repro.system.machine import Machine
from repro.trace.arena import ArenaError, TraceArena, _RecordingWorkload

#: On-disk checkpoint file format version.
CHECKPOINT_FORMAT = 1

MAGIC = b"RPCKPT01"

#: Default checkpoint interval (total retired instructions, warmup
#: included).  Paper-scale jobs (80k+40k) write one mid-run checkpoint;
#: quick tests write none.  A write costs one snapshot + pickle
#: (~0.1s), so the interval is sized to keep overhead well under the 5%
#: budget asserted in ``bench_runner_scaling``.
DEFAULT_CHECKPOINT_EVERY = 100_000

#: Environment override for the checkpoint interval (0 disables).
CHECKPOINT_EVERY_ENV = "REPRO_CHECKPOINT_EVERY"

#: Subdirectory of the result cache holding per-job checkpoint dirs.
CHECKPOINT_DIR = "checkpoints"

#: Subdirectory (inside one job's checkpoint dir) for corrupt files.
QUARANTINE_DIR = "quarantine"


class CorruptCheckpoint(ValueError):
    """A checkpoint file failed magic, checksum or format validation."""


def job_checkpoint_dirs(cache_dir: Union[str, Path]) -> List[Path]:
    """Every per-job checkpoint directory under ``cache_dir``, sorted.

    Directory names are full 64-hex job fingerprints (anything else --
    stray files, quarantine debris promoted by hand -- is ignored), so
    ``repro gc`` can match them against the sweep manifest for pinning.
    """
    root = Path(cache_dir) / CHECKPOINT_DIR
    if not root.is_dir():
        return []
    return sorted(
        entry for entry in root.iterdir()
        if entry.is_dir() and len(entry.name) == 64
        and all(c in "0123456789abcdef" for c in entry.name))


def checkpoint_every_from_env(
        default: int = DEFAULT_CHECKPOINT_EVERY) -> int:
    """The checkpoint interval from ``REPRO_CHECKPOINT_EVERY``.

    Unset or unparseable values fall back to ``default``; negative
    values clamp to 0 (disabled).
    """
    raw = os.environ.get(CHECKPOINT_EVERY_ENV, "")
    if not raw.strip():
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring unparseable {CHECKPOINT_EVERY_ENV}={raw!r}",
            RuntimeWarning, stacklevel=2)
        return default


# -------------------------------------------------------------------- store

class CheckpointStore:
    """Checksummed checkpoint files of one job, newest-wins.

    One directory per job fingerprint; files are named by their total
    retired-instruction count so a lexical sort is a numeric sort.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.writes = 0
        self.write_errors = 0
        self.quarantined = 0
        self._swept_orphans = False

    @classmethod
    def for_job(cls, cache_dir: Union[str, Path],
                fingerprint: str) -> "CheckpointStore":
        return cls(Path(cache_dir) / CHECKPOINT_DIR / fingerprint)

    def _path(self, retired: int) -> Path:
        return self.directory / f"ck-{retired:012d}.ckpt"

    def checkpoint_files(self) -> List[Path]:
        """All checkpoint files, oldest first."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("ck-*.ckpt"))

    def save(self, payload: Dict[str, Any]) -> Optional[Path]:
        """Atomically persist one checkpoint payload (best-effort).

        On the first save of this store, stale orphaned ``*.tmp`` files
        left in the job's directory by killed writers are swept.
        """
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        target = self._path(int(payload["retired"]))
        if not self._swept_orphans:
            self._swept_orphans = True
            atomicio.sweep_orphans(self.directory)
        if not atomicio.write_framed(target, MAGIC, blob,
                                     category="checkpoint"):
            self.write_errors += 1
            warnings.warn(
                f"checkpoint write failed at {payload['retired']} retired"
                f"; continuing without it", RuntimeWarning, stacklevel=2)
            return None
        self.writes += 1
        return target

    @staticmethod
    def load_file(path: Union[str, Path]) -> Dict[str, Any]:
        """Validate and decode one checkpoint file.

        Raises :class:`CorruptCheckpoint` on any defect and ``OSError``
        when the file cannot be read at all.
        """
        try:
            blob = atomicio.read_framed(path, MAGIC)
        except atomicio.FramedReadError as exc:
            raise CorruptCheckpoint(str(exc)) from exc
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise CorruptCheckpoint(f"unpicklable payload: {exc}") from exc
        if not isinstance(payload, dict):
            raise CorruptCheckpoint("payload is not a dict")
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CorruptCheckpoint(
                f"format {payload.get('format')!r} != {CHECKPOINT_FORMAT}")
        if payload.get("model_version") != MODEL_VERSION:
            raise CorruptCheckpoint(
                f"model version {payload.get('model_version')!r} != "
                f"{MODEL_VERSION} (stale checkpoint)")
        return payload

    def latest(self) -> Optional[Dict[str, Any]]:
        """The newest valid checkpoint payload, or ``None``.

        Corrupt files are quarantined and the loader falls back to the
        next-older checkpoint, then to ``None`` (cold start).
        """
        for path in reversed(self.checkpoint_files()):
            try:
                return self.load_file(path)
            except OSError:
                continue
            except CorruptCheckpoint as exc:
                self._quarantine(path, str(exc))
        return None

    def _quarantine(self, path: Path, reason: str) -> None:
        if atomicio.quarantine(
                path, reason, label="checkpoint",
                quarantine_dir=self.directory / QUARANTINE_DIR,
                stacklevel=4) is None:
            return
        self.quarantined += 1

    def clear(self) -> int:
        """Remove every checkpoint and temp file (job completed)."""
        removed = 0
        if not self.directory.is_dir():
            return 0
        for pattern in ("ck-*.ckpt", "*.tmp"):
            for entry in self.directory.glob(pattern):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        try:
            self.directory.rmdir()    # leaves dirs holding quarantine/
        except OSError:
            pass
        return removed


# ------------------------------------------------------------------- runner

def supports_checkpointing(params: SystemParams, workload: Any) -> bool:
    """Whether this configuration can be checkpointed exactly.

    The invariant checker (``params.check``) wraps components in
    closures a snapshot cannot capture, and the arena recorder tees
    streams into growing lists; both decline to the monolithic path.
    """
    if params.check:
        return False
    if isinstance(workload, _RecordingWorkload):
        return False
    return True


def _seek(source, skip: int) -> None:
    """Discard the first ``skip`` items of a fresh trace iterator."""
    deque(islice(source, skip), maxlen=0)


def _rebuild_machine(params: SystemParams, workload: Any, seed: int,
                     payload: Dict[str, Any]) -> Machine:
    """A machine resumed from ``payload``: fresh construction, restored
    state, trace streams re-positioned to the recorded consumed counts."""
    offsets = [int(n) for n in payload["trace_offsets"]]
    if isinstance(workload, TraceArena):
        generators = workload.generators(params.n_nodes, seed=seed,
                                         skips=offsets)
        machine = Machine(params, generators)
        machine.restore(payload["machine"])
    else:
        machine = Machine(params,
                          workload.generators(params.n_nodes, seed=seed))
        machine.restore(payload["machine"])
        for process, skip in zip(machine.processes, offsets):
            if skip:
                _seek(process.trace._source, skip)
    return machine


def run_job(params: SystemParams, workload: Any, instructions: int,
            warmup: int, seed: int = 0, *,
            store: Optional[CheckpointStore] = None,
            every: int = 0,
            faults: Optional[FaultPlan] = None,
            fingerprint: str = "",
            attempt: int = 0,
            spec: Optional[JobSpec] = None,
            triage_dir: Optional[Union[str, Path]] = None,
            ) -> Tuple[SimulationResult, Dict[str, Any]]:
    """``run_simulation`` with checkpoint/restore and crash triage.

    Returns ``(result, info)`` where ``info`` carries ``resumed_from``
    (total retired instructions restored from a checkpoint; 0 on a cold
    start) and ``ckpt_s`` (host seconds spent writing checkpoints --
    kept out of the result, which must stay byte-identical).

    With a ``store``, the run resumes from the newest valid checkpoint;
    with ``every > 0`` it also writes checkpoints at every interval
    boundary (total retired instructions, warmup included) and clears
    them on success.  On failure, a self-contained triage bundle is
    written under ``triage_dir`` when one is configured, and the bundle
    path is attached to the exception as ``__triage_bundle__``.
    """
    info: Dict[str, Any] = {"ckpt_s": 0.0, "resumed_from": 0}
    enabled = store is not None and supports_checkpointing(params,
                                                           workload)
    writing = enabled and every > 0
    machine: Optional[Machine] = None
    warmed = False
    measure_target = 0
    if enabled:
        payload = store.latest()
        if payload is not None and payload.get("seed") == seed:
            # ArenaError here (arena too short for the recorded offsets)
            # propagates: the caller retries on the generator path and
            # the checkpoint, which is path-independent, still applies.
            machine = _rebuild_machine(params, workload, seed, payload)
            warmed = bool(payload["warmed"])
            measure_target = int(payload["measure_target"] or 0)
            info["resumed_from"] = int(payload["retired"])
    if machine is None:
        machine = Machine(params,
                          workload.generators(params.n_nodes, seed=seed))

    def advance(target: int, warmed_now: bool, measure_now: int) -> None:
        total = machine.total_retired()
        while total < target:
            if writing:
                boundary = (total // every + 1) * every
                stop = min(boundary, target)
            else:
                stop = target
            machine.run(stop - total)
            total = machine.total_retired()
            if writing and stop < target:
                started = time_now()
                store.save({
                    "format": CHECKPOINT_FORMAT,
                    "model_version": MODEL_VERSION,
                    "retired": total,
                    "warmed": warmed_now,
                    "measure_target": measure_now if warmed_now else None,
                    "seed": seed,
                    "machine": machine.snapshot(),
                    "trace_offsets": machine.trace_consumed(),
                })
                info["ckpt_s"] += time_now() - started
                if faults is not None:
                    faults.maybe_midcrash(fingerprint, attempt, boundary)

    try:
        if not warmed:
            advance(warmup, False, 0)
            if warmup:
                machine.reset_stats()
            measure_target = machine.total_retired() + instructions
        advance(measure_target, True, measure_target)
    except ArenaError:
        raise
    except Exception as exc:
        exc.__resumed_from__ = info["resumed_from"]
        if triage_dir is not None and spec is not None:
            bundle = triage.write_bundle(
                triage_dir, spec=spec, fingerprint=fingerprint,
                attempt=attempt, error=exc, machine=machine,
                checkpoints=(store.checkpoint_files() if store is not None
                             else []),
                resumed_from=info["resumed_from"])
            if bundle is not None:
                exc.__triage_bundle__ = str(bundle)
        raise

    cycles = machine.measured_cycles
    result = assemble_result(machine, workload.name, cycles, instructions)
    if writing:
        store.clear()
    return result, info


def run_spec(spec: JobSpec, workload: Optional[Any] = None, *,
             store: Optional[CheckpointStore] = None,
             every: int = 0,
             faults: Optional[FaultPlan] = None,
             attempt: int = 0,
             triage_dir: Optional[Union[str, Path]] = None,
             ) -> Tuple[SimulationResult, Dict[str, Any]]:
    """:meth:`JobSpec.run` with checkpointing and triage.

    Mirrors the spec's arena fallback: any :class:`ArenaError` (shape
    mismatch, stream exhausted mid-run, arena too short for a resumed
    offset) re-runs on the freshly built generator path.  Checkpoints
    record stream *positions*, not stream sources, so one written
    during an arena-backed attempt resumes a generator-path re-run
    byte-identically.
    """
    fingerprint = spec.fingerprint()
    kw = dict(store=store, every=every, faults=faults,
              fingerprint=fingerprint, attempt=attempt, spec=spec,
              triage_dir=triage_dir)
    if workload is not None:
        try:
            return run_job(spec.params, workload,
                           instructions=spec.instructions,
                           warmup=spec.warmup, seed=spec.seed, **kw)
        except ArenaError:
            pass
    return run_job(spec.params, spec.workload.build(),
                   instructions=spec.instructions,
                   warmup=spec.warmup, seed=spec.seed, **kw)


# ------------------------------------------------------------------- digest

def state_digest(machine: Machine) -> str:
    """Canonical sha256 over the machine's architectural memory state.

    Hashes every cache tag array (in LRU order -- replacement order is
    state), the full directory (sorted by line), and the lock table.
    Used by the checkpoint round-trip tests to prove a restored machine
    is indistinguishable from one that never stopped.
    """
    import json
    caches = []
    for node in machine.nodes:
        per_node = {}
        for level, arr in (("l1i", node.l1i), ("l1d", node.l1d),
                           ("l2", node.l2)):
            per_node[level] = [[[line, bool(dirty)]
                                for line, dirty in s.items()]
                               for s in arr._sets]
        caches.append(per_node)
    directory = sorted(
        [line, entry.state, entry.owner, sorted(entry.sharers),
         entry.last_writer, bool(entry.migratory)]
        for line, entry in machine.memory._entries.items())
    payload = {"caches": caches, "directory": directory,
               "locks": sorted(machine.lock_table.items())}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
