"""Deterministic host-side fault injection for the experiment runner.

The resilience layer (retries, timeouts, cache quarantine) is only
trustworthy if every recovery path can be demonstrated on demand.  This
module injects *host-side* faults -- worker crashes at job start,
crashes mid-simulation (right after a checkpoint lands), hangs past the
job timeout, corrupted cache writes, and storage failures on every
durable artifact write (torn writes, short writes, ENOSPC, EIO, crash
between temp file and rename, dropped fsync) -- without ever
touching simulated state: a fault delays or re-runs a job, but the
simulation itself is deterministic, so the surviving results are
byte-identical to a fault-free run.

Activation is via the ``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS=crash:0.2,hang:0.1,corrupt:0.1,seed:7

Recognised keys:

``crash:P``     probability a job attempt raises :class:`InjectedCrash`
``hang:P``      probability a job attempt sleeps ``hang_s`` seconds
                before running (long enough to trip ``--job-timeout``)
``corrupt:P``   probability a cache write is truncated or bit-flipped
``midcrash:P``  per-checkpoint-boundary probability the attempt crashes
                *mid-simulation*, right after a checkpoint was written
                (exercises checkpoint resume, see repro.run.checkpoint)
``workerdie:P`` probability a fabric worker process exits abruptly
                (``os._exit``) right after acknowledging a job --
                exercises lease expiry and coordinator re-dispatch
                (see repro.run.fabric)
``netdrop:P``   per-message probability a fabric transport frame is
                silently dropped (never the hello/welcome handshake)
``netdup:P``    per-message probability a fabric transport frame is
                delivered twice
``netslow:P``   per-message probability a fabric send is delayed by
                ``netslow_s`` seconds
``torn:P``      per-durable-write probability the stored bytes are
                truncated at a hash-derived offset while the rename
                still completes (a torn write the next read must
                detect, quarantine, and recompute around)
``shortwrite:P`` per-durable-write probability only a prefix reaches
                the temp file before the writer fails with EIO
``enospc:P``    per-durable-write probability the write fails up front
                with ENOSPC (disk full)
``eio:P``       per-durable-write probability the final rename fails
                with EIO
``renamecrash:P`` per-durable-write probability the writer "dies"
                between writing the temp file and renaming it,
                leaving an orphaned ``*.tmp`` behind (raises
                :class:`InjectedCrash`)
``fsyncdrop:P`` per-durable-write probability the fsync is silently
                skipped (the content is intact; models a lying disk
                cache)
``seed:N``      integer folded into every fault decision (default 0)
``hang_s:S``    injected hang duration in seconds (default 30)
``netslow_s:S`` injected transport delay in seconds (default 0.2)

Every decision is a pure function of ``(seed, kind, fingerprint,
attempt)`` hashed through sha256 -- no global RNG state, no wall clock
-- so a sweep re-run with the same plan injects exactly the same faults,
and a retried attempt of the same job rolls independently (which is what
lets retries eventually succeed).  Worker processes inherit the
environment variable, so pool workers and the serial path inject
identically.

Disk faults roll per ``(artifact category, op, sequence number)``
instead of per job: :mod:`repro.run.atomicio` keys every durable write
through :meth:`FaultPlan.disk_fault`, so the schedule of injected disk
faults is a pure function of the plan string and the order of writes --
replay the same sweep serially and the same writes fail the same way.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional, Tuple

#: Environment variable holding the fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Default injected hang duration (seconds).  Long enough to exceed any
#: sensible ``--job-timeout`` yet bounded, so abandoned workers drain.
DEFAULT_HANG_SECONDS = 30.0

#: Default injected transport delay (seconds).  Short: a slow link must
#: stay below lease timeouts, or every netslow roll doubles as netdrop.
DEFAULT_NETSLOW_SECONDS = 0.2

#: Disk-fault kinds, in the fixed order :meth:`FaultPlan.disk_fault`
#: rolls them (first firing kind wins for a given write).
DISK_FAULT_KINDS: Tuple[str, ...] = (
    "torn", "shortwrite", "enospc", "eio", "renamecrash", "fsyncdrop")

_PROB_KEYS = ("crash", "hang", "corrupt", "midcrash",
              "workerdie", "netdrop", "netdup",
              "netslow") + DISK_FAULT_KINDS


class InjectedCrash(Exception):
    """Raised by a worker attempt selected for a crash fault.

    Deliberately a direct :class:`Exception` subclass -- not an
    ``OSError`` or ``RuntimeError`` -- so it exercises the executor's
    *arbitrary* per-job exception isolation, not a lucky catch tuple.
    """


class InjectedDiskFault(OSError):
    """An injected storage failure (ENOSPC, EIO, short write).

    Deliberately an :class:`OSError` subclass -- carrying a real
    ``errno`` -- so it flows through exactly the ``except OSError``
    degradation paths a genuine full or dying disk would take.
    """


@dataclass(frozen=True)
class FaultPlan:
    """Parsed fault-injection configuration."""

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    midcrash: float = 0.0
    workerdie: float = 0.0
    netdrop: float = 0.0
    netdup: float = 0.0
    netslow: float = 0.0
    torn: float = 0.0
    shortwrite: float = 0.0
    enospc: float = 0.0
    eio: float = 0.0
    renamecrash: float = 0.0
    fsyncdrop: float = 0.0
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    netslow_seconds: float = DEFAULT_NETSLOW_SECONDS

    # ------------------------------------------------------------- parsing

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``crash:0.2,hang:0.1,corrupt:0.1,seed:7`` string."""
        values: dict = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition(":")
            key = key.strip().lower()
            if not sep:
                raise ValueError(
                    f"malformed {FAULTS_ENV} entry {item!r}: expected "
                    f"key:value")
            if key in _PROB_KEYS:
                prob = float(raw)
                if not 0.0 <= prob <= 1.0:
                    raise ValueError(
                        f"{FAULTS_ENV} probability {key}:{raw} outside "
                        f"[0, 1]")
                values[key] = prob
            elif key == "seed":
                values["seed"] = int(raw)
            elif key == "hang_s":
                values["hang_seconds"] = float(raw)
            elif key == "netslow_s":
                values["netslow_seconds"] = float(raw)
            else:
                raise ValueError(
                    f"unknown {FAULTS_ENV} key {key!r}; expected one of "
                    f"{sorted(_PROB_KEYS + ('seed', 'hang_s', 'netslow_s'))}")
        return cls(**values)

    @property
    def active(self) -> bool:
        return any(getattr(self, kind) for kind in _PROB_KEYS)

    # ------------------------------------------------------------- rolling

    def _unit(self, kind: str, fingerprint: str, attempt: int) -> float:
        """Deterministic value in [0, 1) for one fault decision."""
        token = f"{self.seed}:{kind}:{fingerprint}:{attempt}"
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def roll(self, kind: str, fingerprint: str, attempt: int = 0) -> bool:
        """Should fault ``kind`` fire for this (job, attempt)?"""
        probability = getattr(self, kind)
        return probability > 0.0 and \
            self._unit(kind, fingerprint, attempt) < probability

    # ---------------------------------------------------------- injection

    def maybe_crash(self, fingerprint: str, attempt: int = 0) -> None:
        """Raise :class:`InjectedCrash` if this attempt was selected."""
        if self.roll("crash", fingerprint, attempt):
            raise InjectedCrash(
                f"injected crash (job {fingerprint[:12]}, "
                f"attempt {attempt})")

    def maybe_midcrash(self, fingerprint: str, attempt: int,
                       boundary: int) -> None:
        """Raise :class:`InjectedCrash` right after the checkpoint at
        ``boundary`` retired instructions was written, if selected.

        The boundary index is folded into the roll key, so one attempt
        rolls independently at every checkpoint, and a retried attempt
        rolls independently again past the boundary it resumed from --
        retries therefore make forward progress and eventually finish.
        """
        if self.midcrash <= 0.0:
            return
        if self._unit(f"midcrash:{boundary}", fingerprint,
                      attempt) < self.midcrash:
            raise InjectedCrash(
                f"injected mid-run crash (job {fingerprint[:12]}, "
                f"attempt {attempt}, after checkpoint at {boundary} "
                f"retired)")

    def maybe_hang(self, fingerprint: str, attempt: int = 0) -> bool:
        """Sleep ``hang_seconds`` if selected; returns whether it fired."""
        if not self.roll("hang", fingerprint, attempt):
            return False
        import time
        time.sleep(self.hang_seconds)
        return True

    def corrupt_text(self, text: str, fingerprint: str) -> str:
        """Corrupt a cache payload if selected (else return unchanged).

        Alternates deterministically between truncation (half the
        payload vanishes, as if the writer was SIGKILLed) and a single
        flipped character (silent bit rot).  Either way the stored
        checksum no longer matches, which is exactly what the cache's
        quarantine path must catch.
        """
        if not self.roll("corrupt", fingerprint):
            return text
        if not text:
            return text
        selector = self._unit("corrupt-mode", fingerprint, 0)
        if selector < 0.5:
            return text[:max(1, len(text) // 2)]
        position = int(self._unit("corrupt-pos", fingerprint, 0)
                       * len(text)) % len(text)
        flipped = chr(ord(text[position]) ^ 0x01)
        return text[:position] + flipped + text[position + 1:]

    # ------------------------------------------------------------ disk ops

    @property
    def disk_active(self) -> bool:
        """Whether any disk-fault kind has a non-zero probability."""
        return any(getattr(self, kind) for kind in DISK_FAULT_KINDS)

    def disk_fault(self, category: str, op: str,
                   seq: int) -> Optional[str]:
        """Which disk fault (if any) fires for one durable write.

        ``category`` is the artifact category (``cache`` /
        ``manifest`` / ``checkpoint`` / ``arena`` / ``triage`` /
        ``gcstate``), ``op`` the operation name, and ``seq`` the
        category-local operation sequence number.  Kinds roll in
        :data:`DISK_FAULT_KINDS` order and the first hit wins, so a
        given (plan, write) pair always resolves to the same single
        fault -- the whole schedule replays exactly.
        """
        fingerprint = f"{category}:{op}"
        for kind in DISK_FAULT_KINDS:
            if self.roll(kind, fingerprint, seq):
                return kind
        return None

    def torn_offset(self, size: int, category: str, seq: int) -> int:
        """Hash-derived truncation point in ``[0, size)`` for a torn or
        short write -- strictly less than ``size`` so the stored bytes
        really are damaged."""
        if size <= 1:
            return 0
        unit = self._unit("torn-offset", category, seq)
        return min(size - 1, int(unit * size))


def plan_from_env(env: Optional[str] = None) -> Optional[FaultPlan]:
    """The active :class:`FaultPlan`, or ``None`` when none is set.

    ``env`` overrides the environment lookup (for tests).  An unset or
    empty variable disables injection entirely; a plan whose
    probabilities are all zero is likewise reported as inactive.
    """
    text = env if env is not None else os.environ.get(FAULTS_ENV, "")
    if not text.strip():
        return None
    plan = FaultPlan.parse(text)
    return plan if plan.active else None
