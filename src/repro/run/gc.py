"""Retention GC for cache-adjacent artifacts: plan first, then apply.

Long sweep campaigns accrete four kinds of disk debris under the result
cache: per-job **checkpoint** directories (``checkpoints/<fp>/``),
crash-**triage** bundles (``triage/<fp12>-aN/``), shared trace
**arenas** (``traces/*.arena``), and **quarantined** corrupt cache
entries (``quarantine/*.json``).  Results themselves are never touched
-- they are the product; everything here is recoverable scaffolding.

``repro gc`` builds a :class:`GcPlan` from per-category
:class:`RetentionRule` caps (age, count, total bytes -- applied in that
order, evicting oldest first) and only deletes when asked
(``--dry-run`` is the default posture in CI).  The plan is
**manifest-aware**: artifacts belonging to jobs the sweep manifest
still considers in flight (``pending``/``running``/``retrying``) are
*pinned* -- reported, counted against the caps, but never evicted --
so a GC run concurrent with (or between resumes of) a sweep cannot eat
the checkpoint a job is about to resume from or the bundle of a crash
that has not been triaged.

A fifth category, **orphans**, covers ``*.tmp`` files abandoned by
writers that died between ``mkstemp`` and the final rename (including
injected ``renamecrash`` faults): the cache root, every per-job
checkpoint directory, the trace and triage trees.  Race safety: any
item -- orphan or artifact -- whose newest mtime is younger than
:data:`GC_GRACE_S` is pinned outright, so a gc run concurrent with a
live sweep can never eat an in-flight temp file or a just-renamed
artifact, even under ``--max-age-days 0``.

After :meth:`GcPlan.apply`, :func:`write_gc_state` journals the run
(``gc-state.json``, checksummed via
:func:`repro.run.atomicio.write_checked_json`) so ``repro audit-state``
can cross-check the last collection.

Determinism note: the only clock here is host housekeeping time
(:func:`repro.run.cache.time_now`); nothing simulated ever reads it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.run import atomicio
from repro.run.cache import time_now

#: Seconds per day, for readable rule declarations.
_DAY = 86400.0

#: Manifest statuses that pin a job's artifacts against eviction.
PINNED_STATUSES = ("pending", "running", "retrying")

#: Grace window (seconds): nothing younger than this is ever evicted,
#: whatever the rules say -- it may be an in-flight write racing the
#: collection.  Durable writes land in milliseconds, so one minute is
#: generous without starving tight count/bytes caps.
GC_GRACE_S = 60.0

#: File name of the gc journal inside the cache directory.
GC_STATE_NAME = "gc-state.json"

#: ``gc-state.json`` body schema version.
GC_STATE_FORMAT = 1


@dataclass(frozen=True)
class RetentionRule:
    """Retention caps for one artifact category (``None`` = uncapped).

    Applied in order: items older than ``max_age_s`` are evicted first;
    then the oldest items beyond ``max_count``; then the oldest items
    until the category fits ``max_bytes``.
    """

    max_age_s: Optional[float] = None
    max_count: Optional[int] = None
    max_bytes: Optional[int] = None


#: Default retention policy per category.  Checkpoints and arenas are
#: cheap to regenerate, so age alone bounds them; triage bundles and
#: quarantined entries are evidence, so a count cap keeps the newest.
DEFAULT_RULES: Dict[str, RetentionRule] = {
    "checkpoints": RetentionRule(max_age_s=7 * _DAY),
    "triage": RetentionRule(max_age_s=7 * _DAY, max_count=50),
    "arenas": RetentionRule(max_age_s=7 * _DAY,
                            max_bytes=2 * 1024 * 1024 * 1024),
    "quarantine": RetentionRule(max_age_s=7 * _DAY, max_count=200),
    # Abandoned *.tmp files are pure debris once stale; the orphan TTL
    # matches the writers' own startup sweeps.
    "orphans": RetentionRule(max_age_s=atomicio.ORPHAN_TTL),
}


@dataclass
class GcItem:
    """One evictable artifact (a directory tree or single file)."""

    category: str
    path: Path
    mtime: float
    bytes: int
    pinned: bool = False
    pin_reason: str = ""
    evict: bool = False
    evict_reason: str = ""

    def age_s(self, now: float) -> float:
        return max(0.0, now - self.mtime)


@dataclass
class GcPlan:
    """A fully-decided eviction plan; inspect, print, then apply."""

    now: float
    items: List[GcItem] = field(default_factory=list)

    @property
    def evictions(self) -> List[GcItem]:
        return [item for item in self.items if item.evict]

    @property
    def pinned(self) -> List[GcItem]:
        return [item for item in self.items if item.pinned]

    def freed_bytes(self) -> int:
        return sum(item.bytes for item in self.evictions)

    def format_plan(self, verbose: bool = False) -> str:
        """Human summary; ``verbose`` lists every planned eviction."""
        by_cat: Dict[str, Tuple[int, int, int]] = {}
        for item in self.items:
            kept, gone, freed = by_cat.get(item.category, (0, 0, 0))
            if item.evict:
                by_cat[item.category] = (kept, gone + 1,
                                         freed + item.bytes)
            else:
                by_cat[item.category] = (kept + 1, gone, freed)
        lines = [f"gc plan: {len(self.evictions)} evictions, "
                 f"{_human_bytes(self.freed_bytes())} reclaimable, "
                 f"{len(self.pinned)} pinned"]
        for category in sorted(by_cat):
            kept, gone, freed = by_cat[category]
            lines.append(f"  {category:<12s} keep {kept:>4d}  "
                         f"evict {gone:>4d}  ({_human_bytes(freed)})")
        if verbose:
            for item in self.evictions:
                lines.append(
                    f"  rm {item.path}  [{item.evict_reason}, "
                    f"{item.age_s(self.now) / _DAY:.1f}d, "
                    f"{_human_bytes(item.bytes)}]")
            for item in self.pinned:
                lines.append(f"  pin {item.path}  [{item.pin_reason}]")
        return "\n".join(lines)

    def apply(self) -> Tuple[int, int]:
        """Delete every planned eviction; ``(removed, freed bytes)``.

        Best-effort per item: an undeletable path is skipped, the rest
        of the plan still applies.
        """
        import shutil
        removed = 0
        freed = 0
        for item in self.evictions:
            try:
                if item.path.is_dir():
                    shutil.rmtree(item.path)
                else:
                    item.path.unlink()
            except OSError:
                continue
            removed += 1
            freed += item.bytes
        return removed, freed


def _human_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" \
                else f"{int(value)} B"
        value /= 1024.0
    return f"{int(count)} B"


def _tree_stat(path: Path) -> Tuple[float, int]:
    """``(newest mtime, total bytes)`` over a file or directory tree.

    The newest mtime anywhere in the tree is the item's age -- a
    checkpoint directory whose latest snapshot is fresh must read as
    fresh even if the directory inode itself is old.
    """
    try:
        stat = path.stat()
    except OSError:
        return 0.0, 0
    if not path.is_dir():
        return stat.st_mtime, stat.st_size
    newest = stat.st_mtime
    total = 0
    for child in sorted(path.rglob("*")):
        try:
            child_stat = child.stat()
        except OSError:
            continue
        if child.is_file():
            total += child_stat.st_size
        newest = max(newest, child_stat.st_mtime)
    return newest, total


def _pinned_fingerprints(manifest) -> Tuple[set, set]:
    """``(full fingerprints, fp12 prefixes)`` of in-flight jobs."""
    full: set = set()
    short: set = set()
    if manifest is not None:
        for fingerprint in sorted(manifest.records):
            if manifest.records[fingerprint].status in PINNED_STATUSES:
                full.add(fingerprint)
                short.add(fingerprint[:12])
    return full, short


def collect_items(cache_dir: Union[str, Path],
                  manifest=None) -> List[GcItem]:
    """Inventory every GC-eligible artifact under ``cache_dir``."""
    from repro.run import checkpoint as ckpt
    from repro.run import triage
    cache_dir = Path(cache_dir)
    pinned_full, pinned_short = _pinned_fingerprints(manifest)
    items: List[GcItem] = []

    for directory in ckpt.job_checkpoint_dirs(cache_dir):
        mtime, size = _tree_stat(directory)
        pinned = directory.name in pinned_full
        items.append(GcItem(
            "checkpoints", directory, mtime, size, pinned=pinned,
            pin_reason="job in flight" if pinned else ""))

    for directory in triage.bundle_dirs(cache_dir):
        mtime, size = _tree_stat(directory)
        fp12 = directory.name.split("-a")[0]
        pinned = fp12 in pinned_short
        items.append(GcItem(
            "triage", directory, mtime, size, pinned=pinned,
            pin_reason="job in flight" if pinned else ""))

    traces = cache_dir / "traces"
    if traces.is_dir():
        for arena in sorted(traces.glob("*.arena")):
            mtime, size = _tree_stat(arena)
            items.append(GcItem("arenas", arena, mtime, size))

    quarantine = cache_dir / "quarantine"
    if quarantine.is_dir():
        for entry in sorted(quarantine.iterdir()):
            mtime, size = _tree_stat(entry)
            items.append(GcItem("quarantine", entry, mtime, size))

    for stray in _orphan_tmp_files(cache_dir):
        mtime, size = _tree_stat(stray)
        items.append(GcItem("orphans", stray, mtime, size))

    return items


def _orphan_tmp_files(cache_dir: Path) -> List[Path]:
    """Every abandoned ``*.tmp`` across the durable tree, sorted:
    the cache root (entries + manifest), per-job checkpoint
    directories, the trace dir, and triage bundles."""
    from repro.run import checkpoint as ckpt
    from repro.run import triage
    directories = [cache_dir, cache_dir / "traces"]
    directories.extend(ckpt.job_checkpoint_dirs(cache_dir))
    directories.extend(triage.bundle_dirs(cache_dir))
    strays: List[Path] = []
    for directory in directories:
        strays.extend(atomicio.orphan_tmp_files(directory))
    return sorted(strays)


def plan_gc(cache_dir: Union[str, Path],
            rules: Optional[Dict[str, RetentionRule]] = None,
            manifest=None, now: Optional[float] = None) -> GcPlan:
    """Decide what to evict under ``cache_dir``; nothing is deleted.

    ``manifest`` (a :class:`~repro.run.manifest.SweepManifest`) enables
    pinning; ``now`` overrides the housekeeping clock for tests.
    """
    if now is None:
        now = time_now()
    rules = rules if rules is not None else DEFAULT_RULES
    plan = GcPlan(now=now, items=collect_items(cache_dir, manifest))
    for item in plan.items:
        # Race safety: a fresh mtime means a writer may be mid-flight
        # (an in-progress temp file, a just-renamed artifact).  Pin it
        # unconditionally; the next collection gets it once it is
        # genuinely stale.
        if not item.pinned and item.age_s(now) < GC_GRACE_S:
            item.pinned = True
            item.pin_reason = (f"younger than grace window "
                               f"({GC_GRACE_S:.0f}s)")
    by_cat: Dict[str, List[GcItem]] = {}
    for item in plan.items:
        by_cat.setdefault(item.category, []).append(item)
    for category, items in sorted(by_cat.items()):
        rule = rules.get(category)
        if rule is None:
            continue
        _apply_rule(items, rule, now)
    return plan


def _apply_rule(items: Sequence[GcItem], rule: RetentionRule,
                now: float) -> None:
    """Mark evictions for one category, oldest first.

    Pinned items participate in the caps (they still occupy disk) but
    are never marked.  Ties on mtime break on path for determinism.
    """
    ordered = sorted(items, key=lambda item: (item.mtime, str(item.path)))

    def mark(item: GcItem, reason: str) -> None:
        if not item.pinned and not item.evict:
            item.evict = True
            item.evict_reason = reason

    if rule.max_age_s is not None:
        for item in ordered:
            if item.age_s(now) > rule.max_age_s:
                mark(item, f"older than {rule.max_age_s / _DAY:.1f}d")

    if rule.max_count is not None:
        surviving = [item for item in ordered if not item.evict]
        excess = len(surviving) - rule.max_count
        for item in surviving:
            if excess <= 0:
                break
            if not item.pinned:
                mark(item, f"count cap {rule.max_count}")
            # A pinned item still uses a slot, so the excess only
            # shrinks when something actually goes.
            if item.evict:
                excess -= 1

    if rule.max_bytes is not None:
        surviving = [item for item in ordered if not item.evict]
        total = sum(item.bytes for item in surviving)
        for item in surviving:
            if total <= rule.max_bytes:
                break
            if not item.pinned:
                mark(item, f"size cap {_human_bytes(rule.max_bytes)}")
            if item.evict:
                total -= item.bytes


# ------------------------------------------------------------------ journal

def gc_state_path(cache_dir: Union[str, Path]) -> Path:
    return Path(cache_dir) / GC_STATE_NAME


def write_gc_state(cache_dir: Union[str, Path], plan: GcPlan,
                   removed: int, freed: int) -> bool:
    """Journal one applied collection (best-effort, checksummed).

    The body records what the plan decided and what actually went, per
    category, so ``repro audit-state`` can verify the journal parses
    and matches its checksum after a faulted run.
    """
    by_cat: Dict[str, int] = {}
    for item in plan.evictions:
        by_cat[item.category] = by_cat.get(item.category, 0) + 1
    body: Dict[str, Any] = {
        "format": GC_STATE_FORMAT,
        "applied_at": plan.now,
        "planned": len(plan.evictions),
        "removed": removed,
        "freed_bytes": freed,
        "pinned": len(plan.pinned),
        "evictions_by_category": {key: by_cat[key]
                                  for key in sorted(by_cat)},
    }
    return atomicio.write_checked_json(gc_state_path(cache_dir), body,
                                       category="gcstate")


def read_gc_state(cache_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The last gc journal body, or ``None`` when absent.

    Raises :class:`~repro.run.atomicio.FramedReadError` on a corrupt
    journal (the audit reports it; the journal is best-effort state,
    so the caller may simply delete it).
    """
    path = gc_state_path(cache_dir)
    if not path.exists():
        return None
    return atomicio.read_checked_json(path)
