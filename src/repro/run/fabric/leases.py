"""Worker leases: who is alive, who owns which job, what expired.

The lease table is pure bookkeeping -- every method takes the current
time as an argument, so the policy is deterministic given a sequence of
events and fully unit-testable with a fake clock.  The coordinator owns
the only wall clock and feeds the same ``now`` to a whole poll cycle.

Lifecycle of one dispatch:

* ``grant(...)`` -- a job message went out; the worker owes an ``ack``
  within ``ack_timeout`` seconds.  A grant that never acknowledges is
  *innocent*: the job message (or the ack) was lost in transit, the job
  never started, so it requeues at the same attempt number.
* ``acknowledge(...)`` -- the worker confirmed receipt and is
  executing.  Its background heartbeat thread keeps
  :meth:`heartbeat` fresh even while the main thread simulates, so a
  long (or fault-injected hanging) job does not read as a dead worker.
* expiry -- :meth:`expired` classifies overdue leases:

  - ``ack-timeout``: granted, never acknowledged -- requeue, keep the
    worker (it may simply have missed one frame);
  - ``worker-lost``: no heartbeat for ``lease_timeout`` seconds -- the
    worker process is gone (``workerdie``, SIGKILL, network partition);
    requeue at the same attempt and drop the worker;
  - ``job-timeout``: acknowledged longer ago than the retry policy's
    per-attempt budget -- the *attempt* is charged (matching the local
    pool's abandonment semantics) and retried elsewhere.

Late results from a worker whose lease was revoked are handled by the
coordinator with first-writer-wins: the outcome slot and the manifest
attempt log each accept exactly one completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Default seconds a worker may go silent before its lease is revoked.
DEFAULT_LEASE_TIMEOUT = 3.0

#: Default seconds between a job grant and the worker's ack.
DEFAULT_ACK_TIMEOUT = 5.0


@dataclass
class WorkerLease:
    """One dispatched job's claim on one worker."""

    worker: str
    job_id: int
    index: int            # outcome slot in the sweep
    fingerprint: str
    attempt: int
    dispatch_seq: int     # global dispatch counter (workerdie roll key)
    granted_at: float
    acked_at: Optional[float] = None

    @property
    def acknowledged(self) -> bool:
        return self.acked_at is not None

    def age(self, now: float) -> float:
        return max(0.0, now - self.granted_at)


@dataclass
class WorkerInfo:
    """Liveness and accounting for one connected worker."""

    name: str
    joined_at: float
    last_heartbeat: float
    jobs_done: int = 0
    jobs_failed: int = 0
    lease: Optional[WorkerLease] = field(default=None, repr=False)

    def heartbeat_age(self, now: float) -> float:
        return max(0.0, now - self.last_heartbeat)


class LeaseTable:
    """Deterministic lease/liveness state for the coordinator."""

    def __init__(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 ack_timeout: float = DEFAULT_ACK_TIMEOUT,
                 job_timeout: Optional[float] = None):
        self.lease_timeout = float(lease_timeout)
        self.ack_timeout = float(ack_timeout)
        self.job_timeout = job_timeout
        self.workers: Dict[str, WorkerInfo] = {}

    # --------------------------------------------------------- membership

    def join(self, name: str, now: float) -> WorkerInfo:
        info = WorkerInfo(name, joined_at=now, last_heartbeat=now)
        self.workers[name] = info
        return info

    def drop(self, name: str) -> Optional[WorkerLease]:
        """Remove a worker; returns its orphaned lease, if any."""
        info = self.workers.pop(name, None)
        return info.lease if info is not None else None

    def heartbeat(self, name: str, now: float) -> None:
        info = self.workers.get(name)
        if info is not None:
            info.last_heartbeat = now

    # ------------------------------------------------------------- leases

    def idle_workers(self) -> List[str]:
        """Names of live workers with no outstanding lease, sorted for
        deterministic assignment order."""
        return sorted(name for name, info in self.workers.items()
                      if info.lease is None)

    def grant(self, name: str, job_id: int, index: int, fingerprint: str,
              attempt: int, dispatch_seq: int, now: float) -> WorkerLease:
        info = self.workers[name]
        assert info.lease is None, f"worker {name} already leased"
        lease = WorkerLease(name, job_id, index, fingerprint, attempt,
                            dispatch_seq, granted_at=now)
        info.lease = lease
        return lease

    def acknowledge(self, name: str, job_id: int, now: float) -> bool:
        """Mark a grant acknowledged; ``False`` for stale/unknown acks."""
        info = self.workers.get(name)
        if info is None or info.lease is None \
                or info.lease.job_id != job_id:
            return False
        if info.lease.acked_at is None:
            info.lease.acked_at = now
        self.heartbeat(name, now)
        return True

    def release(self, name: str, job_id: Optional[int] = None
                ) -> Optional[WorkerLease]:
        """Clear a worker's lease (optionally only if it matches
        ``job_id``); returns the released lease."""
        info = self.workers.get(name)
        if info is None or info.lease is None:
            return None
        if job_id is not None and info.lease.job_id != job_id:
            return None
        lease, info.lease = info.lease, None
        return lease

    def lease_for_job(self, job_id: int) -> Optional[WorkerLease]:
        for name in sorted(self.workers):
            lease = self.workers[name].lease
            if lease is not None and lease.job_id == job_id:
                return lease
        return None

    # ------------------------------------------------------------- expiry

    def expired(self, now: float) -> List[Tuple[WorkerLease, str]]:
        """Overdue leases as ``(lease, reason)``, reasons being
        ``worker-lost`` / ``ack-timeout`` / ``job-timeout``.

        The caller decides what each reason means for requeueing; this
        method only *classifies* and does not mutate the table, so one
        poll cycle sees a consistent view.  ``worker-lost`` wins over
        the other reasons: a dead worker's lease must requeue
        innocently even if its attempt also ran long.
        """
        out: List[Tuple[WorkerLease, str]] = []
        for name in sorted(self.workers):
            info = self.workers[name]
            lease = info.lease
            if lease is None:
                continue
            if info.heartbeat_age(now) > self.lease_timeout:
                out.append((lease, "worker-lost"))
            elif not lease.acknowledged and \
                    now - lease.granted_at > self.ack_timeout:
                out.append((lease, "ack-timeout"))
            elif lease.acknowledged and self.job_timeout is not None \
                    and now - lease.acked_at > self.job_timeout:
                out.append((lease, "job-timeout"))
        return out

    def lost_workers(self, now: float) -> List[str]:
        """Live-list entries whose heartbeat went stale (leased or not)."""
        return sorted(name for name, info in self.workers.items()
                      if info.heartbeat_age(now) > self.lease_timeout)
