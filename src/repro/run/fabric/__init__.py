"""Fault-tolerant multi-host sweep fabric.

The fabric fans a sweep out over worker processes on any number of
hosts through a deliberately small, length-prefixed JSON-over-TCP
protocol (:mod:`~repro.run.fabric.protocol`).  A coordinator
(:mod:`~repro.run.fabric.coordinator`) owns the sweep: it leases jobs
to connected workers, tracks per-worker heartbeats
(:mod:`~repro.run.fabric.leases`), re-dispatches work lost to dead or
silent workers, and degrades to local execution when every worker is
gone.  Workers (:mod:`~repro.run.fabric.worker`, ``repro worker
--connect HOST:PORT``) dial in, execute jobs through exactly the same
checkpoint/triage/fault-injection path the fork-server pool uses, and
ship results back with at-least-once delivery.

Everything that makes jobs relocatable already exists elsewhere:
content-hashed :class:`~repro.run.jobs.JobSpec` fingerprints, the
checksummed result cache, the sweep manifest's first-writer-wins
attempt log, and checkpoint resume.  The fabric is a transport, not new
semantics -- results are byte-identical to a serial run, with or
without injected transport faults (``REPRO_FAULTS`` kinds ``netdrop``,
``netdup``, ``netslow``, ``workerdie``).
"""

from __future__ import annotations

from repro.run.fabric.coordinator import (
    FabricConfig,
    FabricDispatcher,
    parse_worker_spec,
)
from repro.run.fabric.leases import LeaseTable, WorkerLease
from repro.run.fabric.protocol import (
    Channel,
    ConnectionClosed,
    ProtocolError,
    parse_address,
)
from repro.run.fabric.worker import serve_worker

__all__ = [
    "Channel", "ConnectionClosed", "ProtocolError", "parse_address",
    "WorkerLease", "LeaseTable",
    "FabricConfig", "FabricDispatcher", "parse_worker_spec",
    "serve_worker",
]
