"""Length-prefixed JSON framing with deterministic transport faults.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON; every message is a JSON object carrying a ``type``
key.  The format is deliberately boring: any language (or a human with
``nc`` and patience) can speak it, and there is nothing version-fragile
to negotiate beyond the ``hello``/``welcome`` handshake.

:class:`Channel` wraps one connected socket.  Sends are serialized
under a lock (the worker's heartbeat thread and its main loop share the
channel) and receives keep a partial-frame buffer, so a timeout in the
middle of a frame never desynchronizes the stream -- the next call
resumes exactly where the bytes stopped.

Transport fault injection (``REPRO_FAULTS`` kinds ``netdrop`` /
``netdup`` / ``netslow``) lives here, on the *send* side: each
non-handshake message rolls the channel's :class:`FaultPlan` keyed by
``(channel name, message type, send sequence)``, so resends roll fresh
-- a dropped frame cannot deterministically drop forever -- while a
given run injects reproducibly.  Handshake frames are exempt: a fabric
that cannot even say hello tests nothing.

Every blocking socket operation in this package sets an explicit
timeout first (lint rule R008): an unbounded ``recv`` on a dead peer
is exactly the hang the lease machinery exists to prevent.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.run.faults import FaultPlan

#: Frame header: payload length, 4-byte big-endian unsigned.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; anything larger is a protocol
#: error, not a result (a tiny-simulation result dict is a few KiB).
MAX_FRAME = 64 * 1024 * 1024

#: Message types exempt from transport fault injection: dropping the
#: handshake proves nothing and deadlocks the join.
HANDSHAKE_TYPES = ("hello", "welcome")

#: Socket timeout used when the caller asked to block "forever": the
#: loop re-arms it, so the wait is unbounded but never uninterruptible.
_BLOCK_SLICE = 5.0


class ProtocolError(Exception):
    """The peer sent bytes that are not a well-formed frame."""


class ConnectionClosed(ProtocolError):
    """The peer went away (EOF or a transport-level OS error)."""


def parse_address(text: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (IPv6 hosts may be bracketed)."""
    text = text.strip()
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    host = host.strip("[]") or "127.0.0.1"
    return host, int(port)


class Channel:
    """One framed, fault-injectable JSON connection."""

    def __init__(self, sock: socket.socket, name: str = "peer",
                 plan: Optional[FaultPlan] = None):
        self._sock = sock
        self.name = name
        self.plan = plan
        self._rbuf = b""
        self._lock = threading.Lock()
        self._send_seq = 0
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (tests use socketpairs)

    # -------------------------------------------------------------- send

    def send_json(self, message: Dict[str, Any],
                  timeout: float = 10.0) -> None:
        """Send one message (at-most-once under injected ``netdrop``).

        Raises :class:`ConnectionClosed` when the peer is gone.  Fault
        injection happens *after* serialization: a dropped or duplicated
        frame is always a well-formed frame, so the failure modes match
        a real lossy transport, not a corrupting one.
        """
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        frame = HEADER.pack(len(payload)) + payload
        with self._lock:
            copies = self._fault_copies(message)
            try:
                self._sock.settimeout(timeout)
                for _ in range(copies):
                    self._sock.sendall(frame)
            except socket.timeout as exc:
                raise ConnectionClosed(f"send timed out: {exc}") from exc
            except OSError as exc:
                raise ConnectionClosed(f"send failed: {exc}") from exc

    def _fault_copies(self, message: Dict[str, Any]) -> int:
        """How many times to put this frame on the wire (0, 1 or 2)."""
        plan = self.plan
        mtype = str(message.get("type", "?"))
        if plan is None or mtype in HANDSHAKE_TYPES:
            return 1
        seq = self._send_seq
        self._send_seq += 1
        token = f"{self.name}:{mtype}"
        if plan.roll("netslow", token, seq):
            time.sleep(plan.netslow_seconds)
        if plan.roll("netdrop", token, seq):
            return 0
        if plan.roll("netdup", token, seq):
            return 2
        return 1

    # -------------------------------------------------------------- recv

    def recv_json(self, timeout: Optional[float] = 1.0
                  ) -> Optional[Dict[str, Any]]:
        """Receive one message; ``None`` on timeout (buffer preserved).

        ``timeout=None`` blocks until a message or disconnection.
        Raises :class:`ConnectionClosed` on EOF and
        :class:`ProtocolError` on malformed frames.
        """
        deadline = None if timeout is None \
            else time.monotonic() + timeout  # repro-lint: disable=R002
        while True:
            frame = self._take_frame()
            if frame is not None:
                return self._decode(frame)
            slice_s = _BLOCK_SLICE
            if deadline is not None:
                remaining = deadline - time.monotonic()  # repro-lint: disable=R002
                if remaining <= 0:
                    return None
                slice_s = min(remaining, _BLOCK_SLICE)
            try:
                self._sock.settimeout(slice_s)
                data = self._sock.recv(65536)
            except socket.timeout:
                continue
            except OSError as exc:
                raise ConnectionClosed(f"recv failed: {exc}") from exc
            if not data:
                raise ConnectionClosed("peer closed the connection")
            self._rbuf += data

    def _take_frame(self) -> Optional[bytes]:
        """Pop one complete frame from the receive buffer, if present."""
        if len(self._rbuf) < HEADER.size:
            return None
        (length,) = HEADER.unpack_from(self._rbuf)
        if length > MAX_FRAME:
            raise ProtocolError(
                f"frame of {length} bytes exceeds the {MAX_FRAME}-byte "
                f"cap -- stream desynchronized or peer misbehaving")
        end = HEADER.size + length
        if len(self._rbuf) < end:
            return None
        frame = self._rbuf[HEADER.size:end]
        self._rbuf = self._rbuf[end:]
        return frame

    @staticmethod
    def _decode(frame: bytes) -> Dict[str, Any]:
        try:
            message = json.loads(frame.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"undecodable frame: {exc}") from exc
        if not isinstance(message, dict):
            raise ProtocolError(
                f"expected a JSON object, got {type(message).__name__}")
        return message

    # ------------------------------------------------------------- close

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def connect_channel(address: str, name: str = "peer",
                    timeout: float = 10.0,
                    plan: Optional[FaultPlan] = None) -> Channel:
    """Dial ``HOST:PORT`` and wrap the socket in a :class:`Channel`."""
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return Channel(sock, name=name, plan=plan)
