"""Fabric worker: dial a coordinator, execute jobs, survive faults.

``repro worker --connect HOST:PORT`` runs :func:`serve_worker`: it
dials the coordinator, introduces itself (``hello``/``welcome``), then
loops executing one job at a time through exactly the same per-job path
the fork-server pool uses (:func:`repro.run.forkserver.run_entry` --
fault injection, checkpoint resume, triage bundles included).

Robustness mechanics:

* **Heartbeats.**  A background thread sends a ``heartbeat`` frame
  every ``heartbeat_s`` seconds (the interval comes from the
  coordinator's ``welcome``), including *while the main thread is
  simulating*, so a long or fault-injected hanging job never reads as
  a dead worker.
* **At-least-once results.**  A ``result`` frame is resent on a timer
  until the coordinator acknowledges it (``result_ack``); the
  coordinator deduplicates, so an injected ``netdrop`` on either leg
  loses nothing.
* **Explicit fault plan.**  The ``welcome`` payload carries the
  coordinator's ``REPRO_FAULTS`` string; the worker's own environment
  is deliberately ignored (the fork-server precedent: persistent
  workers must not trust captured env).  The plan drives both job-level
  faults (crash/hang/midcrash) and this side's transport faults.
* **``workerdie``.**  Rolled per *dispatch* (the coordinator's global
  dispatch counter, not the attempt number) right after the job is
  acknowledged: the process exits abruptly via ``os._exit``, leaving an
  acknowledged lease to expire on the coordinator.  Keying by dispatch
  means a re-dispatched job rolls fresh -- a doomed (job, attempt) pair
  cannot deterministically kill every worker that touches it.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Dict, Optional

from repro.run.fabric.protocol import (
    Channel,
    ConnectionClosed,
    ProtocolError,
    connect_channel,
)
from repro.run.faults import plan_from_env

#: Seconds between resends of an unacknowledged result frame.
RESULT_RESEND_S = 1.0

#: Give up on a result after this many sends; the coordinator's lease
#: machinery re-dispatches the job, so dropping it here is safe.
RESULT_MAX_SENDS = 30

#: How long to wait for the coordinator's ``welcome``.
WELCOME_TIMEOUT_S = 15.0


def _monotonic() -> float:
    """Host clock for resend pacing only; never feeds simulated state."""
    import time
    return time.monotonic()  # repro-lint: disable=R002


class _Heartbeat(threading.Thread):
    """Background heartbeat pump; dies quietly with the connection."""

    def __init__(self, channel: Channel, interval: float):
        super().__init__(daemon=True)
        self.channel = channel
        self.interval = max(0.05, float(interval))
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            try:
                self.channel.send_json({"type": "heartbeat"})
            except (ConnectionClosed, OSError):
                return


def serve_worker(address: str, name: Optional[str] = None,
                 quiet: bool = False,
                 connect_timeout: float = 10.0) -> int:
    """Connect to a coordinator and execute fabric jobs until shutdown.

    Returns a process exit code: 0 on clean shutdown (coordinator said
    so, or closed the connection after the sweep), 1 when the handshake
    or transport failed in a way worth reporting.
    """
    def log(text: str) -> None:
        if not quiet:
            print(f"worker: {text}", file=sys.stderr)

    try:
        channel = connect_channel(address, name=name or "worker",
                                  timeout=connect_timeout)
    except (OSError, ValueError) as exc:
        log(f"cannot connect to {address}: {exc}")
        return 1
    heartbeat: Optional[_Heartbeat] = None
    try:
        channel.send_json({"type": "hello", "pid": os.getpid(),
                           "name": name or ""})
        welcome = channel.recv_json(timeout=WELCOME_TIMEOUT_S)
        if welcome is None or welcome.get("type") != "welcome":
            log(f"no welcome from coordinator at {address}")
            return 1
        assigned = str(welcome.get("name") or name or "worker")
        channel.name = assigned
        channel.plan = plan_from_env(str(welcome.get("faults", "")))
        cache_dir = welcome.get("cache_dir") or None
        every = int(welcome.get("checkpoint_every", 0) or 0)
        heartbeat = _Heartbeat(channel,
                               float(welcome.get("heartbeat_s", 0.25)))
        heartbeat.start()
        log(f"connected to {address} as {assigned}")
        return _serve_loop(channel, assigned, cache_dir, every, log)
    except (ConnectionClosed, ProtocolError) as exc:
        log(f"connection lost: {exc}")
        return 0
    finally:
        if heartbeat is not None:
            heartbeat.stop_event.set()
        channel.close()


def _serve_loop(channel: Channel, name: str, cache_dir: Optional[str],
                checkpoint_every: int, log) -> int:
    """Main receive/execute loop; returns the process exit code."""
    from repro.run import forkserver

    plan = channel.plan
    #: job_id -> (result message, sends so far, next resend time)
    unacked: Dict[int, Any] = {}
    done_ids = set()  # jobs already executed (re-sent job frames dedup)
    while True:
        _resend_due(channel, unacked)
        message = channel.recv_json(timeout=0.2)
        if message is None:
            continue
        mtype = message.get("type")
        if mtype == "shutdown":
            log("shutdown requested")
            return 0
        if mtype == "result_ack":
            unacked.pop(int(message.get("job_id", -1)), None)
            continue
        if mtype != "job":
            continue
        job_id = int(message["job_id"])
        if job_id in done_ids:
            # Duplicate delivery (netdup or a coordinator resend): the
            # result is either in flight or already acknowledged.
            continue
        channel.send_json({"type": "ack", "job_id": job_id})
        dispatch_seq = int(message.get("dispatch", 0))
        spec_dict = message["spec"]
        fingerprint = str(message.get("fingerprint", ""))
        if plan is not None and plan.roll("workerdie", fingerprint,
                                          dispatch_seq):
            # Injected abrupt death: no goodbye, no flush -- the lease
            # expires on the coordinator and the job re-dispatches.
            os._exit(3)
        outcome = forkserver.run_entry(
            spec_dict, int(message.get("attempt", 0)),
            message.get("arena"), plan, cache_dir, checkpoint_every)
        done_ids.add(job_id)
        result = {"type": "result", "job_id": job_id, "worker": name,
                  "outcome": outcome}
        channel.send_json(result)
        unacked[job_id] = [result, 1, _monotonic() + RESULT_RESEND_S]


def _resend_due(channel: Channel, unacked: Dict[int, Any]) -> None:
    """Resend overdue unacknowledged results (at-least-once delivery)."""
    if not unacked:
        return
    now = _monotonic()
    for job_id in sorted(unacked):
        entry = unacked[job_id]
        if now < entry[2]:
            continue
        if entry[1] >= RESULT_MAX_SENDS:
            # The coordinator will have re-dispatched by now; stop
            # flogging the wire.
            del unacked[job_id]
            continue
        channel.send_json(entry[0])
        entry[1] += 1
        entry[2] = now + RESULT_RESEND_S
