"""Sweep coordinator: lease jobs to fabric workers, survive their loss.

:class:`FabricDispatcher` implements the :class:`~repro.run.dispatch.
Dispatcher` interface over any number of connected workers.  One run:

1. bind a listener (ephemeral port by default) and start accepting;
2. launch workers per the configured specs -- ``spawn:N`` forks local
   ``repro worker`` subprocesses (loopback), ``ssh:HOST`` launches one
   over ssh (best-effort), ``wait:N`` expects N external workers to
   dial in (``repro worker --connect HOST:PORT``);
3. schedule: every idle worker gets the oldest ready job under a
   :class:`~repro.run.fabric.leases.WorkerLease`; acks, heartbeats and
   results stream back through per-connection reader threads into one
   event queue;
4. recover: expired leases requeue (innocently on worker death or a
   lost frame, charging the attempt on a per-job timeout -- see
   :mod:`~repro.run.fabric.leases`); late or duplicate results are
   resolved first-writer-wins against the outcome slot and the
   manifest's attempt log;
5. degrade: when every worker is gone and none can return, ``run``
   returns ``False`` and the executor's dispatcher chain re-runs the
   outcome-less remainder locally -- completed outcomes are never
   lost, they already live in the outcomes list, the cache and the
   manifest.

Results are byte-identical to a serial run by construction: workers
execute through the same :func:`repro.run.forkserver.run_entry` path,
and the transport can only delay, duplicate, drop or relocate a job --
never change what it computes.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.run.dispatch import DispatchContext, Dispatcher
from repro.run.fabric.leases import (
    DEFAULT_ACK_TIMEOUT,
    DEFAULT_LEASE_TIMEOUT,
    LeaseTable,
)
from repro.run.fabric.protocol import Channel, ConnectionClosed, ProtocolError
from repro.run.faults import FAULTS_ENV, plan_from_env

#: Seconds between worker heartbeats (sent to workers in ``welcome``).
DEFAULT_HEARTBEAT_S = 0.25


def _now() -> float:
    """Host clock for lease/backoff pacing; never feeds simulated state."""
    import time
    return time.monotonic()  # repro-lint: disable=R002


def _wall_now() -> float:
    """Wall-clock epoch for human-facing worker-health records only."""
    import time
    return time.time()  # repro-lint: disable=R002


@dataclass(frozen=True)
class FabricConfig:
    """Coordinator knobs; defaults favour loopback smoke tests."""

    workers: Tuple[str, ...] = ()      # spawn:N | ssh:HOST | wait:N
    host: str = "127.0.0.1"            # listener bind address
    port: int = 0                      # 0 = ephemeral
    advertise: Optional[str] = None    # address workers dial (ssh mode)
    connect_timeout: float = 10.0      # wait for the first worker
    ack_timeout: float = DEFAULT_ACK_TIMEOUT
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    heartbeat_s: float = DEFAULT_HEARTBEAT_S


def parse_worker_spec(spec: str) -> Tuple[str, Any]:
    """One worker spec -> ``(kind, arg)``.

    ``spawn:N`` -> ``("spawn", N)``; ``wait:N`` -> ``("wait", N)``;
    ``ssh:HOST`` (or a bare hostname) -> ``("ssh", HOST)``.
    """
    text = spec.strip()
    kind, sep, arg = text.partition(":")
    kind = kind.strip().lower()
    if kind in ("spawn", "wait"):
        count = int(arg) if sep and arg.strip() else 1
        if count < 1:
            raise ValueError(f"worker spec {spec!r}: count must be >= 1")
        return kind, count
    if kind == "ssh":
        host = arg.strip()
        if not host:
            raise ValueError(f"worker spec {spec!r}: missing host")
        return "ssh", host
    if not sep and text:
        return "ssh", text
    raise ValueError(
        f"unknown worker spec {spec!r}; expected spawn:N, wait:N, "
        f"ssh:HOST or a bare hostname")


class _Remote:
    """Coordinator-side handle for one connected worker."""

    __slots__ = ("name", "channel", "thread")

    def __init__(self, name: str, channel: Channel,
                 thread: threading.Thread):
        self.name = name
        self.channel = channel
        self.thread = thread


class FabricDispatcher(Dispatcher):
    """Fan pending jobs out over fabric workers with lease failover."""

    name = "fabric"

    def __init__(self, config: Optional[FabricConfig] = None):
        self.config = config or FabricConfig()

    def run(self, pending: Sequence[Tuple[int, Any]],
            ctx: DispatchContext) -> bool:
        if not pending:
            return True
        if not self.config.workers:
            return False
        session = _Session(self.config, ctx)
        try:
            if not session.start():
                return False
            return session.execute(pending)
        finally:
            session.shutdown()


class _Session:
    """One coordinator run: listener, worker set, scheduling loop."""

    def __init__(self, config: FabricConfig, ctx: DispatchContext):
        self.config = config
        self.ctx = ctx
        self.plan = plan_from_env()
        self.events: "queue.Queue[Tuple[str, str, Any]]" = queue.Queue()
        self.remotes: Dict[str, _Remote] = {}
        self.procs: List[subprocess.Popen] = []
        self.listener: Optional[socket.socket] = None
        self.table = LeaseTable(
            lease_timeout=config.lease_timeout,
            ack_timeout=config.ack_timeout,
            job_timeout=getattr(ctx.policy, "job_timeout", None))
        self._stop = threading.Event()
        self._name_lock = threading.Lock()
        self._name_seq = 0
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_flush_at = 0.0
        #: Events drained during start() that execute() must replay.
        self._backlog: List[Tuple[str, str, Any]] = []

    # ------------------------------------------------------------ startup

    def start(self) -> bool:
        """Bind, launch workers, wait for the first join."""
        try:
            specs = [parse_worker_spec(s) for s in self.config.workers]
        except ValueError:
            return False
        try:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(64)
        except OSError:
            return False
        self.listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        port = listener.getsockname()[1]
        for kind, arg in specs:
            if kind == "spawn":
                for _ in range(arg):
                    self._spawn_local(port)
            elif kind == "ssh":
                self._spawn_ssh(arg, port)
            # "wait": nothing to launch; external workers dial in.
        deadline = _now() + self.config.connect_timeout
        while _now() < deadline:
            for event in self._drain_events(timeout=0.1):
                if event[0] == "joined":
                    self._register_join(event[1], event[2], _now())
                else:
                    self._backlog.append(event)
            if self.remotes:
                return True
        return bool(self.remotes)

    def _register_join(self, name: str, remote: "_Remote",
                       now: float) -> None:
        self.remotes[name] = remote
        self.table.join(name, now)
        self._mark_worker(name, status="alive", connected_at=_wall_now(),
                          last_heartbeat=_wall_now(), jobs_done=0,
                          jobs_failed=0, lease="", flush=True)

    def _drain_events(self, timeout: float
                      ) -> List[Tuple[str, str, Any]]:
        """Queued events, blocking up to ``timeout`` for the first."""
        out: List[Tuple[str, str, Any]] = []
        try:
            out.append(self.events.get(timeout=timeout))
        except queue.Empty:
            return out
        while True:
            try:
                out.append(self.events.get_nowait())
            except queue.Empty:
                return out

    def _spawn_local(self, port: int) -> None:
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        env["PYTHONPATH"] = package_root + os.pathsep + \
            env.get("PYTHONPATH", "")
        try:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--connect",
                 f"127.0.0.1:{port}", "--quiet"],
                env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL)
        except OSError:
            return
        self.procs.append(proc)

    def _spawn_ssh(self, host: str, port: int) -> None:
        advertise = self.config.advertise or socket.gethostname()
        try:
            proc = subprocess.Popen(
                ["ssh", "-o", "BatchMode=yes", host,
                 f"repro worker --connect {advertise}:{port} --quiet"],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        except OSError:
            return
        self.procs.append(proc)

    # ------------------------------------------------- connection threads

    def _accept_loop(self) -> None:
        listener = self.listener
        while not self._stop.is_set():
            try:
                listener.settimeout(0.25)
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve_connection,
                             args=(conn,), daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        """Handshake one worker, then pump its messages into the queue."""
        channel = Channel(conn, name="?", plan=self.plan)
        try:
            hello = channel.recv_json(timeout=10.0)
        except (ConnectionClosed, ProtocolError):
            channel.close()
            return
        if hello is None or hello.get("type") != "hello":
            channel.close()
            return
        with self._name_lock:
            self._name_seq += 1
            name = f"w{self._name_seq}"
        channel.name = f"to:{name}"
        cache = self.ctx.cache
        try:
            channel.send_json({
                "type": "welcome", "name": name,
                "faults": os.environ.get(FAULTS_ENV, ""),
                "cache_dir": str(cache.path) if cache is not None
                else None,
                "checkpoint_every": int(self.ctx.checkpoint_every),
                "heartbeat_s": self.config.heartbeat_s,
            })
        except ConnectionClosed:
            channel.close()
            return
        thread = threading.current_thread()
        self.events.put(("joined", name,
                         _Remote(name, channel, thread)))
        while not self._stop.is_set():
            try:
                message = channel.recv_json(timeout=0.5)
            except (ConnectionClosed, ProtocolError):
                self.events.put(("lost", name, None))
                return
            if message is not None:
                self.events.put(("msg", name, message))

    # ---------------------------------------------------------- main loop

    def execute(self, pending: Sequence[Tuple[int, Any]]) -> bool:
        """Schedule ``pending`` over the connected workers.

        Returns ``True`` when every pending index holds an outcome, or
        ``False`` to degrade to the next dispatcher (workers all lost).
        """
        from repro.run.executor import _fail, _finish
        outcomes = self.ctx.outcomes
        manifest = self.ctx.manifest
        policy = self.ctx.policy
        indices = [index for index, _spec in pending]

        now = _now()
        # (not_before, index, spec, attempt, elapsed, last_error)
        work: List[Tuple[float, int, Any, int, float, str]] = \
            [(now, index, spec, 0, 0.0, "") for index, spec in pending]
        inflight: Dict[int, Tuple[int, Any, int, float]] = {}
        settled_jobs: set = set()
        draining: set = set()
        job_seq = 0
        dispatch_seq = 0
        last_worker_seen = now

        def settle(index: int, spec: Any, attempt: int, elapsed: float,
                   error: str, at: float, kind: str = "failed",
                   start_offset: int = 0, bundle: str = "") -> None:
            """Charge a failed/timed-out attempt; retry or fail out."""
            if outcomes[index] is not None:
                return  # a duplicate dispatch already settled this slot
            if manifest is not None:
                manifest.mark_attempt(spec.fingerprint(), attempt, kind,
                                      error, start_offset=start_offset)
            if attempt < policy.retries:
                if manifest is not None:
                    manifest.mark_retrying(spec.fingerprint(), error)
                if any(item[1] == index and item[3] > attempt
                       for item in work):
                    return  # the retry is already queued
                delay = policy.backoff_delay(spec.fingerprint(),
                                             attempt + 1)
                work.append((at + delay, index, spec, attempt + 1,
                             elapsed, error))
            else:
                outcomes[index] = _fail(spec, error, elapsed,
                                        attempt + 1, manifest,
                                        bundle=bundle)

        def requeue_innocent(lease, at: float) -> None:
            """Re-dispatch a lease whose worker/frames went away; the
            attempt never completed anywhere, so it is not charged."""
            entry = inflight.get(lease.job_id)
            if entry is None or lease.job_id in settled_jobs:
                return
            index, spec, attempt, elapsed = entry
            if outcomes[index] is None:
                work.append((at, index, spec, attempt, elapsed, ""))

        def drop_worker(name: str, at: float, why: str) -> None:
            lease = self.table.drop(name)
            remote = self.remotes.pop(name, None)
            if remote is not None:
                remote.channel.close()
            draining.discard(name)
            if lease is not None:
                requeue_innocent(lease, at)
            self._mark_worker(name, status=why, lease="", flush=True)

        def handle_result(name: str, message: Dict[str, Any],
                          at: float) -> None:
            job_id = int(message.get("job_id", -1))
            remote = self.remotes.get(name)
            if remote is not None:
                try:
                    remote.channel.send_json(
                        {"type": "result_ack", "job_id": job_id})
                except ConnectionClosed:
                    pass
            draining.discard(name)
            self.table.release(name, job_id)
            if job_id in settled_jobs or job_id not in inflight:
                return
            settled_jobs.add(job_id)
            index, spec, attempt, elapsed = inflight[job_id]
            outcome = message.get("outcome") or {}
            attempt_time = float(outcome.get("elapsed", 0.0))
            info = self.table.workers.get(name)
            if outcome.get("ok"):
                if info is not None:
                    info.jobs_done += 1
                if outcomes[index] is None:
                    from repro.core.experiment import SimulationResult
                    result = SimulationResult.from_dict(
                        outcome["result"])
                    outcomes[index] = _finish(
                        spec, result, elapsed + attempt_time,
                        attempt + 1, self.ctx.cache, manifest,
                        ckpt_s=float(outcome.get("ckpt_s", 0.0)),
                        resumed_from=int(outcome.get("resumed_from",
                                                     0)))
            else:
                if info is not None:
                    info.jobs_failed += 1
                settle(index, spec, attempt, elapsed + attempt_time,
                       outcome.get("error",
                                   "worker returned no outcome"), at,
                       start_offset=int(outcome.get("start_offset", 0)),
                       bundle=str(outcome.get("bundle", "")))
            self._mark_worker(name, lease="",
                              jobs_done=getattr(info, "jobs_done", 0),
                              jobs_failed=getattr(info, "jobs_failed",
                                                  0),
                              flush=True)

        while True:
            drained = self._backlog + self._drain_events(timeout=0.05)
            self._backlog = []
            now = _now()
            for event, name, payload in drained:
                if event == "joined":
                    self._register_join(name, payload, now)
                    last_worker_seen = now
                elif event == "lost":
                    drop_worker(name, now, "lost")
                elif event == "msg":
                    mtype = payload.get("type")
                    if mtype == "heartbeat":
                        self.table.heartbeat(name, now)
                        last_worker_seen = now
                        self._mark_worker(
                            name, last_heartbeat=_wall_now(),
                            flush=False)
                    elif mtype == "ack":
                        self.table.acknowledge(
                            name, int(payload.get("job_id", -1)), now)
                    elif mtype == "result":
                        handle_result(name, payload, now)

            # Lease expiry: classify, then recover per reason.
            for lease, reason in self.table.expired(now):
                if reason == "worker-lost":
                    drop_worker(lease.worker, now, "lost")
                elif reason == "ack-timeout":
                    self.table.release(lease.worker, lease.job_id)
                    requeue_innocent(lease, now)
                elif reason == "job-timeout":
                    self.table.release(lease.worker, lease.job_id)
                    draining.add(lease.worker)
                    entry = inflight.get(lease.job_id)
                    if entry is not None and \
                            lease.job_id not in settled_jobs:
                        settled_jobs.add(lease.job_id)
                        index, spec, attempt, elapsed = entry
                        settle(index, spec, attempt, elapsed,
                               f"timeout: attempt exceeded "
                               f"{policy.job_timeout:.2f}s", now,
                               kind="timeout")

            # Drop queue entries whose outcome landed via another path.
            work = [item for item in work if outcomes[item[1]] is None]

            if all(outcomes[index] is not None for index in indices):
                return True

            # Assignment: oldest ready work to idle workers.
            idle = [name for name in self.table.idle_workers()
                    if name not in draining and name in self.remotes]
            if idle and work:
                work.sort(key=lambda item: (item[0], item[1]))
                for name in idle:
                    ready = next((item for item in work
                                  if item[0] <= now), None)
                    if ready is None:
                        break
                    work.remove(ready)
                    _nb, index, spec, attempt, elapsed, _err = ready
                    job_seq += 1
                    dispatch_seq += 1
                    fingerprint = spec.fingerprint()
                    message = {
                        "type": "job", "job_id": job_seq,
                        "dispatch": dispatch_seq,
                        "spec": spec.to_dict(),
                        "fingerprint": fingerprint,
                        "attempt": attempt,
                        "arena": self.ctx.arena_paths.get(index),
                    }
                    if manifest is not None:
                        manifest.mark_running(fingerprint)
                    inflight[job_seq] = (index, spec, attempt, elapsed)
                    lease = self.table.grant(name, job_seq, index,
                                             fingerprint, attempt,
                                             dispatch_seq, now)
                    self._mark_worker(name, lease=fingerprint[:12],
                                      lease_since=_wall_now(),
                                      flush=True)
                    try:
                        self.remotes[name].channel.send_json(message)
                    except ConnectionClosed:
                        drop_worker(name, now, "lost")

            # Degradation: nobody left to run anything.
            if not self.table.workers:
                alive_procs = any(proc.poll() is None
                                  for proc in self.procs)
                grace_over = now - last_worker_seen > \
                    self.config.connect_timeout
                if (self.procs and not alive_procs) or grace_over:
                    return False

    # ---------------------------------------------------------- teardown

    def shutdown(self) -> None:
        self._stop.set()
        for name in sorted(self.remotes):
            try:
                self.remotes[name].channel.send_json({"type": "shutdown"},
                                                     timeout=1.0)
            except (ConnectionClosed, OSError):
                pass
        for name in sorted(self.remotes):
            self.remotes[name].channel.close()
            self._mark_worker(name, status="released", lease="",
                              flush=False)
        self.remotes.clear()
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
        for proc in self.procs:
            try:
                proc.terminate()
            except OSError:
                pass
        for proc in self.procs:
            try:
                proc.wait(timeout=2.0)
            except (subprocess.TimeoutExpired, OSError):
                try:
                    proc.kill()
                except OSError:
                    pass
        manifest = self.ctx.manifest
        if manifest is not None:
            manifest.flush()

    # ------------------------------------------------------- worker health

    def _mark_worker(self, name: str, flush: bool = True,
                     **fields: Any) -> None:
        """Record worker health in the manifest (throttled flushes)."""
        manifest = self.ctx.manifest
        if manifest is None or not hasattr(manifest, "mark_worker"):
            return
        if not flush:
            # Heartbeats are frequent; cap manifest writes at ~1/s.
            now = _now()
            flush = now >= self._worker_flush_at
            if flush:
                self._worker_flush_at = now + 1.0
        manifest.mark_worker(name, flush=flush, **fields)
