"""Parallel experiment runner with fault isolation and a persistent cache.

Public surface:

* :class:`~repro.run.jobs.JobSpec` / :class:`~repro.run.jobs.WorkloadSpec`
  -- picklable descriptions of one simulation;
* :func:`~repro.run.executor.run_many` -- cache-aware fan-out over a
  process pool with deterministic result ordering, per-job retry /
  timeout / backoff isolation, and failed-job outcomes instead of
  sweep-aborting exceptions;
* :class:`~repro.run.cache.ResultCache` -- on-disk JSON store keyed by
  job fingerprint (includes :data:`~repro.run.jobs.MODEL_VERSION`) with
  content checksums and a quarantine for corrupt entries;
* :class:`~repro.run.manifest.SweepManifest` -- crash-safe progress
  journal enabling ``--resume`` and ``repro sweep-status``;
* :mod:`~repro.run.faults` -- deterministic host-side fault injection
  (``REPRO_FAULTS``) used to prove every recovery path;
* :func:`configure` -- process-wide defaults (worker count, cache,
  retry policy, resume mode) that the figure sweeps, seed sweeps, CLI
  and benchmarks all route through.

By default the runner is serial and the cache is disabled, so library
users see exactly the old ``run_simulation`` behaviour unless they (or
the CLI, which enables the cache) opt in::

    import repro.run as run
    run.configure(jobs=4, use_cache=True, retries=3, job_timeout=600)
    ...                       # figure/sweep calls now fan out + memoize
    print(run.shared_cache().format_stats())
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.run.atomicio import (
    CriticalWriteError,
    DurabilityWarning,
    FramedReadError,
)
from repro.run.audit import AuditFinding, AuditReport, audit_state
from repro.run.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.run.dispatch import (
    DISPATCH_ENV,
    WORKERS_ENV,
    Dispatcher,
    default_dispatch,
    default_workers,
)
from repro.run.checkpoint import (
    CHECKPOINT_EVERY_ENV,
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointStore,
    checkpoint_every_from_env,
)
from repro.run.executor import (
    ARENAS_ENV,
    DEFAULT_POLICY,
    JobOutcome,
    RetryPolicy,
    RunReport,
    default_arena_mode,
    default_jobs,
    run_many,
)
from repro.run.faults import (FaultPlan, InjectedCrash, InjectedDiskFault,
                              plan_from_env)
from repro.run.jobs import MODEL_VERSION, JobSpec, WorkloadSpec
from repro.run.manifest import MANIFEST_NAME, JobRecord, SweepManifest

__all__ = [
    "JobSpec", "WorkloadSpec", "MODEL_VERSION",
    "ResultCache", "DEFAULT_CACHE_DIR", "default_cache_dir",
    "run_many", "RunReport", "JobOutcome", "default_jobs",
    "RetryPolicy", "DEFAULT_POLICY",
    "SweepManifest", "JobRecord", "MANIFEST_NAME",
    "FaultPlan", "InjectedCrash", "InjectedDiskFault", "plan_from_env",
    "CriticalWriteError", "DurabilityWarning", "FramedReadError",
    "AuditFinding", "AuditReport", "audit_state",
    "configure", "runner_defaults", "runner_state",
    "shared_cache", "shared_manifest", "retry_policy",
    "ARENAS_ENV", "default_arena_mode",
    "CheckpointStore", "CHECKPOINT_EVERY_ENV",
    "DEFAULT_CHECKPOINT_EVERY", "checkpoint_every_from_env",
    "Dispatcher", "DISPATCH_ENV", "WORKERS_ENV",
    "default_dispatch", "default_workers",
]

_jobs: int = default_jobs()
_cache: Optional[ResultCache] = None
_manifest: Optional[SweepManifest] = None
_policy: RetryPolicy = DEFAULT_POLICY
_resume: bool = False
_arenas: str = default_arena_mode()
_trace_dir: Optional[str] = None
_checkpoint_every: int = checkpoint_every_from_env()
_dispatch: str = default_dispatch()
_workers: Tuple[str, ...] = default_workers()
if os.environ.get("REPRO_CACHE") == "1":
    _cache = ResultCache()
    _manifest = SweepManifest(_cache.path / MANIFEST_NAME)


@dataclass(frozen=True)
class RunnerState:
    """Snapshot of the process-wide runner configuration."""

    jobs: int
    cache: Optional[ResultCache]
    policy: RetryPolicy
    manifest: Optional[SweepManifest]
    resume: bool
    arenas: str = "auto"
    trace_dir: Optional[str] = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    dispatch: str = "local"
    workers: Tuple[str, ...] = ()


def configure(jobs: Optional[int] = None,
              use_cache: Optional[bool] = None,
              cache_dir: Optional[str] = None,
              retries: Optional[int] = None,
              job_timeout: Optional[float] = None,
              resume: Optional[bool] = None,
              arenas: Optional[str] = None,
              trace_dir: Optional[str] = None,
              checkpoint_every: Optional[int] = None,
              dispatch: Optional[str] = None,
              workers: Optional[Tuple[str, ...]] = None) -> None:
    """Set process-wide runner defaults.

    ``jobs``: worker count for subsequent sweeps (1 = serial).
    ``use_cache``: enable/disable the shared on-disk result cache (the
    sweep manifest lives and dies with it).
    ``cache_dir``: cache location (implies ``use_cache=True``).
    ``retries``: extra attempts per failed job (default 2).
    ``job_timeout``: seconds before one attempt is abandoned and
    retried (default: unlimited).
    ``resume``: keep completed entries of an existing sweep manifest
    instead of starting sweeps from a clean slate.
    ``arenas``: trace-arena policy -- ``auto`` (share traces across
    sweep groups of 2+ jobs; the default), ``on``, or ``off``
    (booleans accepted).
    ``trace_dir``: where arenas are stored (default: ``traces/`` beside
    the result cache when one is active, else ``REPRO_TRACE_DIR``).
    ``checkpoint_every``: mid-simulation checkpoint interval in retired
    instructions (0 disables writes; default
    :data:`DEFAULT_CHECKPOINT_EVERY`, overridable via
    ``REPRO_CHECKPOINT_EVERY``).  Checkpoints only activate when the
    result cache is enabled -- they live beside it.
    ``dispatch``: execution strategy -- ``local`` (pool + serial; the
    default) or ``fabric`` (multi-host coordinator, degrading to local).
    ``workers``: fabric worker specs (``spawn:N``, ``ssh:HOST``,
    ``wait:N``); giving workers without a mode implies ``fabric``.
    Arguments left as ``None`` keep their current value.
    """
    global _jobs, _cache, _manifest, _policy, _resume, _arenas, \
        _trace_dir, _checkpoint_every, _dispatch, _workers
    if jobs is not None:
        _jobs = max(1, int(jobs))
    if cache_dir is not None:
        _cache = ResultCache(cache_dir)
        _manifest = SweepManifest(_cache.path / MANIFEST_NAME)
    elif use_cache is not None:
        if use_cache:
            if _cache is None:
                _cache = ResultCache()
            if _manifest is None:
                _manifest = SweepManifest(_cache.path / MANIFEST_NAME)
        else:
            _cache = None
            _manifest = None
    if retries is not None:
        _policy = dataclasses.replace(_policy,
                                      retries=max(0, int(retries)))
    if job_timeout is not None:
        _policy = dataclasses.replace(
            _policy,
            job_timeout=float(job_timeout) if job_timeout > 0 else None)
    if resume is not None:
        _resume = bool(resume)
    if arenas is not None:
        if arenas is True:
            _arenas = "on"
        elif arenas is False:
            _arenas = "off"
        elif arenas in ("auto", "on", "off"):
            _arenas = arenas
        else:
            raise ValueError(
                f"arenas must be 'auto', 'on' or 'off', got {arenas!r}")
    if trace_dir is not None:
        _trace_dir = str(trace_dir) if trace_dir else None
    if checkpoint_every is not None:
        _checkpoint_every = max(0, int(checkpoint_every))
    if workers is not None:
        _workers = tuple(str(spec).strip() for spec in workers
                         if str(spec).strip())
        if dispatch is None and _workers:
            _dispatch = "fabric"
    if dispatch is not None:
        if dispatch not in ("local", "fabric"):
            raise ValueError(
                f"dispatch must be 'local' or 'fabric', got {dispatch!r}")
        _dispatch = dispatch


def runner_defaults() -> Tuple[int, Optional[ResultCache]]:
    """Current (jobs, cache) defaults used by :func:`run_many`."""
    return _jobs, _cache


def runner_state() -> RunnerState:
    """Full runner configuration consumed by :func:`run_many`."""
    return RunnerState(jobs=_jobs, cache=_cache, policy=_policy,
                       manifest=_manifest, resume=_resume,
                       arenas=_arenas, trace_dir=_trace_dir,
                       checkpoint_every=_checkpoint_every,
                       dispatch=_dispatch, workers=_workers)


def shared_cache() -> Optional[ResultCache]:
    """The process-wide cache instance, or ``None`` when disabled."""
    return _cache


def shared_manifest() -> Optional[SweepManifest]:
    """The process-wide sweep manifest, or ``None`` when disabled."""
    return _manifest


def retry_policy() -> RetryPolicy:
    """The process-wide retry/timeout policy."""
    return _policy
