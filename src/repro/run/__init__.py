"""Parallel experiment runner with a persistent result cache.

Public surface:

* :class:`~repro.run.jobs.JobSpec` / :class:`~repro.run.jobs.WorkloadSpec`
  -- picklable descriptions of one simulation;
* :func:`~repro.run.executor.run_many` -- cache-aware fan-out over a
  process pool with deterministic result ordering;
* :class:`~repro.run.cache.ResultCache` -- on-disk JSON store keyed by
  job fingerprint (includes :data:`~repro.run.jobs.MODEL_VERSION`);
* :func:`configure` -- process-wide defaults (worker count, cache) that
  the figure sweeps, seed sweeps, CLI and benchmarks all route through.

By default the runner is serial and the cache is disabled, so library
users see exactly the old ``run_simulation`` behaviour unless they (or
the CLI, which enables the cache) opt in::

    import repro.run as run
    run.configure(jobs=4, use_cache=True)
    ...                       # figure/sweep calls now fan out + memoize
    print(run.shared_cache().format_stats())
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.run.cache import DEFAULT_CACHE_DIR, ResultCache, default_cache_dir
from repro.run.executor import (
    JobOutcome,
    RunReport,
    default_jobs,
    run_many,
)
from repro.run.jobs import MODEL_VERSION, JobSpec, WorkloadSpec

__all__ = [
    "JobSpec", "WorkloadSpec", "MODEL_VERSION",
    "ResultCache", "DEFAULT_CACHE_DIR", "default_cache_dir",
    "run_many", "RunReport", "JobOutcome", "default_jobs",
    "configure", "runner_defaults", "shared_cache",
]

_jobs: int = default_jobs()
_cache: Optional[ResultCache] = None
if os.environ.get("REPRO_CACHE") == "1":
    _cache = ResultCache()


def configure(jobs: Optional[int] = None,
              use_cache: Optional[bool] = None,
              cache_dir: Optional[str] = None) -> None:
    """Set process-wide runner defaults.

    ``jobs``: worker count for subsequent sweeps (1 = serial).
    ``use_cache``: enable/disable the shared on-disk result cache.
    ``cache_dir``: cache location (implies ``use_cache=True``).
    Arguments left as ``None`` keep their current value.
    """
    global _jobs, _cache
    if jobs is not None:
        _jobs = max(1, int(jobs))
    if cache_dir is not None:
        _cache = ResultCache(cache_dir)
    elif use_cache is not None:
        if use_cache:
            if _cache is None:
                _cache = ResultCache()
        else:
            _cache = None


def runner_defaults() -> Tuple[int, Optional[ResultCache]]:
    """Current (jobs, cache) defaults used by :func:`run_many`."""
    return _jobs, _cache


def shared_cache() -> Optional[ResultCache]:
    """The process-wide cache instance, or ``None`` when disabled."""
    return _cache
