"""Self-contained crash-triage bundles for failed experiment jobs.

When a job attempt dies -- an injected fault, a forward-progress
watchdog trip (:class:`~repro.system.machine.WedgeError`), or a genuine
modelling bug -- the bare manifest line ("failed after N attempts")
forces whoever investigates to reconstruct the run by hand.  A triage
bundle instead captures everything needed to reproduce and classify the
failure offline, under ``<cache>/triage/<fingerprint[:12]>-a<attempt>/``:

``job.json``
    The full job description (``JobSpec.to_dict()``), fingerprint,
    model version, attempt number, the error type/message, the
    structured wedge classification when the watchdog tripped, the
    watchdog configuration, and the checkpoint offset the attempt
    resumed from.
``ck-*.ckpt``
    A copy of the newest checkpoint the attempt wrote (when
    checkpointing was active), so ``repro replay --from-checkpoint``
    can jump straight to the interesting region.
``stream-tail.json``
    The tail of each process's buffered instruction stream at the time
    of death -- the instructions in flight (unretired or buffered ahead
    of fetch), decoded to mnemonics.

``repro replay <bundle>`` rebuilds the job from ``job.json`` and
re-runs it deterministically; because the simulator is deterministic,
the failure either reproduces exactly (a simulated wedge or modelling
bug) or the run completes (the original failure was host-side).

Bundle writes go through :mod:`repro.run.atomicio` (atomic,
fault-injected) and are best-effort: an unwritable cache degrades to a
warning, never masks the original failure.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.run import atomicio
from repro.run.jobs import MODEL_VERSION, JobSpec
from repro.system.machine import Machine, WedgeError
from repro.trace.instr import OP_NAMES

#: Subdirectory of the result cache holding triage bundles.
TRIAGE_DIR = "triage"

#: ``job.json`` schema version.
BUNDLE_FORMAT = 1

#: Buffered instructions kept per process in ``stream-tail.json``.
STREAM_TAIL = 32


def bundle_dir(cache_dir: Union[str, Path], fingerprint: str,
               attempt: int) -> Path:
    return Path(cache_dir) / TRIAGE_DIR / f"{fingerprint[:12]}-a{attempt}"


def bundle_dirs(cache_dir: Union[str, Path]) -> List[Path]:
    """Every triage bundle directory under ``cache_dir``, sorted.

    Bundle names are ``<fp12>-a<attempt>`` (see :func:`bundle_dir`);
    ``repro gc`` matches the fingerprint prefix against the sweep
    manifest to pin bundles of jobs still in flight.
    """
    root = Path(cache_dir) / TRIAGE_DIR
    if not root.is_dir():
        return []
    return sorted(entry for entry in root.iterdir()
                  if entry.is_dir() and "-a" in entry.name)


def _stream_tails(machine: Machine) -> List[Dict[str, Any]]:
    """Per-process tails of the in-flight instruction window."""
    tails = []
    for process in machine.processes:
        buf = list(process.trace._buf)[-STREAM_TAIL:]
        tails.append({
            "pid": process.pid,
            "cpu": process.cpu,
            "consumed": process.trace.consumed,
            "resume_seq": process.resume_seq,
            "tail": [{"op": OP_NAMES.get(ins.op, str(ins.op)),
                      "pc": f"{ins.pc:#x}",
                      "addr": f"{ins.addr:#x}"} for ins in buf],
        })
    return tails


def write_bundle(cache_dir: Union[str, Path], *, spec: JobSpec,
                 fingerprint: str, attempt: int, error: BaseException,
                 machine: Optional[Machine] = None,
                 checkpoints: Sequence[Path] = (),
                 resumed_from: int = 0) -> Optional[Path]:
    """Write one triage bundle; returns its directory or ``None``.

    ``checkpoints`` is the failing job's checkpoint file list (oldest
    first); the newest is copied into the bundle.  ``machine`` may be
    ``None`` when the failure predates machine construction (the bundle
    then holds the job description and error only).
    """
    directory = bundle_dir(cache_dir, fingerprint, attempt)
    payload: Dict[str, Any] = {
        "format": BUNDLE_FORMAT,
        "model_version": MODEL_VERSION,
        "fingerprint": fingerprint,
        "attempt": attempt,
        "job": spec.to_dict(),
        "error": {"type": type(error).__name__, "message": str(error)},
        "wedge": error.to_dict() if isinstance(error, WedgeError)
        else None,
        "watchdog": {"cycles": spec.params.watchdog_cycles,
                     "node_cycles": spec.params.watchdog_node_cycles},
        "resumed_from": int(resumed_from),
        "retired": machine.total_retired() if machine is not None
        else None,
        "cycle": machine.now if machine is not None else None,
        "checkpoint": None,
    }
    try:
        directory.mkdir(parents=True, exist_ok=True)
        atomicio.sweep_orphans(directory)
        ok = True
        if checkpoints:
            newest = checkpoints[-1]
            if atomicio.atomic_write_bytes(directory / newest.name,
                                           newest.read_bytes(),
                                           category="triage"):
                payload["checkpoint"] = newest.name
            else:
                ok = False
        if machine is not None:
            ok &= atomicio.atomic_write_json(
                directory / "stream-tail.json", _stream_tails(machine),
                category="triage", sort_keys=False)
        ok &= atomicio.atomic_write_json(directory / "job.json", payload,
                                         category="triage")
        if not ok:
            raise OSError("bundle artifact write failed")
    except OSError as exc:
        warnings.warn(
            f"triage bundle write failed for {fingerprint[:12]} "
            f"({type(exc).__name__}: {exc})", RuntimeWarning,
            stacklevel=2)
        return None
    return directory


def load_bundle(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and minimally validate a bundle's ``job.json``.

    ``path`` may be the bundle directory or the ``job.json`` itself.
    Raises ``ValueError`` on a malformed bundle and ``OSError`` when
    unreadable.
    """
    path = Path(path)
    if path.is_dir():
        path = path / "job.json"
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("format") != BUNDLE_FORMAT:
        raise ValueError(
            f"{path} is not a format-{BUNDLE_FORMAT} triage bundle")
    for key in ("job", "fingerprint", "attempt", "error"):
        if key not in data:
            raise ValueError(f"{path} is missing {key!r}")
    data["__dir__"] = str(path.parent)
    return data


def format_bundle(data: Dict[str, Any]) -> str:
    """One-screen human summary of a loaded bundle."""
    error = data["error"]
    lines = [
        f"job          {data['fingerprint'][:12]} "
        f"(attempt {data['attempt']})",
        f"workload     {data['job']['workload']['kind']} "
        f"i={data['job']['instructions']} w={data['job']['warmup']} "
        f"seed={data['job']['seed']}",
        f"error        {error['type']}: {error['message']}",
    ]
    wedge = data.get("wedge")
    if wedge:
        where = "machine-wide" if wedge.get("node") is None \
            else f"node {wedge['node']}"
        lines.append(f"wedge        {wedge['kind']} ({where}) at cycle "
                     f"{wedge['cycle']}, {wedge['retired']} retired")
        if wedge.get("detail"):
            lines.append(f"             {wedge['detail']}")
    if data.get("resumed_from"):
        lines.append(f"resumed from {data['resumed_from']} retired")
    if data.get("checkpoint"):
        lines.append(f"checkpoint   {data['checkpoint']}")
    return "\n".join(lines)
