"""Persistent sweep manifest: which jobs ran, retried, failed, finished.

A sweep manifest lives next to the result cache (one JSON file,
``sweep-manifest.json``) and records, for every job fingerprint the
runner has seen, its status (``pending`` / ``running`` / ``retrying`` /
``done`` / ``failed``), attempt count, whether the last completion came
from the cache, and the last error text.  It is flushed atomically after
every state transition, so a sweep killed mid-flight leaves an accurate
record of exactly which cells completed.

``repro report --resume`` / ``repro figure --resume`` reuse the manifest
(completed jobs keep their records and are served from the cache; only
the incomplete remainder executes), and ``repro sweep-status`` prints
progress without touching the simulator at all.

The manifest never feeds simulated state: it stores fingerprints and
bookkeeping only, and results always round-trip through the content-
checked :class:`~repro.run.cache.ResultCache`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.run import atomicio

#: File name of the manifest inside the cache directory.
MANIFEST_NAME = "sweep-manifest.json"

_MANIFEST_FORMAT = 1

#: Statuses that mean "nothing left to do for this job".
_TERMINAL = ("done",)


def _wall_now() -> float:
    """Wall clock for worker-health ages; never feeds simulated state."""
    import time
    return time.time()  # repro-lint: disable=R002


@dataclass
class JobRecord:
    """Execution bookkeeping for one job fingerprint."""

    fingerprint: str
    label: str = ""
    status: str = "pending"   # pending | running | retrying | done | failed
    attempts: int = 0
    cached: bool = False      # last completion served from the cache
    error: str = ""           # last failure text ("" when clean)
    #: Per-attempt outcome entries ({attempt, outcome, error,
    #: start_offset}), deduplicated by attempt number: the host timeout
    #: and a late worker failure can both try to close one attempt, and
    #: exactly one record must win (see SweepManifest.mark_attempt).
    attempt_log: List[Dict[str, object]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.status in _TERMINAL

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobRecord":
        log = []
        for entry in data.get("attempt_log") or []:
            if isinstance(entry, dict) and "attempt" in entry:
                log.append({
                    "attempt": int(entry["attempt"]),
                    "outcome": str(entry.get("outcome", "")),
                    "error": str(entry.get("error", "")),
                    "start_offset": int(entry.get("start_offset", 0)),
                })
        return cls(
            fingerprint=str(data["fingerprint"]),
            label=str(data.get("label", "")),
            status=str(data.get("status", "pending")),
            attempts=int(data.get("attempts", 0)),
            cached=bool(data.get("cached", False)),
            error=str(data.get("error", "")),
            attempt_log=log,
        )


class SweepManifest:
    """Crash-safe record of sweep progress, keyed by job fingerprint."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.records: Dict[str, JobRecord] = {}
        #: Fabric worker health, name -> fields (status, connected_at,
        #: last_heartbeat, jobs_done, jobs_failed, lease, lease_since).
        self.workers: Dict[str, Dict[str, object]] = {}
        self.load_error: Optional[str] = None
        self._swept_orphans = False
        self._load()

    # ------------------------------------------------------------------ io

    def _load(self) -> None:
        try:
            with open(self.path) as handle:
                data = json.load(handle)
            for entry in data.get("jobs", []):
                record = JobRecord.from_dict(entry)
                self.records[record.fingerprint] = record
            workers = data.get("workers")
            if isinstance(workers, dict):
                self.workers = {str(name): dict(fields)
                                for name, fields in workers.items()
                                if isinstance(fields, dict)}
        except FileNotFoundError:
            pass
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A torn manifest must never wedge the sweep: start fresh
            # (the cache still holds the results) but remember why.
            self.load_error = f"{type(exc).__name__}: {exc}"
            self.records = {}

    def flush(self) -> bool:
        """Atomically persist the manifest (a **critical** write).

        The manifest is the attempt ledger the durability audit checks
        cache outcomes against, so unlike every other artifact a flush
        that cannot land raises
        :class:`~repro.run.atomicio.CriticalWriteError` loudly instead
        of degrading -- losing attempt accounting silently would
        invalidate the sweep's bookkeeping.  On the first flush, stale
        orphaned ``*.tmp`` files beside the manifest are swept.
        """
        payload = {
            "format": _MANIFEST_FORMAT,
            "jobs": [self.records[key].to_dict()
                     for key in sorted(self.records)],
        }
        if self.workers:
            payload["workers"] = {name: self.workers[name]
                                  for name in sorted(self.workers)}
        if not self._swept_orphans:
            self._swept_orphans = True
            atomicio.sweep_orphans(self.path.parent)
        return atomicio.atomic_write_json(self.path, payload,
                                          category="manifest",
                                          critical=True)

    # ------------------------------------------------------------ lifecycle

    def begin(self, fingerprints: Iterable[str], labels: Iterable[str],
              resume: bool = False) -> None:
        """Register the jobs of one sweep.

        With ``resume=False`` every given job starts from a clean
        ``pending`` record (attempt counters reset).  With
        ``resume=True`` completed jobs keep their records untouched and
        interrupted ones (``running``/``retrying``/``failed``) are
        re-armed as ``pending`` while *keeping* their accumulated
        attempt count and last error, so the manifest shows the full
        history across invocations.
        """
        for fingerprint, label in zip(fingerprints, labels):
            existing = self.records.get(fingerprint)
            if resume and existing is not None:
                if not existing.label:
                    existing.label = label
                if not existing.complete:
                    existing.status = "pending"
                continue
            self.records[fingerprint] = JobRecord(fingerprint, label)
        self.flush()

    # ------------------------------------------------------------- events

    def _record(self, fingerprint: str) -> JobRecord:
        record = self.records.get(fingerprint)
        if record is None:
            record = JobRecord(fingerprint)
            self.records[fingerprint] = record
        return record

    def mark_running(self, fingerprint: str) -> None:
        record = self._record(fingerprint)
        record.status = "running"
        record.attempts += 1
        self.flush()

    def mark_retrying(self, fingerprint: str, error: str) -> None:
        record = self._record(fingerprint)
        record.status = "retrying"
        record.error = error
        self.flush()

    def mark_done(self, fingerprint: str, cached: bool = False) -> None:
        record = self._record(fingerprint)
        record.status = "done"
        record.cached = cached
        record.error = ""
        self.flush()

    def mark_failed(self, fingerprint: str, error: str) -> None:
        record = self._record(fingerprint)
        record.status = "failed"
        record.error = error
        self.flush()

    def mark_attempt(self, fingerprint: str, attempt: int, outcome: str,
                     error: str = "", start_offset: int = 0) -> bool:
        """Record one attempt's outcome; first writer wins per attempt.

        Two host-side paths can race to close the same attempt: the
        parent's ``--job-timeout`` deadline abandons it while the worker
        (or its in-simulator watchdog) reports a failure for it.  The
        attempt number keys the log, so the second writer is a no-op
        and the manifest holds exactly one outcome per attempt.
        ``start_offset`` is the retired-instruction count the attempt
        resumed from (0 = cold start); returns whether the entry landed.
        """
        record = self._record(fingerprint)
        attempt = int(attempt)
        if any(entry.get("attempt") == attempt
               for entry in record.attempt_log):
            return False
        record.attempt_log.append({
            "attempt": attempt,
            "outcome": outcome,
            "error": error,
            "start_offset": int(start_offset),
        })
        self.flush()
        return True

    def mark_worker(self, name: str, flush: bool = True,
                    **fields: object) -> None:
        """Merge health ``fields`` into one fabric worker's record.

        The coordinator calls this on join/grant/result/loss (flushed)
        and on heartbeats (``flush=False`` -- the caller throttles
        writes), so ``repro sweep-status`` can show worker health even
        while -- or after -- a sweep runs.
        """
        record = self.workers.setdefault(str(name), {})
        record.update(fields)
        if flush:
            self.flush()

    # ------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.records)

    def get(self, fingerprint: str) -> Optional[JobRecord]:
        return self.records.get(fingerprint)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for key in sorted(self.records):
            status = self.records[key].status
            out[status] = out.get(status, 0) + 1
        return out

    def incomplete(self) -> List[JobRecord]:
        return [self.records[key] for key in sorted(self.records)
                if not self.records[key].complete]

    def total_attempts(self) -> int:
        return sum(record.attempts for record in self.records.values())

    # ---------------------------------------------------------- rendering

    def format_summary(self) -> str:
        counts = self.counts()
        done = counts.get("done", 0)
        parts = [f"{done}/{len(self.records)} done"]
        for status in ("failed", "retrying", "running", "pending"):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        parts.append(f"{self.total_attempts()} attempts")
        return f"sweep: {', '.join(parts)}"

    def format_status(self, verbose: bool = True) -> str:
        """Multi-line progress report for ``repro sweep-status``."""
        if not self.records:
            return f"no sweep manifest entries at {self.path}"
        lines = [self.format_summary()]
        if verbose:
            for key in sorted(self.records):
                record = self.records[key]
                note = f"  [{record.error}]" if record.error else ""
                origin = " (cached)" if record.cached and \
                    record.status == "done" else ""
                resumed = max(
                    (int(entry.get("start_offset", 0))
                     for entry in record.attempt_log), default=0)
                offset = f" resumed@{resumed}" if resumed else ""
                lines.append(
                    f"  {record.fingerprint[:12]}  {record.status:<8s} "
                    f"attempts={record.attempts}{origin}{offset}  "
                    f"{record.label}{note}")
        if self.workers:
            lines.append("workers:")
            now = _wall_now()
            for name in sorted(self.workers):
                fields = self.workers[name]
                status = str(fields.get("status", "?"))
                done = int(fields.get("jobs_done", 0) or 0)
                failed = int(fields.get("jobs_failed", 0) or 0)
                beat = fields.get("last_heartbeat")
                beat_age = f"{max(0.0, now - float(beat)):.1f}s ago" \
                    if isinstance(beat, (int, float)) else "never"
                lease = str(fields.get("lease", "") or "")
                lease_since = fields.get("lease_since")
                if lease and isinstance(lease_since, (int, float)):
                    held = (f"lease {lease} "
                            f"({max(0.0, now - float(lease_since)):.1f}s)")
                elif lease:
                    held = f"lease {lease}"
                else:
                    held = "idle"
                lines.append(
                    f"  {name:<8s} {status:<9s} done={done} "
                    f"failed={failed} heartbeat={beat_age}  {held}")
        return "\n".join(lines)
