"""On-disk result cache for experiment jobs, with integrity checking.

One JSON file per completed :class:`~repro.run.jobs.JobSpec`, stored
under ``.repro-cache/`` (override with the ``REPRO_CACHE_DIR``
environment variable) and keyed by the spec's content fingerprint --
which already folds in :data:`~repro.run.jobs.MODEL_VERSION`, so results
produced by an older simulator simply stop matching after a version bump
(they are dead weight until :meth:`ResultCache.purge` removes them).

Each entry stores the job description next to the result plus a sha256
**content checksum** over both.  On read the checksum is re-verified:
an entry that is truncated, bit-flipped, or missing its checksum is
*quarantined* -- moved to a ``quarantine/`` subdirectory rather than
silently overwritten -- counted in :meth:`ResultCache.stats`, and
reported as a miss so the job simply re-runs.  Writes go through
:mod:`repro.run.atomicio` (atomic, fsynced, fault-injected) and are
**best-effort**: a read-only or full cache directory degrades to a
warning instead of failing the sweep that computed the result.
Orphaned ``*.tmp`` files left by a writer killed mid-write are swept on
startup (when stale) and by :meth:`purge`.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.experiment import SimulationResult
from repro.run import atomicio
from repro.run.faults import plan_from_env
from repro.run.jobs import JobSpec

#: Default cache location (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory (inside the cache) holding corrupt entries for autopsy.
QUARANTINE_DIR = "quarantine"

#: 2: entries carry a sha256 checksum over the job+result payload.
#: Format-1 entries (no checksum) are quarantined on first read.
_ENTRY_FORMAT = 2

#: Age (seconds) after which an orphaned ``*.tmp`` file is considered
#: abandoned and removed by the startup sweep.  Generous enough that a
#: concurrent writer's in-flight temp file is never touched.
_ORPHAN_TTL = 3600.0


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def _payload_checksum(job: Dict[str, object],
                      result: Dict[str, object]) -> str:
    """Canonical checksum over one entry's job + result payload."""
    text = json.dumps({"job": job, "result": result}, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CorruptEntry(ValueError):
    """A cache entry failed checksum or structural validation."""


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` snapshots."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.path = Path(path if path is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0
        self.quarantined = 0       # entries quarantined by this instance
        self.write_errors = 0      # best-effort puts that could not land
        self._swept_orphans = False

    # ------------------------------------------------------------------ io

    def _entry_path(self, key: str) -> Path:
        return self.path / f"{key}.json"

    @property
    def quarantine_path(self) -> Path:
        return self.path / QUARANTINE_DIR

    def _quarantine(self, entry: Path, reason: str) -> None:
        """Move a corrupt entry aside (never silently overwrite it).

        An unwritable cache leaves the entry in place; it keeps missing
        (checksum still fails) which is safe, just noisy.
        """
        atomicio.quarantine(entry, reason, label="cache entry",
                            quarantine_dir=self.quarantine_path,
                            stacklevel=4)
        self.quarantined += 1

    @staticmethod
    def _decode_entry(text: str) -> SimulationResult:
        """Validate and decode one entry; raises :class:`CorruptEntry`."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CorruptEntry(f"unparseable JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CorruptEntry("entry is not a JSON object")
        stored = data.get("checksum")
        if not stored:
            raise CorruptEntry("missing checksum (pre-integrity format)")
        try:
            computed = _payload_checksum(data["job"], data["result"])
        except (KeyError, TypeError) as exc:
            raise CorruptEntry(f"malformed payload: {exc}") from exc
        if computed != stored:
            raise CorruptEntry(
                f"checksum mismatch (stored {str(stored)[:12]}..., "
                f"computed {computed[:12]}...)")
        try:
            return SimulationResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptEntry(f"undecodable result: {exc}") from exc

    def get(self, spec: JobSpec) -> Optional[SimulationResult]:
        """Checksum-verified cached result for ``spec``, or ``None``.

        Counts a hit or miss either way; corrupt entries are moved to
        ``quarantine/`` and reported as misses so the caller re-runs the
        job and rewrites a clean entry.
        """
        entry = self._entry_path(spec.fingerprint())
        try:
            with open(entry) as fh:
                text = fh.read()
        except OSError:
            self.misses += 1
            return None
        try:
            result = self._decode_entry(text)
        except CorruptEntry as exc:
            self._quarantine(entry, str(exc))
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: JobSpec, result: SimulationResult) -> bool:
        """Store ``result`` under ``spec``'s fingerprint (atomic write).

        Best-effort: storage faults (read-only directory, disk full)
        degrade to a :class:`RuntimeWarning` and ``False`` -- the
        computed result stays usable in memory and the sweep continues.
        """
        fingerprint = spec.fingerprint()
        job_dict, result_dict = spec.to_dict(), result.to_dict()
        payload = {
            "format": _ENTRY_FORMAT,
            "checksum": _payload_checksum(job_dict, result_dict),
            "job": job_dict,
            "result": result_dict,
        }
        text = json.dumps(payload, sort_keys=True)
        plan = plan_from_env()
        if plan is not None:
            # Deterministic write-fault injection (REPRO_FAULTS=corrupt:p):
            # the stored bytes are truncated or bit-flipped so the next
            # read must detect and quarantine them.
            text = plan.corrupt_text(text, fingerprint)
        self._sweep_orphans()
        if not atomicio.atomic_write_text(
                self._entry_path(fingerprint), text + "\n",
                category="cache"):
            self.write_errors += 1
            warnings.warn(
                f"result cache write failed for {fingerprint[:12]}; "
                f"continuing without caching", RuntimeWarning,
                stacklevel=2)
            return False
        return True

    # ------------------------------------------------------------------ admin

    def _sweep_orphans(self) -> int:
        """Remove stale ``*.tmp`` files abandoned by killed writers.

        Runs once per cache instance (before the first write).  Only
        temp files older than :data:`_ORPHAN_TTL` are removed, so a
        concurrent writer's in-flight file is left alone.
        """
        if self._swept_orphans:
            return 0
        self._swept_orphans = True
        return atomicio.sweep_orphans(self.path, ttl=_ORPHAN_TTL)

    @staticmethod
    def _is_entry(path: Path) -> bool:
        """Result entries have a 64-hex fingerprint stem; the sweep
        manifest (and anything else) living in the directory is not one."""
        stem = path.stem
        return len(stem) == 64 and all(c in "0123456789abcdef"
                                       for c in stem)

    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for entry in self.path.glob("*.json")
                   if self._is_entry(entry))

    def quarantine_entries(self) -> int:
        """Number of entries currently sitting in ``quarantine/``."""
        return len(self.quarantine_files())

    def quarantine_files(self) -> List[Path]:
        """Quarantined entries, sorted; ``repro gc`` evicts the oldest
        beyond the retention caps (they are autopsy evidence, not
        results, so bounded retention is safe)."""
        if not self.quarantine_path.is_dir():
            return []
        return sorted(self.quarantine_path.glob("*.json"))

    def purge(self) -> int:
        """Delete every cached entry, orphaned temp file, and
        quarantined entry; returns the number removed."""
        removed = 0
        if self.path.is_dir():
            for pattern in ("*.json", "*.tmp"):
                for entry in self.path.glob(pattern):
                    if pattern == "*.json" and not self._is_entry(entry):
                        continue   # e.g. the sweep manifest
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        if self.quarantine_path.is_dir():
            for entry in self.quarantine_path.glob("*"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self), "dir": str(self.path),
                "quarantined": self.quarantined,
                "quarantine_entries": self.quarantine_entries(),
                "write_errors": self.write_errors}

    def format_stats(self) -> str:
        text = (f"cache: {self.hits} hits, {self.misses} misses, "
                f"{len(self)} entries in {self.path}")
        in_quarantine = self.quarantine_entries()
        if in_quarantine or self.quarantined:
            text += (f", {in_quarantine} quarantined"
                     f" ({self.quarantined} this run)")
        if self.write_errors:
            text += f", {self.write_errors} write errors"
        return text


def time_now() -> float:
    """Wall-clock seconds for cache housekeeping only (orphan aging).

    Isolated in one function so the determinism linter exemption is
    explicit: nothing simulated ever reads this.
    """
    import time
    return time.time()  # repro-lint: disable=R002
