"""On-disk result cache for experiment jobs.

One JSON file per completed :class:`~repro.run.jobs.JobSpec`, stored
under ``.repro-cache/`` (override with the ``REPRO_CACHE_DIR``
environment variable) and keyed by the spec's content fingerprint --
which already folds in :data:`~repro.run.jobs.MODEL_VERSION`, so results
produced by an older simulator simply stop matching after a version bump
(they are dead weight until :meth:`ResultCache.purge` removes them).

Each entry stores the job description next to the result, so a cache
directory is self-describing and individual entries can be audited or
replayed by hand.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.experiment import SimulationResult
from repro.run.jobs import JobSpec

#: Default cache location (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_ENTRY_FORMAT = 1


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` snapshots."""

    def __init__(self, path: Union[str, Path, None] = None):
        self.path = Path(path if path is not None else default_cache_dir())
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ io

    def _entry_path(self, key: str) -> Path:
        return self.path / f"{key}.json"

    def get(self, spec: JobSpec) -> Optional[SimulationResult]:
        """Cached result for ``spec``, or ``None`` (counts hit/miss)."""
        entry = self._entry_path(spec.fingerprint())
        try:
            with open(entry) as fh:
                data = json.load(fh)
            result = SimulationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, truncated, or written by an incompatible encoder:
            # treat as a miss and let the fresh run overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: JobSpec, result: SimulationResult) -> None:
        """Store ``result`` under ``spec``'s fingerprint (atomic write)."""
        self.path.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": _ENTRY_FORMAT,
            "job": spec.to_dict(),
            "result": result.to_dict(),
        }
        text = json.dumps(payload, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text + "\n")
            os.replace(tmp, self._entry_path(spec.fingerprint()))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ admin

    def __len__(self) -> int:
        if not self.path.is_dir():
            return 0
        return sum(1 for _ in self.path.glob("*.json"))

    def purge(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.path.is_dir():
            for entry in self.path.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self), "dir": str(self.path)}

    def format_stats(self) -> str:
        return (f"cache: {self.hits} hits, {self.misses} misses, "
                f"{len(self)} entries in {self.path}")
